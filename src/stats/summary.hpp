// Small numeric helpers shared by the benches: distribution summaries,
// least-squares fits (for the "which growth model wins" shape reports), and
// number formatting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace wfq::stats {

struct Summary {
  size_t n = 0;
  double mean = 0;
  double min = 0;
  double p50 = 0;
  double p99 = 0;
  double max = 0;
};

/// Mean plus nearest-rank percentiles (p-th percentile = value at rank
/// ceil(p/100 * n), 1-based) of a sample vector. Empty input => all zeros.
inline Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  double total = 0;
  for (double x : sorted) total += x;
  s.mean = total / static_cast<double>(s.n);
  auto rank = [&](double p) {
    size_t r = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(s.n)));
    if (r == 0) r = 1;
    return sorted[std::min(r, s.n) - 1];
  };
  s.min = sorted.front();
  s.p50 = rank(50);
  s.p99 = rank(99);
  s.max = sorted.back();
  return s;
}

/// Least-squares slope of y against x. Constant x => 0.
inline double fit_slope(const std::vector<double>& xs,
                        const std::vector<double>& ys) {
  size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0;
  double mx = 0, my = 0;
  for (size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  if (sxx == 0) return 0;
  return sxy / sxx;
}

/// Coefficient of determination R^2 of the least-squares line of y on x.
/// Edge cases: constant y is perfectly explained by any model (1.0);
/// constant x with varying y cannot explain anything (0.0).
inline double fit_r2(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 1.0;
  double mx = 0, my = 0;
  for (size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (syy == 0) return 1.0;
  if (sxx == 0) return 0.0;
  return (sxy * sxy) / (sxx * syy);
}

/// Fixed-point formatting for doubles (default 2 decimals).
inline std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

/// Integers format without a decimal point.
template <typename I, typename = std::enable_if_t<std::is_integral_v<I>>>
std::string fmt(I v) {
  return std::to_string(v);
}

}  // namespace wfq::stats
