// Growth-model selection for the bench shape reports: which of the three
// candidate models of p — log p, log^2 p, or p itself — best explains a
// measured series. Linear fits explain superlinear data too, so the raw
// argmax over R^2 would report "p" for clean logarithmic data; instead the
// smallest model wins unless a larger one improves R^2 by more than a 2%
// margin (kModelMargin). This was previously buried in bench/common.hpp;
// it lives here so the rule is unit-testable (tests/stats/stats_test.cpp).
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "stats/summary.hpp"

namespace wfq::stats {

/// Minimum R^2 improvement a larger growth model must show over a smaller
/// one before it is preferred.
inline constexpr double kModelMargin = 0.02;

struct ShapeFit {
  double r2_logp = 0;
  double r2_log2p = 0;
  double r2_linp = 0;
  std::string best;  // "log p" | "log^2 p" | "p"
};

/// Tie-breaking rule, exposed separately so the margin logic is testable
/// without constructing data: prefer log p; upgrade to log^2 p only if it
/// beats the incumbent by > kModelMargin; upgrade to p under the same rule.
inline std::string pick_model(double r_log, double r_log2, double r_lin) {
  const char* best = "log p";
  double bestr = r_log;
  if (r_log2 > bestr + kModelMargin) {
    best = "log^2 p";
    bestr = r_log2;
  }
  if (r_lin > bestr + kModelMargin) {
    best = "p";
  }
  return best;
}

inline double log2_clamped(double x) { return std::log2(x < 1 ? 1 : x); }

/// Fits y against log p, log^2 p and p and names the winner per pick_model.
inline ShapeFit fit_shape(const std::vector<double>& ps,
                          const std::vector<double>& ys) {
  std::vector<double> logp, log2p, linp;
  logp.reserve(ps.size());
  log2p.reserve(ps.size());
  linp.reserve(ps.size());
  for (double p : ps) {
    double l = log2_clamped(p);
    logp.push_back(l);
    log2p.push_back(l * l);
    linp.push_back(p);
  }
  ShapeFit f;
  f.r2_logp = fit_r2(logp, ys);
  f.r2_log2p = fit_r2(log2p, ys);
  f.r2_linp = fit_r2(linp, ys);
  // Two points fit every one-parameter model exactly, and so does a
  // constant series (fit_r2's syy==0 convention returns 1.0 for every
  // model) — a "best" verdict in either case would be fabricated. An
  // all-equal grid of p values is the dual failure: the predictor has zero
  // variance, fit_r2's sxx==0 convention returns 0.0 for every model, and
  // pick_model would crown "log p" on data that distinguishes nothing (a
  // single-p sweep with repeats is exactly this shape).
  size_t n = std::min(ps.size(), ys.size());
  bool constant = true;
  bool degenerate = true;
  for (size_t i = 1; i < n; ++i) {
    if (ys[i] != ys[0]) constant = false;
    if (ps[i] != ps[0]) degenerate = false;
  }
  if (n < 3)
    f.best = "indeterminate (<3 points)";
  else if (degenerate)
    f.best = "indeterminate (degenerate grid)";
  else if (constant)
    f.best = "indeterminate (constant series)";
  else
    f.best = pick_model(f.r2_logp, f.r2_log2p, f.r2_linp);
  return f;
}

/// The benches' one-line rendering of a shape fit (same format the
/// hand-rolled report_shape printed, so default outputs are unchanged).
inline std::string shape_line(const std::string& series, const ShapeFit& f) {
  return "  shape(" + series + "): R^2[log p]=" + fmt(f.r2_logp, 3) +
         "  R^2[log^2 p]=" + fmt(f.r2_log2p, 3) +
         "  R^2[p]=" + fmt(f.r2_linp, 3) + "  -> best: " + f.best;
}

}  // namespace wfq::stats
