// QoS metrics for the multi-tenant service layer (ISSUE 7): Jain's fairness
// index over per-tenant throughput samples and a nearest-rank percentile
// helper for the per-tenant latency distributions E13b reports. Kept apart
// from summary.hpp because these are fairness/latency aggregates, not the
// generic distribution summaries the step-shape experiments use.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

namespace wfq::stats {

/// Jain's fairness index (sum x)^2 / (n * sum x^2) over per-tenant
/// allocations: 1.0 when every tenant gets the same share, 1/n when one
/// tenant gets everything. Empty input and all-zero input both read 1.0 —
/// with nothing allocated there is no tenant being favored over another
/// (the conventional "equally (un)served" reading), and E13a's sweeps must
/// not divide by zero on a row where no service happened.
inline double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0, sumsq = 0;
  for (double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sumsq);
}

/// Nearest-rank percentile, the same convention as stats::summarize: the
/// value at rank ceil(q/100 * n), 1-based, over the sorted sample. q is
/// clamped to [0, 100] (q = 0 reads the minimum, q = 100 the maximum);
/// empty input reads 0 like the Summary zeros.
inline double percentile(const std::vector<double>& xs, double q) {
  if (xs.empty()) return 0;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  q = std::min(100.0, std::max(0.0, q));
  size_t n = sorted.size();
  size_t r = static_cast<size_t>(std::ceil(q / 100.0 * static_cast<double>(n)));
  if (r == 0) r = 1;
  return sorted[std::min(r, n) - 1];
}

}  // namespace wfq::stats
