// Minimal aligned-column table printer for the bench reports. Every cell is
// padded to its column's maximum width and right-aligned (numeric tables read
// best that way); columns are separated by two spaces.
#pragma once

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

namespace wfq::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os) const {
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (size_t c = 0; c < row.size(); ++c)
        width[c] = std::max(width[c], row[c].size());
    auto emit = [&](const std::vector<std::string>& row) {
      os << " ";
      for (size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        os << " " << std::string(width[c] - cell.size(), ' ') << cell << " ";
      }
      os << "\n";
    };
    emit(headers_);
    size_t total = 0;
    for (size_t w : width) total += w + 2;
    os << " " << std::string(total, '-') << "\n";
    for (const auto& row : rows_) emit(row);
  }

  size_t columns() const { return headers_.size(); }
  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wfq::stats
