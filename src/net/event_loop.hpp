// Event loop for the broker daemon (ISSUE 8 tentpole, net layer): a single
// I/O thread multiplexing any number of listeners and connections through
// epoll (Linux) or poll(2) (fallback; force with -DWFQ_NET_FORCE_POLL to
// exercise it on Linux — tests/broker builds a second e2e target that way).
//
// Read path: on a readable event the loop slurps the socket dry (read until
// EAGAIN), feeds the connection's wfb-v1 Decoder, and hands ALL frames
// decoded from that wakeup to on_batch in ONE call — the burst the broker
// turns into one work-queue push per shard. Partial frames stay buffered in
// the decoder; a framing error gets a best-effort ERR frame and the
// connection is dropped (sticky decoder contract, see frame.hpp).
//
// Write path: send() is callable from ANY thread (the broker's servicer
// threads respond directly — response syscalls scale with servicers instead
// of funneling through this thread). If the connection's outbox is empty
// the sender write()s inline under the connection's write mutex; leftovers
// are buffered and the loop is woken through the self-pipe to arm
// write-readiness and finish the flush.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include <unistd.h>

#include <poll.h>  // blocking flush in shutdown_flush_and_close
#if defined(__linux__) && !defined(WFQ_NET_FORCE_POLL)
#define WFQ_NET_EPOLL 1
#include <sys/epoll.h>
#else
#define WFQ_NET_EPOLL 0
#endif

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace wfq::net {

/// Readiness poller: epoll_ctl/epoll_wait on Linux, a rebuilt pollfd array
/// otherwise. The fd set is loop-thread-only; no locking here.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
  };

#if WFQ_NET_EPOLL
  Poller() : ep_(::epoll_create1(0)) {
    if (!ep_.valid())
      throw std::runtime_error("net: epoll_create1 failed: " +
                               std::string(std::strerror(errno)));
  }

  void add(int fd, bool want_write) { ctl(EPOLL_CTL_ADD, fd, want_write); }
  void mod(int fd, bool want_write) { ctl(EPOLL_CTL_MOD, fd, want_write); }
  void del(int fd) { ::epoll_ctl(ep_.get(), EPOLL_CTL_DEL, fd, nullptr); }

  void wait(std::vector<Event>& out, int timeout_ms) {
    epoll_event evs[64];
    int n = ::epoll_wait(ep_.get(), evs, 64, timeout_ms);
    out.clear();
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = evs[i].data.fd;
      e.readable = (evs[i].events & (EPOLLIN | EPOLLERR)) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.hangup = (evs[i].events & (EPOLLHUP | EPOLLERR)) != 0;
      out.push_back(e);
    }
  }

 private:
  void ctl(int op, int fd, bool want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(ep_.get(), op, fd, &ev) != 0)
      throw std::runtime_error("net: epoll_ctl failed: " +
                               std::string(std::strerror(errno)));
  }

  FdHandle ep_;
#else
  void add(int fd, bool want_write) { fds_[fd] = want_write; }
  void mod(int fd, bool want_write) { fds_[fd] = want_write; }
  void del(int fd) { fds_.erase(fd); }

  void wait(std::vector<Event>& out, int timeout_ms) {
    std::vector<pollfd> pfds;
    pfds.reserve(fds_.size());
    for (const auto& [fd, want_write] : fds_) {
      pollfd p{};
      p.fd = fd;
      p.events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
      pfds.push_back(p);
    }
    int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    out.clear();
    if (n <= 0) return;
    for (const pollfd& p : pfds) {
      if (p.revents == 0) continue;
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLERR)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.hangup = (p.revents & (POLLHUP | POLLERR)) != 0;
      out.push_back(e);
    }
  }

 private:
  std::unordered_map<int, bool> fds_;  // fd -> want_write
#endif
};

/// The multiplexer. One thread calls run(); send()/stop()/wake() are safe
/// from any thread. Connection ids are never reused, so a servicer holding
/// an id across a disconnect sends into the void instead of into a
/// recycled connection.
class EventLoop {
 public:
  struct Callbacks {
    /// One call per readable wakeup per connection, with every frame that
    /// burst decoded. The batch is the caller's to move from.
    std::function<void(uint64_t conn, std::vector<Frame>& batch)> on_batch;
    /// Connection gone: `reason` is DecodeStatus::ok for a clean EOF at a
    /// frame boundary, `truncated` for EOF mid-frame, or the framing error
    /// that poisoned the stream. Optional.
    std::function<void(uint64_t conn, DecodeStatus reason)> on_close;
  };

  explicit EventLoop(Callbacks cbs) : cbs_(std::move(cbs)) {
    int pipefd[2];
    if (::pipe(pipefd) != 0)
      throw std::runtime_error("net: pipe() for loop wakeup failed");
    wake_rd_.reset(pipefd[0]);
    wake_wr_.reset(pipefd[1]);
    set_nonblocking(wake_rd_.get());
    set_nonblocking(wake_wr_.get());
    poller_.add(wake_rd_.get(), false);
  }

  /// Registers a listening socket (from listen_uds / listen_tcp). Must be
  /// called before run(); accepted connections inherit nonblocking mode.
  void add_listener(FdHandle fd) {
    poller_.add(fd.get(), false);
    listeners_.push_back(std::move(fd));
  }

  /// Queues `bytes` on the connection and flushes as much as the socket
  /// takes, inline, from the calling thread. Thread-safe; no-op (returning
  /// false) if the connection is gone. Callers batch: one send() per burst
  /// of responses, not one per frame.
  bool send(uint64_t conn_id, std::string&& bytes) {
    std::shared_ptr<Conn> c = find_conn(conn_id);
    if (!c) return false;
    bool need_loop_flush = false;
    {
      std::lock_guard<std::mutex> lk(c->out_mutex);
      if (c->closed) return false;
      if (c->outbox.size() - c->out_pos > kMaxOutbox) {
        // Peer stopped reading: shed it rather than buffer without bound.
        c->kill = true;
        need_loop_flush = true;
      } else {
        if (c->outbox.size() == c->out_pos) {
          c->outbox.clear();
          c->out_pos = 0;
        }
        c->outbox.append(bytes);
        need_loop_flush = !flush_locked(*c);
      }
    }
    if (need_loop_flush) {
      mark_dirty(conn_id);
      wake();
    }
    return true;
  }

  /// Runs until stop(). Dispatches on_batch/on_close from this thread.
  void run() {
    std::vector<Poller::Event> events;
    while (!stop_.load(std::memory_order_acquire)) {
      poller_.wait(events, 200);
      drain_wake_pipe();
      flush_dirty();
      for (const Poller::Event& ev : events) {
        if (ev.fd == wake_rd_.get()) continue;
        if (is_listener(ev.fd)) {
          accept_all(ev.fd);
          continue;
        }
        Conn* c = conn_by_fd(ev.fd);
        if (c == nullptr) continue;
        if (ev.writable) on_writable(*c);
        if (ev.readable || ev.hangup)
          if (on_readable(*c)) continue;  // connection closed and erased
      }
      reap_killed();
    }
  }

  /// Stops run() from any thread (idempotent). The loop finishes the
  /// current dispatch; it does not drain — that is broker policy.
  void stop() {
    stop_.store(true, std::memory_order_release);
    wake();
  }

  /// Drain-path epilogue, called ONLY after run() has returned and every
  /// sender thread has been joined (single-threaded access is then safe by
  /// happens-before through those joins): flush each connection's pending
  /// outbox — blocking briefly on writability, bounded so a peer that
  /// never reads cannot wedge shutdown — then close every connection and
  /// listener, so clients see EOF instead of a socket that never answers.
  void shutdown_flush_and_close() {
    for (auto& [fd_num, c] : by_fd_) {
      std::unique_lock<std::mutex> lk(c->out_mutex);
      for (int tries = 0; tries < 50 && !c->closed; ++tries) {
        if (flush_locked(*c)) break;  // drained (or broken pipe -> kill)
        pollfd p{};
        p.fd = c->fd.get();
        p.events = POLLOUT;
        lk.unlock();
        ::poll(&p, 1, 100);
        lk.lock();
      }
    }
    std::vector<Conn*> open;
    for (auto& [fd_num, c] : by_fd_) open.push_back(c.get());
    for (Conn* c : open)
      if (!c->closed) close_conn(*c, DecodeStatus::ok);
    for (FdHandle& l : listeners_) poller_.del(l.get());
    listeners_.clear();
  }

  /// Nudges run() out of its wait (used by send() and stop()).
  void wake() {
    char b = 1;
    [[maybe_unused]] ssize_t w = ::write(wake_wr_.get(), &b, 1);
  }

  size_t connections() const {
    std::lock_guard<std::mutex> lk(conns_mutex_);
    return by_id_.size();
  }

 private:
  /// Outbox ceiling per connection (16 MiB): a client that never reads its
  /// responses gets disconnected, not buffered until OOM.
  static constexpr size_t kMaxOutbox = size_t{16} << 20;

  struct Conn {
    uint64_t id = 0;
    FdHandle fd;
    Decoder decoder;
    // Write side, shared with sender threads.
    std::mutex out_mutex;
    std::string outbox;
    size_t out_pos = 0;
    bool closed = false;    // fd closed; senders must not touch it
    bool kill = false;      // loop should close at next opportunity
    bool armed_write = false;  // loop-owned: EPOLLOUT currently armed
  };

  std::shared_ptr<Conn> find_conn(uint64_t id) {
    std::lock_guard<std::mutex> lk(conns_mutex_);
    auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : it->second;
  }

  Conn* conn_by_fd(int fd) {
    auto it = by_fd_.find(fd);
    return it == by_fd_.end() ? nullptr : it->second.get();
  }

  bool is_listener(int fd) const {
    for (const FdHandle& l : listeners_)
      if (l.get() == fd) return true;
    return false;
  }

  void accept_all(int lfd) {
    while (true) {
      int cfd = ::accept(lfd, nullptr, nullptr);
      if (cfd < 0) return;  // EAGAIN / transient — next wakeup retries
      set_nonblocking(cfd);
      auto c = std::make_shared<Conn>();
      c->id = next_id_++;
      c->fd.reset(cfd);
      poller_.add(cfd, false);
      by_fd_[cfd] = c;
      std::lock_guard<std::mutex> lk(conns_mutex_);
      by_id_[c->id] = c;
    }
  }

  /// Reads the socket dry, dispatches the decoded burst. Returns true if
  /// the connection was closed (caller must not touch it again).
  bool on_readable(Conn& c) {
    char buf[65536];
    bool eof = false;
    while (true) {
      ssize_t n = ::read(c.fd.get(), buf, sizeof(buf));
      if (n > 0) {
        c.decoder.feed(buf, static_cast<size_t>(n));
        if (n < static_cast<ssize_t>(sizeof(buf))) break;
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      eof = true;  // ECONNRESET and friends: treat as EOF
      break;
    }

    batch_.clear();
    Frame f;
    DecodeStatus st;
    while ((st = c.decoder.next(f)) == DecodeStatus::ok)
      batch_.push_back(std::move(f));
    if (!batch_.empty() && cbs_.on_batch) cbs_.on_batch(c.id, batch_);

    if (st != DecodeStatus::need_more) {
      // Framing error: best-effort ERR frame so a human at the other end
      // sees WHY, then drop. The decoder is poisoned; nothing to salvage.
      Frame e;
      e.op = Opcode::err;
      e.payload = std::string("decode error: ") + decode_status_name(st);
      std::string out;
      encode_frame(e, out);
      {
        std::lock_guard<std::mutex> lk(c.out_mutex);
        c.outbox.append(out);
        flush_locked(c);
      }
      close_conn(c, st);
      return true;
    }
    if (eof) {
      close_conn(c, c.decoder.at_eof());
      return true;
    }
    return false;
  }

  /// Flushes as much of the outbox as the socket accepts. Caller holds
  /// out_mutex. Returns true when the outbox is fully drained.
  bool flush_locked(Conn& c) {
    if (c.closed) return true;
    while (c.out_pos < c.outbox.size()) {
      // MSG_NOSIGNAL: a connection torn down between poll and write (dead
      // raft peer, vanished client) must be EPIPE -> kill, not SIGPIPE.
      ssize_t w = ::send(c.fd.get(), c.outbox.data() + c.out_pos,
                         c.outbox.size() - c.out_pos, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
        c.kill = true;  // broken pipe: loop reaps it
        return true;
      }
      c.out_pos += static_cast<size_t>(w);
    }
    c.outbox.clear();
    c.out_pos = 0;
    return true;
  }

  void on_writable(Conn& c) {
    bool drained;
    {
      std::lock_guard<std::mutex> lk(c.out_mutex);
      drained = flush_locked(c);
    }
    if (drained && c.armed_write) {
      poller_.mod(c.fd.get(), false);
      c.armed_write = false;
    }
  }

  void mark_dirty(uint64_t id) {
    std::lock_guard<std::mutex> lk(dirty_mutex_);
    dirty_.push_back(id);
  }

  /// Arms write-readiness for connections whose senders left bytes behind.
  void flush_dirty() {
    std::vector<uint64_t> ids;
    {
      std::lock_guard<std::mutex> lk(dirty_mutex_);
      ids.swap(dirty_);
    }
    for (uint64_t id : ids) {
      std::shared_ptr<Conn> c = find_conn(id);
      if (!c || c->closed) continue;
      bool drained;
      {
        std::lock_guard<std::mutex> lk(c->out_mutex);
        drained = flush_locked(*c);
      }
      if (!drained && !c->armed_write) {
        poller_.mod(c->fd.get(), true);
        c->armed_write = true;
      }
    }
  }

  void reap_killed() {
    std::vector<Conn*> doomed;
    for (auto& [fd, c] : by_fd_) {
      std::lock_guard<std::mutex> lk(c->out_mutex);
      if (c->kill && !c->closed) doomed.push_back(c.get());
    }
    for (Conn* c : doomed) close_conn(*c, DecodeStatus::ok);
  }

  void close_conn(Conn& c, DecodeStatus reason) {
    int fd = c.fd.get();
    poller_.del(fd);
    {
      // Senders serialize on out_mutex: after `closed` flips they bail
      // before touching the fd, so close() cannot race a concurrent write
      // into a recycled descriptor.
      std::lock_guard<std::mutex> lk(c.out_mutex);
      c.closed = true;
      c.fd.reset();
    }
    uint64_t id = c.id;
    {
      std::lock_guard<std::mutex> lk(conns_mutex_);
      by_id_.erase(id);
    }
    by_fd_.erase(fd);  // destroys the map's shared_ptr; senders may hold one
    if (cbs_.on_close) cbs_.on_close(id, reason);
  }

  void drain_wake_pipe() {
    char buf[256];
    while (::read(wake_rd_.get(), buf, sizeof(buf)) > 0) {
    }
  }

  Callbacks cbs_;
  Poller poller_;
  FdHandle wake_rd_, wake_wr_;
  std::vector<FdHandle> listeners_;
  std::unordered_map<int, std::shared_ptr<Conn>> by_fd_;  // loop-thread only
  mutable std::mutex conns_mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> by_id_;
  std::mutex dirty_mutex_;
  std::vector<uint64_t> dirty_;
  std::vector<Frame> batch_;
  uint64_t next_id_ = 1;
  std::atomic<bool> stop_{false};
};

}  // namespace wfq::net
