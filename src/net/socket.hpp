// Socket plumbing for the broker subsystem (ISSUE 8): RAII fd handle,
// nonblocking Unix-domain + TCP listeners, and the matching client connect
// helpers. Everything returns -1/false with errno preserved instead of
// throwing — the event loop treats socket failure as a per-connection
// event, not a process error — except listener setup, which throws
// std::runtime_error with the failing address in the message (a daemon
// that cannot bind its socket has nothing to fall back to).
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace wfq::net {

/// Owning fd wrapper: closes on destruction, movable, non-copyable.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  FdHandle(FdHandle&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  FdHandle& operator=(FdHandle&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  ~FdHandle() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

inline bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Fills a sockaddr_un, rejecting paths that would silently truncate.
inline void fill_uds_addr(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("net: UDS path \"" + path +
                             "\" is empty or longer than sun_path (" +
                             std::to_string(sizeof(addr.sun_path) - 1) + ")");
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

/// Nonblocking Unix-domain listener on `path`. An existing socket file at
/// `path` is unlinked first (the daemon-restart idiom; a stale socket left
/// by a killed broker must not wedge the next one).
inline FdHandle listen_uds(const std::string& path, int backlog = 128) {
  sockaddr_un addr;
  fill_uds_addr(path, addr);
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid())
    throw std::runtime_error("net: socket(AF_UNIX): " +
                             std::string(std::strerror(errno)));
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw std::runtime_error("net: bind(" + path + "): " +
                             std::string(std::strerror(errno)));
  if (::listen(fd.get(), backlog) != 0)
    throw std::runtime_error("net: listen(" + path + "): " +
                             std::string(std::strerror(errno)));
  if (!set_nonblocking(fd.get()))
    throw std::runtime_error("net: set_nonblocking(" + path + ") failed");
  return fd;
}

/// Nonblocking TCP listener on 127.0.0.1:<port>. Port 0 asks the kernel to
/// pick; bound_tcp_port() reads the result back. Loopback-only on purpose:
/// the broker has no auth story, so it must not listen on the wire.
inline FdHandle listen_tcp(uint16_t port, int backlog = 128) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid())
    throw std::runtime_error("net: socket(AF_INET): " +
                             std::string(std::strerror(errno)));
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw std::runtime_error("net: bind(127.0.0.1:" + std::to_string(port) +
                             "): " + std::string(std::strerror(errno)));
  if (::listen(fd.get(), backlog) != 0)
    throw std::runtime_error("net: listen(127.0.0.1:" + std::to_string(port) +
                             "): " + std::string(std::strerror(errno)));
  if (!set_nonblocking(fd.get()))
    throw std::runtime_error("net: set_nonblocking(tcp) failed");
  return fd;
}

/// Port a listener actually bound (resolves the port-0 "pick one" case).
inline uint16_t bound_tcp_port(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

/// Blocking client connect to a UDS path; invalid handle + errno on failure.
inline FdHandle connect_uds(const std::string& path) {
  sockaddr_un addr;
  fill_uds_addr(path, addr);
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return FdHandle();
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0)
    return FdHandle();
  return fd;
}

/// Blocking client connect to 127.0.0.1:<port>. TCP_NODELAY is set: the
/// protocol is request/response with small frames, where Nagle + delayed
/// ACK turns every closed-loop RTT into 40ms.
inline FdHandle connect_tcp(uint16_t port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return FdHandle();
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0)
    return FdHandle();
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Bounded receive/send timeouts on a blocking socket (SO_RCVTIMEO /
/// SO_SNDTIMEO). After this, read()/write() return -1 with EAGAIN when the
/// peer stalls past `ms` — the CLI paths (broker --report, loadgen,
/// ClusterClient) use it so a hung or partitioned broker yields a clean
/// error instead of wedging forever (ISSUE 10 satellite).
inline bool set_recv_timeout(int fd, uint64_t ms) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

inline bool set_send_timeout(int fd, uint64_t ms) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  return ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

namespace detail {

/// Finishes a nonblocking connect within `timeout_ms`: polls for
/// writability, then checks SO_ERROR (a writable socket may still hold a
/// deferred ECONNREFUSED). Restores blocking mode on success.
inline FdHandle finish_timed_connect(FdHandle fd, const sockaddr* addr,
                                     socklen_t addrlen, uint64_t timeout_ms) {
  if (!set_nonblocking(fd.get())) return FdHandle();
  if (::connect(fd.get(), addr, addrlen) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) return FdHandle();
    pollfd pfd{fd.get(), POLLOUT, 0};
    int rc;
    do {
      rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      errno = (rc == 0) ? ETIMEDOUT : errno;
      return FdHandle();
    }
    int err = 0;
    socklen_t elen = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &elen) != 0 ||
        err != 0) {
      errno = err != 0 ? err : errno;
      return FdHandle();
    }
  }
  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) != 0)
    return FdHandle();
  return fd;
}

}  // namespace detail

/// connect_tcp with a connect deadline: gives up after `timeout_ms` instead
/// of the kernel's multi-minute SYN retry schedule. Returns a BLOCKING fd
/// with TCP_NODELAY set, like connect_tcp.
inline FdHandle connect_tcp_timeout(uint16_t port, uint64_t timeout_ms) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return FdHandle();
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  fd = detail::finish_timed_connect(std::move(fd),
                                    reinterpret_cast<sockaddr*>(&addr),
                                    sizeof(addr), timeout_ms);
  if (!fd.valid()) return FdHandle();
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// connect_uds with a connect deadline; UDS connects only block when the
/// listener's backlog is full, i.e. exactly when the broker is wedged.
inline FdHandle connect_uds_timeout(const std::string& path,
                                    uint64_t timeout_ms) {
  sockaddr_un addr;
  fill_uds_addr(path, addr);
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return FdHandle();
  return detail::finish_timed_connect(std::move(fd),
                                      reinterpret_cast<sockaddr*>(&addr),
                                      sizeof(addr), timeout_ms);
}

/// send() the whole buffer on a BLOCKING socket, riding out EINTR and the
/// nonblocking-peer case (EAGAIN busy-waits via a poll-less retry is wrong;
/// client sockets in loadgen stay blocking, so EAGAIN means a real bug).
/// MSG_NOSIGNAL: a peer that died mid-conversation (a SIGKILLed cluster
/// replica, a vanished client) must surface as EPIPE => false, not as a
/// process-killing SIGPIPE — every caller handles the false.
inline bool write_all(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

inline bool write_all(int fd, const std::string& buf) {
  return write_all(fd, buf.data(), buf.size());
}

}  // namespace wfq::net
