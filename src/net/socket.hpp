// Socket plumbing for the broker subsystem (ISSUE 8): RAII fd handle,
// nonblocking Unix-domain + TCP listeners, and the matching client connect
// helpers. Everything returns -1/false with errno preserved instead of
// throwing — the event loop treats socket failure as a per-connection
// event, not a process error — except listener setup, which throws
// std::runtime_error with the failing address in the message (a daemon
// that cannot bind its socket has nothing to fall back to).
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace wfq::net {

/// Owning fd wrapper: closes on destruction, movable, non-copyable.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  FdHandle(FdHandle&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  FdHandle& operator=(FdHandle&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  ~FdHandle() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

inline bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Fills a sockaddr_un, rejecting paths that would silently truncate.
inline void fill_uds_addr(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("net: UDS path \"" + path +
                             "\" is empty or longer than sun_path (" +
                             std::to_string(sizeof(addr.sun_path) - 1) + ")");
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

/// Nonblocking Unix-domain listener on `path`. An existing socket file at
/// `path` is unlinked first (the daemon-restart idiom; a stale socket left
/// by a killed broker must not wedge the next one).
inline FdHandle listen_uds(const std::string& path, int backlog = 128) {
  sockaddr_un addr;
  fill_uds_addr(path, addr);
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid())
    throw std::runtime_error("net: socket(AF_UNIX): " +
                             std::string(std::strerror(errno)));
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw std::runtime_error("net: bind(" + path + "): " +
                             std::string(std::strerror(errno)));
  if (::listen(fd.get(), backlog) != 0)
    throw std::runtime_error("net: listen(" + path + "): " +
                             std::string(std::strerror(errno)));
  if (!set_nonblocking(fd.get()))
    throw std::runtime_error("net: set_nonblocking(" + path + ") failed");
  return fd;
}

/// Nonblocking TCP listener on 127.0.0.1:<port>. Port 0 asks the kernel to
/// pick; bound_tcp_port() reads the result back. Loopback-only on purpose:
/// the broker has no auth story, so it must not listen on the wire.
inline FdHandle listen_tcp(uint16_t port, int backlog = 128) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid())
    throw std::runtime_error("net: socket(AF_INET): " +
                             std::string(std::strerror(errno)));
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw std::runtime_error("net: bind(127.0.0.1:" + std::to_string(port) +
                             "): " + std::string(std::strerror(errno)));
  if (::listen(fd.get(), backlog) != 0)
    throw std::runtime_error("net: listen(127.0.0.1:" + std::to_string(port) +
                             "): " + std::string(std::strerror(errno)));
  if (!set_nonblocking(fd.get()))
    throw std::runtime_error("net: set_nonblocking(tcp) failed");
  return fd;
}

/// Port a listener actually bound (resolves the port-0 "pick one" case).
inline uint16_t bound_tcp_port(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

/// Blocking client connect to a UDS path; invalid handle + errno on failure.
inline FdHandle connect_uds(const std::string& path) {
  sockaddr_un addr;
  fill_uds_addr(path, addr);
  FdHandle fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return FdHandle();
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0)
    return FdHandle();
  return fd;
}

/// Blocking client connect to 127.0.0.1:<port>. TCP_NODELAY is set: the
/// protocol is request/response with small frames, where Nagle + delayed
/// ACK turns every closed-loop RTT into 40ms.
inline FdHandle connect_tcp(uint16_t port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return FdHandle();
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0)
    return FdHandle();
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// write() the whole buffer on a BLOCKING fd, riding out EINTR and the
/// nonblocking-peer case (EAGAIN busy-waits via a poll-less retry is wrong;
/// client sockets in loadgen stay blocking, so EAGAIN means a real bug).
inline bool write_all(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

inline bool write_all(int fd, const std::string& buf) {
  return write_all(fd, buf.data(), buf.size());
}

}  // namespace wfq::net
