// wfb-v1 wire frame codec (ISSUE 8 tentpole, net layer): the length-prefixed
// binary frame the broker daemon and the loadgen client speak. A frame is a
// fixed 16-byte little-endian header followed by `len` payload bytes:
//
//   offset  size  field
//   0       4     magic "WFB1" (bytes 'W' 'F' 'B' '1')
//   4       1     version (currently 1)
//   5       1     opcode (see Opcode)
//   6       2     flags (reserved, must round-trip; no bits assigned yet)
//   8       4     key — routing id: the broker shards by hash(key) % shards,
//                 and a dwrr-backed shard maps key % ntenants to a tenant
//   12      4     payload length, at most kMaxPayload
//   16      len   payload bytes
//
// Encoding is append-to-string (so a burst of responses becomes ONE write
// buffer); decoding is incremental — Decoder::feed accepts arbitrary byte
// chunks (a single byte at a time is fine) and next() yields complete
// frames. Malformed input (bad magic, unknown version/opcode, oversized
// length) is a TYPED, STICKY error: the stream position is unrecoverable
// once framing is lost, so the connection must be dropped, never resynced
// by guesswork. Truncation is only detectable at stream end: at_eof()
// distinguishes a clean boundary from a frame cut mid-flight.
//
// The full spec with rationale lives in docs/PROTOCOL.md.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <string>

namespace wfq::net {

/// Frame types. Requests (client -> broker) sit below 0x80, responses
/// (broker -> client) above — so a peer can tell a mirrored stream from a
/// legitimate one, and the codec can reject opcodes outside either band.
enum class Opcode : uint8_t {
  // requests
  enq = 0x01,   // payload: exactly 8 bytes, the little-endian item value
  deq = 0x02,   // payload: empty
  stat = 0x03,  // payload: empty
  ping = 0x04,  // payload: arbitrary (echoed back verbatim in pong)
  setw = 0x05,  // payload: 8 bytes, u32 tenant + u32 weight (LE); cluster
                // mode replicates through the raft log before acking
  // raft band (replica -> replica, request band; key = sender node id,
  // payload = raft::encode_body of the matching message type)
  raft_vote_req = 0x10,
  raft_vote_resp = 0x11,
  raft_append_req = 0x12,
  raft_append_resp = 0x13,
  // responses
  enq_ok = 0x81,     // payload: empty
  deq_ok = 0x82,     // payload: 8 bytes, the dequeued value
  deq_empty = 0x83,  // payload: empty (queue observably empty)
  stat_ok = 0x84,    // payload: JSON stat report (see broker::Broker)
  pong = 0x85,       // payload: the ping payload, echoed
  err = 0x86,        // payload: human-readable reason; peer should close
  setw_ok = 0x87,    // payload: empty (weight applied — in cluster mode,
                     // committed and applied on the leader)
  err_not_leader = 0x88,  // payload: 4 bytes LE, the current leader's node
                          // id, or 0xffffffff when unknown; client should
                          // redirect (docs/PROTOCOL.md)
};

/// True iff `op` is one of the assigned opcode values.
inline bool opcode_known(uint8_t op) {
  switch (static_cast<Opcode>(op)) {
    case Opcode::enq:
    case Opcode::deq:
    case Opcode::stat:
    case Opcode::ping:
    case Opcode::setw:
    case Opcode::raft_vote_req:
    case Opcode::raft_vote_resp:
    case Opcode::raft_append_req:
    case Opcode::raft_append_resp:
    case Opcode::enq_ok:
    case Opcode::deq_ok:
    case Opcode::deq_empty:
    case Opcode::stat_ok:
    case Opcode::pong:
    case Opcode::err:
    case Opcode::setw_ok:
    case Opcode::err_not_leader:
      return true;
  }
  return false;
}

inline const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::enq: return "ENQ";
    case Opcode::deq: return "DEQ";
    case Opcode::stat: return "STAT";
    case Opcode::ping: return "PING";
    case Opcode::setw: return "SETW";
    case Opcode::raft_vote_req: return "RAFT_VOTE_REQ";
    case Opcode::raft_vote_resp: return "RAFT_VOTE_RESP";
    case Opcode::raft_append_req: return "RAFT_APPEND_REQ";
    case Opcode::raft_append_resp: return "RAFT_APPEND_RESP";
    case Opcode::enq_ok: return "ENQ_OK";
    case Opcode::deq_ok: return "DEQ_OK";
    case Opcode::deq_empty: return "DEQ_EMPTY";
    case Opcode::stat_ok: return "STAT_OK";
    case Opcode::pong: return "PONG";
    case Opcode::err: return "ERR";
    case Opcode::setw_ok: return "SETW_OK";
    case Opcode::err_not_leader: return "ERR_NOT_LEADER";
  }
  return "?";
}

inline constexpr uint8_t kVersion = 1;
inline constexpr size_t kHeaderSize = 16;
/// Payload ceiling: generous for stat reports, small enough that a
/// corrupted length field cannot make the decoder buffer gigabytes before
/// noticing the stream is garbage.
inline constexpr uint32_t kMaxPayload = 1u << 20;
inline constexpr char kMagic[4] = {'W', 'F', 'B', '1'};

/// One decoded (or to-be-encoded) frame.
struct Frame {
  Opcode op = Opcode::ping;
  uint16_t flags = 0;
  uint32_t key = 0;
  std::string payload;
};

/// Typed decode outcomes. `ok`/`need_more` are progress states; everything
/// else is a fatal framing error (sticky — see Decoder).
enum class DecodeStatus : uint8_t {
  ok,           // next() produced a frame
  need_more,    // no complete frame buffered yet
  bad_magic,    // first 4 bytes of a header are not "WFB1"
  bad_version,  // version byte != kVersion
  bad_opcode,   // opcode outside the assigned request/response bands
  oversize,     // payload length field exceeds kMaxPayload
  truncated,    // stream ended mid-frame (reported by at_eof only)
};

inline const char* decode_status_name(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::ok: return "ok";
    case DecodeStatus::need_more: return "need_more";
    case DecodeStatus::bad_magic: return "bad_magic";
    case DecodeStatus::bad_version: return "bad_version";
    case DecodeStatus::bad_opcode: return "bad_opcode";
    case DecodeStatus::oversize: return "oversize";
    case DecodeStatus::truncated: return "truncated";
  }
  return "?";
}

namespace detail {

inline void put_u16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void put_u32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline uint16_t get_u16(const char* p) {
  return static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                               (static_cast<uint16_t>(
                                    static_cast<uint8_t>(p[1]))
                                << 8));
}

inline uint32_t get_u32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  return v;
}

}  // namespace detail

/// Appends the encoded frame to `out`. Appending (not returning) is the
/// point: a servicer encodes a whole burst of responses into one buffer
/// and hands the event loop a single write.
inline void encode_frame(const Frame& f, std::string& out) {
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(f.op));
  detail::put_u16(out, f.flags);
  detail::put_u32(out, f.key);
  detail::put_u32(out, static_cast<uint32_t>(f.payload.size()));
  out.append(f.payload);
}

/// Packs a uint64 item value as the 8-byte little-endian ENQ/DEQ_OK payload.
inline std::string encode_value(uint64_t v) {
  std::string s;
  s.reserve(8);
  for (int i = 0; i < 8; ++i)
    s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  return s;
}

/// Packs two uint32s as an 8-byte LE payload (SETW: tenant then weight).
inline std::string encode_u32_pair(uint32_t a, uint32_t b) {
  std::string s;
  s.reserve(8);
  detail::put_u32(s, a);
  detail::put_u32(s, b);
  return s;
}

inline bool decode_u32_pair(const std::string& payload, uint32_t& a,
                            uint32_t& b) {
  if (payload.size() != 8) return false;
  a = detail::get_u32(payload.data());
  b = detail::get_u32(payload.data() + 4);
  return true;
}

/// Packs one uint32 as a 4-byte LE payload (ERR_NOT_LEADER leader hint;
/// 0xffffffff = leader unknown).
inline std::string encode_u32(uint32_t v) {
  std::string s;
  s.reserve(4);
  detail::put_u32(s, v);
  return s;
}

inline bool decode_u32(const std::string& payload, uint32_t& out) {
  if (payload.size() != 4) return false;
  out = detail::get_u32(payload.data());
  return true;
}

/// Reads an 8-byte little-endian value payload; false if the size is wrong.
inline bool decode_value(const std::string& payload, uint64_t& out) {
  if (payload.size() != 8) return false;
  out = 0;
  for (int i = 0; i < 8; ++i)
    out |= static_cast<uint64_t>(static_cast<uint8_t>(payload[static_cast<size_t>(i)]))
           << (8 * i);
  return true;
}

/// Incremental frame decoder: feed() arbitrary chunks, then drain complete
/// frames with next(). Once a framing error is hit the decoder is POISONED:
/// every later next() repeats the same typed error (the byte stream has no
/// trustworthy resync point), and the connection owner is expected to close.
class Decoder {
 public:
  /// Buffers `n` bytes. Accepts any chunking, including 1 byte at a time.
  /// Errors are only diagnosed in next(): feed stays O(memcpy) and the
  /// caller gets one error surface, not two. Feeding a poisoned decoder
  /// drops the bytes (the connection is already doomed — don't buffer an
  /// attacker's stream).
  void feed(const char* data, size_t n) {
    if (error_ != DecodeStatus::ok) return;
    buf_.append(data, n);
  }
  void feed(const std::string& bytes) { feed(bytes.data(), bytes.size()); }

  /// Extracts the next complete frame into `out`. Returns `ok` (frame
  /// written), `need_more` (buffer holds a prefix of a valid frame, or
  /// nothing), or the sticky framing error.
  DecodeStatus next(Frame& out) {
    if (error_ != DecodeStatus::ok) return error_;
    if (buf_.size() - pos_ < kHeaderSize) {
      compact();
      return DecodeStatus::need_more;
    }
    const char* h = buf_.data() + pos_;
    if (std::memcmp(h, kMagic, sizeof(kMagic)) != 0)
      return poison(DecodeStatus::bad_magic);
    if (static_cast<uint8_t>(h[4]) != kVersion)
      return poison(DecodeStatus::bad_version);
    if (!opcode_known(static_cast<uint8_t>(h[5])))
      return poison(DecodeStatus::bad_opcode);
    uint32_t len = detail::get_u32(h + 12);
    if (len > kMaxPayload) return poison(DecodeStatus::oversize);
    if (buf_.size() - pos_ < kHeaderSize + len) {
      compact();
      return DecodeStatus::need_more;
    }
    out.op = static_cast<Opcode>(static_cast<uint8_t>(h[5]));
    out.flags = detail::get_u16(h + 6);
    out.key = detail::get_u32(h + 8);
    out.payload.assign(buf_, pos_ + kHeaderSize, len);
    pos_ += kHeaderSize + len;
    return DecodeStatus::ok;
  }

  /// Stream-end check: `ok` on a clean frame boundary, `truncated` if bytes
  /// of an incomplete frame are pending, or the sticky error. The peer
  /// closing mid-frame is a protocol violation the event loop reports.
  DecodeStatus at_eof() const {
    if (error_ != DecodeStatus::ok) return error_;
    return buf_.size() == pos_ ? DecodeStatus::ok : DecodeStatus::truncated;
  }

  /// Bytes buffered but not yet consumed by next().
  size_t pending() const { return buf_.size() - pos_; }

 private:
  DecodeStatus poison(DecodeStatus s) {
    error_ = s;
    buf_.clear();
    pos_ = 0;
    return s;
  }

  /// Drops consumed bytes once the consumed prefix dominates the buffer —
  /// amortized O(1) per byte, and a long-lived connection's buffer stays
  /// at the high-water mark of one burst, not the whole session.
  void compact() {
    if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
  }

  std::string buf_;
  size_t pos_ = 0;
  DecodeStatus error_ = DecodeStatus::ok;
};

}  // namespace wfq::net
