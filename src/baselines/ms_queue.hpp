// Michael–Scott lock-free queue baseline, on Platform atomics so the sim can
// count its shared steps. This is the CAS-retry-problem exemplar of the paper
// (E4/E5): under the round-robin adversary each successful head/tail CAS
// fails the other p-1 lock-step attempts, so CAS attempts per op grow ~ p.
//
// Memory: nodes are never reclaimed during operation (which also sidesteps
// ABA); every allocation is threaded onto an uncounted intrusive list and
// freed by the destructor.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "platform/platform.hpp"

namespace wfq::baselines {

template <typename T, typename Platform = platform::RealPlatform>
class MsQueue {
 public:
  explicit MsQueue(int /*procs*/ = 1) {
    Node* dummy = alloc(T{});
    head_.unsafe_store(dummy);
    tail_.unsafe_store(dummy);
  }

  MsQueue(const MsQueue&) = delete;
  MsQueue& operator=(const MsQueue&) = delete;

  ~MsQueue() {
    Node* n = alloc_list_.load(std::memory_order_acquire);
    while (n != nullptr) {
      Node* next = n->alloc_next;
      delete n;
      n = next;
    }
  }

  void bind_thread(int /*pid*/) {}

  void enqueue(T x) {
    Node* n = alloc(std::move(x));
    for (;;) {
      Node* last = tail_.load();
      Node* next = last->next.load();
      if (next != nullptr) {
        tail_.cas(last, next);  // help a lagging tail forward
        continue;
      }
      if (last->next.cas(nullptr, n)) {
        tail_.cas(last, n);
        return;
      }
    }
  }

  std::optional<T> dequeue() {
    for (;;) {
      Node* first = head_.load();
      Node* last = tail_.load();
      Node* next = first->next.load();
      if (first == last) {
        if (next == nullptr) return std::nullopt;
        tail_.cas(last, next);
        continue;
      }
      T v = next->val;  // safe: nodes live until the destructor
      if (head_.cas(first, next)) return v;
    }
  }

 private:
  struct Node {
    T val;
    typename Platform::template Atomic<Node*> next{nullptr};
    Node* alloc_next = nullptr;  // uncounted bookkeeping chain for the dtor
  };

  Node* alloc(T x) {
    Node* n = new Node{std::move(x), {}, nullptr};
    Node* old = alloc_list_.load(std::memory_order_relaxed);
    do {
      n->alloc_next = old;
    } while (!alloc_list_.compare_exchange_weak(old, n,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed));
    return n;
  }

  typename Platform::template Atomic<Node*> head_{nullptr};
  typename Platform::template Atomic<Node*> tail_{nullptr};
  std::atomic<Node*> alloc_list_{nullptr};
};

}  // namespace wfq::baselines
