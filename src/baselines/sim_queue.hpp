// SimQueue-style software-combining queue baseline (Fatourou & Kallimanis,
// "A highly-efficient wait-free universal construction" / SimQueue): the
// strongest known contender at high contention, which is what makes the E5
// comparisons credible instead of strawman-vs-paper.
//
// Protocol (the P-Sim shape, all shared accesses counted through Platform
// atomics):
//  - announce: each process owns a slot in a toggle-bit announce vector; it
//    publishes an immutable operation record, then flips its toggle bit —
//    "my bit differs from the state's applied bit" means "my op is pending";
//  - combine: a process whose op is not yet applied copies the shared state,
//    scans the whole announce vector, applies EVERY pending operation into
//    the copy (recording a response per process), and installs the copy with
//    a single CAS on the state pointer;
//  - collect: losers re-read the state pointer; once the applied bit matches
//    their toggle, their response record is in the installed state.
//
// One combining round costs Theta(p) shared steps but retires up to p
// operations, so under asymmetric contention (one runner, p-1 stalled — the
// anti-faa schedule) the amortized per-op cost is flat; under perfect
// lock-step every process scans and the cost degrades to ~p per op, the
// known SimQueue worst case (E5c shows both regimes).
//
// Queue representation inside the state: a purely functional two-list queue
// (front list in dequeue order + back list reversed, rebalanced on demand
// with fresh cells) so the state copy is O(p) pointer work and installed
// states share structure immutably. This deviates from the original's
// deferred-link trick on one shared linked list, but the announce/combine/
// install protocol — the thing being benchmarked — is the SimQueue one.
//
// Memory: states, announce records and list cells are never reclaimed during
// operation (no ABA on the install CAS by construction); every allocation is
// threaded onto an uncounted intrusive list and freed by the destructor.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "platform/platform.hpp"

namespace wfq::baselines {

template <typename T, typename Platform = platform::RealPlatform>
class SimQueue {
 public:
  explicit SimQueue(int procs)
      : procs_(procs < 1 ? 1 : procs),
        ann_(static_cast<size_t>(procs_)) {
    State* s = alloc_state();
    s->applied.assign(static_cast<size_t>(procs_), 0);
    s->resp.assign(static_cast<size_t>(procs_), Resp{});
    sp_.unsafe_store(s);
  }

  SimQueue(const SimQueue&) = delete;
  SimQueue& operator=(const SimQueue&) = delete;

  ~SimQueue() {
    State* s = state_allocs_.load(std::memory_order_acquire);
    while (s != nullptr) {
      State* next = s->alloc_next;
      delete s;
      s = next;
    }
    OpRec* r = rec_allocs_.load(std::memory_order_acquire);
    while (r != nullptr) {
      OpRec* next = r->alloc_next;
      delete r;
      r = next;
    }
    Cons* c = cons_allocs_.load(std::memory_order_acquire);
    while (c != nullptr) {
      Cons* next = c->alloc_next;
      delete c;
      c = next;
    }
  }

  void bind_thread(int pid) { platform::bind_thread(pid); }

  void enqueue(T x) { (void)apply(true, std::move(x)); }

  std::optional<T> dequeue() { return apply(false, T{}); }

 private:
  /// Immutable operation record published through the announce slot; read by
  /// combiners only after an acquire load of the record pointer, so there is
  /// no unsynchronized access to the payload.
  struct OpRec {
    bool is_enq = false;
    T val{};
    OpRec* alloc_next = nullptr;
  };

  struct Resp {
    bool has_value = false;
    T val{};
  };

  /// Immutable cons cell of the functional two-list queue.
  struct Cons {
    T val{};
    Cons* next = nullptr;
    Cons* alloc_next = nullptr;
  };

  /// Shared state: immutable once installed. `applied[i]` is the toggle bit
  /// of process i's last applied operation; `resp[i]` its response.
  struct State {
    std::vector<uint8_t> applied;
    std::vector<Resp> resp;
    Cons* front = nullptr;  // oldest elements, in dequeue order
    Cons* back = nullptr;   // newest elements, reversed
    State* alloc_next = nullptr;
  };

  struct alignas(64) Announce {
    typename Platform::template Atomic<uint64_t> toggle{0};
    typename Platform::template Atomic<OpRec*> rec{nullptr};
    uint8_t local_bit = 0;  // owner-local: the bit my NEXT announce flips to
  };

  std::optional<T> apply(bool is_enq, T val) {
    const size_t self =
        static_cast<size_t>(platform::current_pid()) % ann_.size();
    Announce& a = ann_[self];
    OpRec* rec = alloc_rec(is_enq, std::move(val));
    const uint8_t t = static_cast<uint8_t>(a.local_bit ^ 1);
    a.local_bit = t;
    a.rec.store(rec);  // payload first...
    a.toggle.store(t);  // ...then the toggle flip IS the announcement
    for (;;) {
      State* s = sp_.load();
      if (s->applied[self] == t) {
        const Resp& r = s->resp[self];
        if (is_enq) return std::nullopt;
        if (!r.has_value) return std::nullopt;
        return std::optional<T>(r.val);
      }
      combine(s);
    }
  }

  /// One combining round over snapshot `s`. A successful install means `s`
  /// was current for the whole scan (states are never reused, so the CAS is
  /// ABA-free), which makes every applied (toggle, record) pair consistent:
  /// had any scanned op already been applied elsewhere, sp_ would have moved
  /// and our CAS would fail, discarding the copy.
  void combine(State* s) {
    State* ns = alloc_state();
    ns->applied = s->applied;
    ns->resp = s->resp;
    ns->front = s->front;
    ns->back = s->back;
    for (size_t i = 0; i < ann_.size(); ++i) {
      const uint64_t t = ann_[i].toggle.load();  // the Theta(p) announce scan
      if (static_cast<uint8_t>(t) == ns->applied[i]) continue;
      const OpRec* rec = ann_[i].rec.load();
      Resp r{};
      if (rec->is_enq) {
        ns->back = alloc_cons(rec->val, ns->back);
      } else {
        if (ns->front == nullptr) {
          // Rebalance with fresh immutable cells: reversing `back` (newest
          // first) by prepending yields oldest-first order.
          for (Cons* c = ns->back; c != nullptr; c = c->next)
            ns->front = alloc_cons(c->val, ns->front);
          ns->back = nullptr;
        }
        if (ns->front != nullptr) {
          r.has_value = true;
          r.val = ns->front->val;
          ns->front = ns->front->next;
        }
      }
      ns->applied[i] = static_cast<uint8_t>(t);
      ns->resp[i] = r;
    }
    sp_.cas(s, ns);  // the single install CAS; a failed copy just leaks to
                     // the dtor list and the caller re-reads sp_
  }

  State* alloc_state() {
    State* s = new State;
    State* old = state_allocs_.load(std::memory_order_relaxed);
    do {
      s->alloc_next = old;
    } while (!state_allocs_.compare_exchange_weak(old, s,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_relaxed));
    return s;
  }

  OpRec* alloc_rec(bool is_enq, T val) {
    OpRec* r = new OpRec;
    r->is_enq = is_enq;
    r->val = std::move(val);
    OpRec* old = rec_allocs_.load(std::memory_order_relaxed);
    do {
      r->alloc_next = old;
    } while (!rec_allocs_.compare_exchange_weak(old, r,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed));
    return r;
  }

  Cons* alloc_cons(const T& val, Cons* next) {
    Cons* c = new Cons;
    c->val = val;
    c->next = next;
    Cons* old = cons_allocs_.load(std::memory_order_relaxed);
    do {
      c->alloc_next = old;
    } while (!cons_allocs_.compare_exchange_weak(old, c,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed));
    return c;
  }

  int procs_;
  std::vector<Announce> ann_;
  typename Platform::template Atomic<State*> sp_{nullptr};
  std::atomic<State*> state_allocs_{nullptr};
  std::atomic<OpRec*> rec_allocs_{nullptr};
  std::atomic<Cons*> cons_allocs_{nullptr};
};

}  // namespace wfq::baselines
