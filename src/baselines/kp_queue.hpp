// Kogan–Petrank-style wait-free queue comparator (E5). STUB-GRADE: the
// defining cost of the KP design — every operation announces itself and
// scans all p announcement slots before touching the queue — is modeled
// faithfully (Theta(p) shared steps per op, even uncontended), but helping
// is observational only: after the scan, each process applies its own
// operation on an internal MS-queue instead of applying peers' announced
// ops via enqTid/deqTid tagged nodes. A faithful KP port (phase-ordered
// helping) is a ROADMAP open item; the bench shapes (linear in p) and FIFO
// behavior are already exact.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "baselines/ms_queue.hpp"
#include "platform/platform.hpp"

namespace wfq::baselines {

template <typename T, typename Platform = platform::RealPlatform>
class KpQueue {
 public:
  explicit KpQueue(int procs)
      : procs_(procs < 1 ? 1 : procs),
        state_(static_cast<size_t>(procs_)) {}

  void bind_thread(int pid) { platform::bind_thread(pid); }

  void enqueue(T x) {
    announce_and_scan();
    q_.enqueue(std::move(x));
  }

  std::optional<T> dequeue() {
    announce_and_scan();
    return q_.dequeue();
  }

 private:
  struct alignas(64) OpState {
    typename Platform::template Atomic<int64_t> phase{0};
  };

  /// KP's phase protocol: publish phase = 1 + max over all announcements,
  /// which costs one scan of all p slots — the Theta(p) term per operation.
  void announce_and_scan() {
    size_t self = static_cast<size_t>(platform::current_pid()) % state_.size();
    int64_t maxphase = 0;
    for (const OpState& s : state_) {
      int64_t ph = s.phase.load();
      if (ph > maxphase) maxphase = ph;
    }
    state_[self].phase.store(maxphase + 1);
  }

  int procs_;
  std::vector<OpState> state_;
  MsQueue<T, Platform> q_;
};

}  // namespace wfq::baselines
