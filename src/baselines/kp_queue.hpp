// Kogan–Petrank wait-free queue baseline (E4/E5), ported faithfully from
// "Wait-Free Queues With Multiple Enqueuers and Dequeuers" (PPoPP 2011).
// This replaced the PR-2 stub whose helping was observational only: here the
// full phase-based helping protocol runs on shared state, so any process can
// complete any other process's announced operation.
//
// Protocol shape (all of it counted through Platform atomics):
//  - per-process announcement slots hold immutable operation descriptors
//    {phase, pending, enqueue, node}; an operation publishes itself at phase
//    1 + max over all announced phases (the Theta(p) maxPhase scan);
//  - help(phase) walks every slot and completes all pending operations with
//    lower-or-equal phase before returning — the wait-freedom argument: an
//    op at phase P is helped by every op that starts after it;
//  - nodes are enqTid-tagged at allocation and deqTid-tagged by CAS(-1, tid)
//    so concurrent helpers agree on exactly one winner per list slot: an
//    enqueue is decided by the unique successful next-CAS of its node, a
//    dequeue by the unique successful deqTid-CAS on the current head, and
//    the tail/head/descriptor CASes after either are idempotent helping.
//
// Memory: nodes and descriptors are never reclaimed during operation (which
// also sidesteps ABA, exactly like the MS-queue baseline); every allocation
// is threaded onto an uncounted intrusive list and freed by the destructor.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "platform/platform.hpp"

namespace wfq::baselines {

template <typename T, typename Platform = platform::RealPlatform>
class KpQueue {
 public:
  explicit KpQueue(int procs)
      : procs_(procs < 1 ? 1 : procs),
        state_(static_cast<size_t>(procs_)) {
    Node* dummy = alloc_node(T{}, /*enq_tid=*/-1);
    head_.unsafe_store(dummy);
    tail_.unsafe_store(dummy);
    // Initial descriptors: completed, phase -1, so maxPhase starts at -1 and
    // the first real operation announces at phase 0.
    for (Slot& s : state_)
      s.desc.unsafe_store(alloc_desc(-1, false, true, nullptr));
  }

  KpQueue(const KpQueue&) = delete;
  KpQueue& operator=(const KpQueue&) = delete;

  ~KpQueue() {
    Node* n = node_allocs_.load(std::memory_order_acquire);
    while (n != nullptr) {
      Node* next = n->alloc_next;
      delete n;
      n = next;
    }
    OpDesc* d = desc_allocs_.load(std::memory_order_acquire);
    while (d != nullptr) {
      OpDesc* next = d->alloc_next;
      delete d;
      d = next;
    }
  }

  void bind_thread(int pid) { platform::bind_thread(pid); }

  void enqueue(T x) {
    const int self = me();
    Node* n = alloc_node(std::move(x), self);
    int64_t phase = max_phase() + 1;
    state_[static_cast<size_t>(self)].desc.store(
        alloc_desc(phase, true, true, n));
    help(phase);
    help_finish_enq();
  }

  std::optional<T> dequeue() {
    const int self = me();
    int64_t phase = max_phase() + 1;
    state_[static_cast<size_t>(self)].desc.store(
        alloc_desc(phase, true, false, nullptr));
    help(phase);
    help_finish_deq();
    OpDesc* d = state_[static_cast<size_t>(self)].desc.load();
    if (d->node == nullptr) return std::nullopt;  // linearized against empty
    // d->node is the node that preceded ours when we won the deqTid CAS; its
    // successor holds our value. next is write-once, so this read is stable.
    Node* winner = d->node->next.load();
    return winner->val;
  }

 private:
  struct Node {
    T val{};
    int enq_tid = -1;  // immutable tag: which process allocated this node
    typename Platform::template Atomic<Node*> next{nullptr};
    typename Platform::template Atomic<int64_t> deq_tid{-1};
    Node* alloc_next = nullptr;  // uncounted bookkeeping chain for the dtor
  };

  /// Immutable once published; transitions happen by CASing the slot to a
  /// freshly allocated descriptor (pending -> completed keeps the same node
  /// for enqueues and records the predecessor node for dequeues).
  struct OpDesc {
    int64_t phase = -1;
    bool pending = false;
    bool enqueue = true;
    Node* node = nullptr;
    OpDesc* alloc_next = nullptr;
  };

  struct alignas(64) Slot {
    typename Platform::template Atomic<OpDesc*> desc{nullptr};
  };

  int me() const {
    return static_cast<int>(static_cast<size_t>(platform::current_pid()) %
                            state_.size());
  }

  /// The defining Theta(p) cost: every operation scans all p announcement
  /// slots to pick a phase larger than everything already announced.
  int64_t max_phase() {
    int64_t mp = -1;
    for (Slot& s : state_) {
      OpDesc* d = s.desc.load();
      if (d->phase > mp) mp = d->phase;
    }
    return mp;
  }

  bool is_still_pending(int tid, int64_t phase) {
    OpDesc* d = state_[static_cast<size_t>(tid)].desc.load();
    return d->pending && d->phase <= phase;
  }

  /// Completes every announced operation whose phase is <= `phase` — our own
  /// included, which is what makes enqueue/dequeue wait-free.
  void help(int64_t phase) {
    for (size_t i = 0; i < state_.size(); ++i) {
      OpDesc* d = state_[i].desc.load();
      if (d->pending && d->phase <= phase) {
        if (d->enqueue)
          help_enq(static_cast<int>(i), phase);
        else
          help_deq(static_cast<int>(i), phase);
      }
    }
  }

  void help_enq(int tid, int64_t phase) {
    while (is_still_pending(tid, phase)) {
      Node* last = tail_.load();
      Node* next = last->next.load();
      if (last != tail_.load()) continue;
      if (next == nullptr) {
        // Re-check pending right before the append CAS: if tid's op was
        // completed meanwhile, its node is already linked and tail has (or
        // will have) advanced — appending it again would corrupt the list.
        // The CAS can only succeed while the node was never linked (next
        // pointers are write-once and tail never passes an unlinked node).
        OpDesc* d = state_[static_cast<size_t>(tid)].desc.load();
        if (d->pending && d->phase <= phase) {
          if (last->next.cas(nullptr, d->node)) {
            help_finish_enq();
            return;
          }
        }
      } else {
        help_finish_enq();  // an enqueue is mid-flight: finish it first
      }
    }
  }

  /// Completes the enqueue whose node hangs off the current tail: CAS the
  /// owner's descriptor to completed, then swing the tail. Both CASes are
  /// idempotent helping — losers observe a later state and back off.
  void help_finish_enq() {
    Node* last = tail_.load();
    Node* next = last->next.load();
    if (next == nullptr) return;
    int tid = next->enq_tid;
    if (tid < 0) return;  // unreachable: only the initial dummy is untagged
    OpDesc* cur = state_[static_cast<size_t>(tid)].desc.load();
    if (last == tail_.load() && cur->node == next) {
      state_[static_cast<size_t>(tid)].desc.cas(
          cur, alloc_desc(cur->phase, false, true, next));
      tail_.cas(last, next);
    }
  }

  void help_deq(int tid, int64_t phase) {
    while (is_still_pending(tid, phase)) {
      Node* first = head_.load();
      Node* last = tail_.load();
      Node* next = first->next.load();
      if (first != head_.load()) continue;
      if (first == last) {
        if (next == nullptr) {
          // Queue observed empty: complete with node == nullptr, but only
          // if the op is still pending under an unchanged tail.
          OpDesc* cur = state_[static_cast<size_t>(tid)].desc.load();
          if (last == tail_.load() && cur->pending && cur->phase <= phase) {
            state_[static_cast<size_t>(tid)].desc.cas(
                cur, alloc_desc(cur->phase, false, false, nullptr));
          }
        } else {
          help_finish_enq();  // tail is lagging: finish that enqueue first
        }
      } else {
        OpDesc* cur = state_[static_cast<size_t>(tid)].desc.load();
        Node* node = cur->node;
        if (!(cur->pending && cur->phase <= phase)) break;
        if (first == head_.load() && node != first) {
          // Record the candidate predecessor in the descriptor BEFORE the
          // deqTid CAS, so every helper that sees the claimed head agrees on
          // which descriptor (and therefore which value) it completes.
          if (!state_[static_cast<size_t>(tid)].desc.cas(
                  cur, alloc_desc(cur->phase, true, false, first))) {
            continue;
          }
        }
        first->deq_tid.cas(int64_t{-1}, static_cast<int64_t>(tid));
        help_finish_deq();
      }
    }
  }

  /// Completes the dequeue that tagged the current head: CAS the winner's
  /// descriptor to completed (keeping its recorded predecessor node), then
  /// advance the head. The head never advances past a node whose deq_tid is
  /// still -1, which is what makes the deqTid CAS the decision point.
  void help_finish_deq() {
    Node* first = head_.load();
    Node* next = first->next.load();
    int64_t tid = first->deq_tid.load();
    if (tid == -1) return;
    OpDesc* cur = state_[static_cast<size_t>(tid)].desc.load();
    if (first == head_.load() && next != nullptr) {
      state_[static_cast<size_t>(tid)].desc.cas(
          cur, alloc_desc(cur->phase, false, false, cur->node));
      head_.cas(first, next);
    }
  }

  Node* alloc_node(T x, int enq_tid) {
    Node* n = new Node;
    n->val = std::move(x);
    n->enq_tid = enq_tid;
    Node* old = node_allocs_.load(std::memory_order_relaxed);
    do {
      n->alloc_next = old;
    } while (!node_allocs_.compare_exchange_weak(old, n,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed));
    return n;
  }

  OpDesc* alloc_desc(int64_t phase, bool pending, bool enqueue, Node* node) {
    OpDesc* d = new OpDesc{phase, pending, enqueue, node, nullptr};
    OpDesc* old = desc_allocs_.load(std::memory_order_relaxed);
    do {
      d->alloc_next = old;
    } while (!desc_allocs_.compare_exchange_weak(old, d,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed));
    return d;
  }

  int procs_;
  std::vector<Slot> state_;
  typename Platform::template Atomic<Node*> head_{nullptr};
  typename Platform::template Atomic<Node*> tail_{nullptr};
  std::atomic<Node*> node_allocs_{nullptr};
  std::atomic<OpDesc*> desc_allocs_{nullptr};
};

}  // namespace wfq::baselines
