// Lock-based baselines for the wall-clock comparison (E9): the Michael–Scott
// two-lock queue (enqueuers and dequeuers serialize separately) and a plain
// single-mutex std::deque wrapper.
#pragma once

#include <deque>
#include <mutex>
#include <optional>

namespace wfq::baselines {

template <typename T>
class TwoLockQueue {
 public:
  TwoLockQueue() : head_(new Node{T{}, nullptr}), tail_(head_) {}

  TwoLockQueue(const TwoLockQueue&) = delete;
  TwoLockQueue& operator=(const TwoLockQueue&) = delete;

  ~TwoLockQueue() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  void bind_thread(int /*pid*/) {}

  void enqueue(T x) {
    Node* n = new Node{std::move(x), nullptr};
    std::lock_guard<std::mutex> g(tail_mu_);
    tail_->next = n;
    tail_ = n;
  }

  std::optional<T> dequeue() {
    std::lock_guard<std::mutex> g(head_mu_);
    Node* first = head_->next;
    if (first == nullptr) return std::nullopt;
    T v = std::move(first->val);
    delete head_;
    head_ = first;
    return v;
  }

 private:
  struct Node {
    T val;
    Node* next;
  };

  std::mutex head_mu_;
  std::mutex tail_mu_;
  Node* head_;
  Node* tail_;
};

template <typename T>
class MutexQueue {
 public:
  void bind_thread(int /*pid*/) {}

  void enqueue(T x) {
    std::lock_guard<std::mutex> g(mu_);
    q_.push_back(std::move(x));
  }

  std::optional<T> dequeue() {
    std::lock_guard<std::mutex> g(mu_);
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    return v;
  }

 private:
  std::mutex mu_;
  std::deque<T> q_;
};

}  // namespace wfq::baselines
