// Fetch&add array queue baseline (the "fast in practice, still Omega(p)
// worst-case" design family the paper discusses): enqueue and dequeue claim
// unique slots of a preallocated cell array with one FAA each, racing on the
// cell state with CAS. A dequeuer that outruns its enqueuer poisons the cell
// and both retry. Single fixed segment (capacity chosen at construction) —
// enough for the benches; a segment-linked variant is future work.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "platform/platform.hpp"

namespace wfq::baselines {

template <typename T, typename Platform = platform::RealPlatform>
class FaaArrayQueue {
 public:
  explicit FaaArrayQueue(int /*procs*/ = 1, size_t capacity = size_t{1} << 18)
      : cells_(capacity) {}

  void bind_thread(int /*pid*/) {}

  void enqueue(T x) {
    for (;;) {
      int64_t slot = claim(enq_idx_);
      Cell& c = cells_[static_cast<size_t>(slot)];
      c.val = x;  // published by the state CAS below
      if (c.state.cas(kEmpty, kFull)) return;
      // Cell was poisoned by a faster dequeuer; claim a fresh slot.
    }
  }

  std::optional<T> dequeue() {
    for (;;) {
      if (deq_idx_.load() >= enq_idx_.load()) return std::nullopt;
      int64_t slot = claim(deq_idx_);
      Cell& c = cells_[static_cast<size_t>(slot)];
      uint64_t s = c.state.load();
      if (s == kFull) return c.val;
      // Enqueuer not finished: poison so it moves on, then retry.
      if (c.state.cas(kEmpty, kPoisoned)) continue;
      return c.val;  // lost the poison race => the cell just became full
    }
  }

 private:
  static constexpr uint64_t kEmpty = 0;
  static constexpr uint64_t kFull = 1;
  static constexpr uint64_t kPoisoned = 2;

  struct Cell {
    typename Platform::template Atomic<uint64_t> state{kEmpty};
    T val{};
  };

  /// FAA-claims the next slot; the single segment is finite, so running off
  /// its end must be a loud failure, not silent heap corruption.
  int64_t claim(typename Platform::template Atomic<int64_t>& idx) {
    int64_t slot = idx.fetch_add(1);
    if (static_cast<size_t>(slot) >= cells_.size()) {
      std::fprintf(stderr,
                   "FaaArrayQueue: capacity %zu exhausted (slot %lld)\n",
                   cells_.size(), static_cast<long long>(slot));
      std::abort();
    }
    return slot;
  }

  typename Platform::template Atomic<int64_t> enq_idx_{0};
  typename Platform::template Atomic<int64_t> deq_idx_{0};
  std::vector<Cell> cells_;
};

}  // namespace wfq::baselines
