// Flat fetch&add cell-array vector — the former core/wait_free_vector.hpp
// stub, kept as the "faavec" registry baseline now that the real
// ordering-tree vector (core/wait_free_vector.hpp) has landed. Wait-free
// and linearizable with O(1) per-op step cost, which is exactly why it is
// a useful foil for E11: the tree vector pays O(log p) / O(log^2 p + log n)
// for unbounded growth, while this one burns a fixed capacity.
//
// get(i) may return nullopt for i < size() when the appender has claimed
// the slot but not yet published the value — the flat design's semantic
// wart; the tree vector has no such window.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "platform/platform.hpp"

namespace wfq::baselines {

template <typename T, typename Platform = platform::RealPlatform>
class FaaVector {
 public:
  explicit FaaVector(int /*procs*/, size_t capacity = size_t{1} << 16)
      : cells_(capacity) {}

  void bind_thread(int pid) { platform::bind_thread(pid); }

  /// Appends and returns the index the value landed at.
  int64_t append(T x) {
    int64_t slot = len_.fetch_add(1);
    if (static_cast<size_t>(slot) >= cells_.size()) {
      std::fprintf(stderr,
                   "FaaVector: capacity %zu exhausted (slot %lld)\n",
                   cells_.size(), static_cast<long long>(slot));
      std::abort();
    }
    Cell& c = cells_[static_cast<size_t>(slot)];
    c.val = std::move(x);
    c.ready.store(1);
    return slot;
  }

  /// Value at index i, or nullopt if i is past the end or the appender has
  /// claimed the slot but not yet published the value.
  std::optional<T> get(int64_t i) {
    if (i < 0 || i >= len_.load()) return std::nullopt;
    Cell& c = cells_[static_cast<size_t>(i)];
    if (c.ready.load() == 0) return std::nullopt;
    return c.val;
  }

  int64_t size() { return len_.load(); }

 private:
  struct Cell {
    typename Platform::template Atomic<uint64_t> ready{0};
    T val{};
  };

  typename Platform::template Atomic<int64_t> len_{0};
  std::vector<Cell> cells_;
};

}  // namespace wfq::baselines
