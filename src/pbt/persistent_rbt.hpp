// Path-copying persistent red-black tree (paper Section 6): the bounded
// queue's GC phases copy each node's live block suffix into this tree, and
// concurrent dequeues read *old* versions while a GC phase installs a new
// one. Persistence comes from path copying: insert/erase never mutate an
// existing node — they rebuild the root-to-target path (O(log n) fresh
// nodes) and share every untouched subtree with the previous version, so a
// version root, once obtained, is an immutable snapshot.
//
// Balancing follows the functional red-black scheme of Okasaki (insert) and
// Kahrs (delete): a black parent absorbs red-red violations with the
// five-case balance rotation; deletion tracks the "missing black" with
// balance_left/balance_right and fuse. Both invariants (no red child of a
// red parent; equal black height on every path) are checked by validate(),
// which the tier-1 RBT test runs after randomized operation sequences.
//
// Step accounting (the paper's model: every RBT node visited or created in
// a GC phase costs one shared step): every descent step and every node
// constructed calls note_rbt_touch(). Color/key peeks at already-visited
// children during rebalancing are not charged again — a constant factor per
// level, as in the paper's accounting. Per-operation visited/created splits
// are exposed through last_op_stats() so tests can assert the tally exactly.
//
// Memory: nodes are shared_ptr-linked, so structure sharing across versions
// is reference counted and a version's unshared nodes are freed when the
// last root pointing at them is dropped (the bounded queue retires whole
// version handles through its EBR layer; the control-block refcounts make
// concurrent drops safe).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

namespace wfq::pbt {

/// Thread-local count of RBT nodes touched (visited or created); mirrors
/// platform::tls_counts() for the tree's part of the step model.
inline uint64_t& tls_rbt_touches_ref() {
  thread_local uint64_t touches = 0;
  return touches;
}

inline uint64_t tls_rbt_touches() { return tls_rbt_touches_ref(); }

inline void note_rbt_touch(uint64_t n = 1) { tls_rbt_touches_ref() += n; }

/// visited/created split of the calling thread's most recent RBT operation
/// (find/insert/erase); their sum is exactly what the operation added to
/// tls_rbt_touches, which the RBT unit test asserts.
struct RbtOpStats {
  uint64_t visited = 0;
  uint64_t created = 0;
};

inline RbtOpStats& last_op_stats() {
  thread_local RbtOpStats stats;
  return stats;
}

/// Persistent red-black tree mapping uint64_t keys to values of type V.
/// All operations are static over version roots: they take a root, return
/// a new root, and never mutate shared state, so distinct threads may
/// operate on (distinct or identical) versions without coordination.
template <typename V>
class PersistentRbt {
 public:
  struct Node;
  using Ptr = std::shared_ptr<const Node>;

  struct Node {
    uint64_t key;
    V val;
    bool red;
    Ptr left;
    Ptr right;
  };

  /// The empty version.
  static Ptr empty() { return nullptr; }

  /// Value stored under `key` in this version, or nullptr. The returned
  /// pointer lives as long as any version containing the node does.
  static const V* find(const Ptr& root, uint64_t key) {
    last_op_stats() = {};
    const Node* n = root.get();
    while (n != nullptr) {
      visit();
      if (key < n->key) {
        n = n->left.get();
      } else if (key > n->key) {
        n = n->right.get();
      } else {
        return &n->val;
      }
    }
    return nullptr;
  }

  /// New version with key -> val (insert-or-assign). O(log n) created
  /// nodes; the old version is untouched.
  static Ptr insert(const Ptr& root, uint64_t key, V val) {
    last_op_stats() = {};
    return blacken(ins(root, key, std::move(val)));
  }

  /// New version without `key`; returns the old root unchanged (and charges
  /// only the lookup) when the key is absent — the delete rebalancing below
  /// is only sound for keys actually present.
  static Ptr erase(const Ptr& root, uint64_t key) {
    if (find(root, key) == nullptr) return root;
    // find() reset the per-op stats and charged the lookup; del() keeps
    // accumulating onto it, so the whole erase reads as one operation.
    return blacken(del(root, key));
  }

  /// Number of keys (walks the whole version; test/debug only, uncounted).
  static size_t size(const Ptr& root) {
    if (!root) return 0;
    return 1 + size(root->left) + size(root->right);
  }

  /// Checks the red-black and BST invariants, returning the black height.
  /// Throws std::logic_error on violation (test/debug only, uncounted).
  static int validate(const Ptr& root) {
    if (is_red(root)) throw std::logic_error("rbt: red root");
    return check(root.get(), nullptr, nullptr);
  }

  /// In-order key traversal (test/debug only, uncounted).
  template <typename F>
  static void for_each(const Ptr& root, F&& f) {
    if (!root) return;
    for_each(root->left, f);
    f(root->key, root->val);
    for_each(root->right, f);
  }

 private:
  // --- step accounting -----------------------------------------------------

  static void visit() {
    ++last_op_stats().visited;
    note_rbt_touch();
  }

  static Ptr mk(bool red, Ptr left, uint64_t key, V val, Ptr right) {
    ++last_op_stats().created;
    note_rbt_touch();
    return std::make_shared<const Node>(Node{
        key, std::move(val), red, std::move(left), std::move(right)});
  }

  /// Copy of `src`'s key/value with new color and children.
  static Ptr mk_from(bool red, Ptr left, const Ptr& src, Ptr right) {
    return mk(red, std::move(left), src->key, src->val, std::move(right));
  }

  static bool is_red(const Ptr& n) { return n != nullptr && n->red; }
  static bool is_black_node(const Ptr& n) { return n != nullptr && !n->red; }

  static Ptr paint(const Ptr& n, bool red) {
    return mk(red, n->left, n->key, n->val, n->right);
  }

  // --- insert (Okasaki) ----------------------------------------------------

  static Ptr blacken(const Ptr& n) {
    if (n == nullptr || !n->red) return n;
    return paint(n, false);
  }

  static Ptr ins(const Ptr& t, uint64_t key, V val) {
    if (t == nullptr) return mk(true, nullptr, key, std::move(val), nullptr);
    visit();
    if (key == t->key)  // assign: path-copied node with the new value
      return mk(t->red, t->left, key, std::move(val), t->right);
    if (!t->red) {
      if (key < t->key)
        return balance(ins(t->left, key, std::move(val)), t, t->right);
      return balance(t->left, t, ins(t->right, key, std::move(val)));
    }
    if (key < t->key)
      return mk_from(true, ins(t->left, key, std::move(val)), t, t->right);
    return mk_from(true, t->left, t, ins(t->right, key, std::move(val)));
  }

  /// The five-case rebalance of a black node `t` rebuilt with children
  /// (l, r): absorbs any red-red violation one of them carries (insert) or
  /// the red-pushed configurations produced by delete's balance_left/right.
  static Ptr balance(const Ptr& l, const Ptr& t, const Ptr& r) {
    if (is_red(l) && is_red(r))  // color flip: push the red up
      return mk_from(true, paint(l, false), t, paint(r, false));
    if (is_red(l) && is_red(l->left))
      return mk_from(true, paint(l->left, false), l,
                     mk_from(false, l->right, t, r));
    if (is_red(l) && is_red(l->right))
      return mk_from(true, mk_from(false, l->left, l, l->right->left),
                     l->right, mk_from(false, l->right->right, t, r));
    if (is_red(r) && is_red(r->right))
      return mk_from(true, mk_from(false, l, t, r->left), r,
                     paint(r->right, false));
    if (is_red(r) && is_red(r->left))
      return mk_from(true, mk_from(false, l, t, r->left->left), r->left,
                     mk_from(false, r->left->right, r, r->right));
    return mk_from(false, l, t, r);
  }

  // --- delete (Kahrs) ------------------------------------------------------

  static Ptr del(const Ptr& t, uint64_t key) {
    // Caller guarantees the key is present, so t is never null here.
    visit();
    if (key < t->key) {
      if (is_black_node(t->left))
        return balance_left(del(t->left, key), t, t->right);
      return mk_from(true, del(t->left, key), t, t->right);
    }
    if (key > t->key) {
      if (is_black_node(t->right))
        return balance_right(t->left, t, del(t->right, key));
      return mk_from(true, t->left, t, del(t->right, key));
    }
    return fuse(t->left, t->right);
  }

  /// Left subtree `l` just lost a black node; restore the invariant using
  /// the (untouched) right sibling `r`. `t` supplies the parent key/value.
  static Ptr balance_left(const Ptr& l, const Ptr& t, const Ptr& r) {
    if (is_red(l)) return mk_from(true, paint(l, false), t, r);
    if (is_black_node(r)) return balance(l, t, paint(r, true));
    // r is red with a black left child (invariant of a valid RB tree).
    const Ptr& rl = r->left;
    return mk_from(true, mk_from(false, l, t, rl->left), rl,
                   balance(rl->right, r, paint(r->right, true)));
  }

  static Ptr balance_right(const Ptr& l, const Ptr& t, const Ptr& r) {
    if (is_red(r)) return mk_from(true, l, t, paint(r, false));
    if (is_black_node(l)) return balance(paint(l, true), t, r);
    // l is red with a black right child.
    const Ptr& lr = l->right;
    return mk_from(true, balance(paint(l->left, true), l, lr->left), lr,
                   mk_from(false, lr->right, t, r));
  }

  /// Joins the two subtrees of a removed node into one tree with the same
  /// black height on the outside (possibly red-rooted; callers rebalance).
  static Ptr fuse(const Ptr& l, const Ptr& r) {
    if (l == nullptr) return r;
    if (r == nullptr) return l;
    if (l->red && r->red) {
      Ptr m = fuse(l->right, r->left);
      if (is_red(m))
        return mk_from(true, mk_from(true, l->left, l, m->left), m,
                       mk_from(true, m->right, r, r->right));
      return mk_from(true, l->left, l, mk_from(true, m, r, r->right));
    }
    if (!l->red && !r->red) {
      Ptr m = fuse(l->right, r->left);
      if (is_red(m))
        return mk_from(true, mk_from(false, l->left, l, m->left), m,
                       mk_from(false, m->right, r, r->right));
      return balance_left(l->left, l, mk_from(false, m, r, r->right));
    }
    if (r->red) return mk_from(true, fuse(l, r->left), r, r->right);
    return mk_from(true, l->left, l, fuse(l->right, r));
  }

  // --- validation ----------------------------------------------------------

  static int check(const Node* n, const uint64_t* lo, const uint64_t* hi) {
    if (n == nullptr) return 1;  // null leaves are black
    if (lo != nullptr && !(*lo < n->key))
      throw std::logic_error("rbt: BST order violated (left)");
    if (hi != nullptr && !(n->key < *hi))
      throw std::logic_error("rbt: BST order violated (right)");
    if (n->red && (is_red(n->left) || is_red(n->right)))
      throw std::logic_error("rbt: red node with red child");
    int bl = check(n->left.get(), lo, &n->key);
    int br = check(n->right.get(), &n->key, hi);
    if (bl != br) throw std::logic_error("rbt: unequal black heights");
    return bl + (n->red ? 0 : 1);
  }
};

}  // namespace wfq::pbt
