// Persistent red-black tree used by the bounded-space queue's GC phases
// (paper Section 6: old tree versions stay readable while a new version is
// built; every node visited or created costs one step in the model).
//
// STUB: only the step-accounting surface the benches consume exists so far.
// The tree itself (path-copying insert/delete, version pointers) arrives
// with the bounded-queue tentpole — see ROADMAP "Open items".
#pragma once

#include <cstdint>

namespace wfq::pbt {

/// Thread-local count of RBT nodes touched (visited or created); mirrors
/// platform::tls_counts() for the tree's part of the step model.
inline uint64_t& tls_rbt_touches_ref() {
  thread_local uint64_t touches = 0;
  return touches;
}

inline uint64_t tls_rbt_touches() { return tls_rbt_touches_ref(); }

inline void note_rbt_touch(uint64_t n = 1) { tls_rbt_touches_ref() += n; }

}  // namespace wfq::pbt
