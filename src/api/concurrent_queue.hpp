// The API seam every queue variant plugs into (ISSUE 3 tentpole):
//
//  - wfq::api::ConcurrentQueue<Q, T>: the C++20 concept that formalizes the
//    previously informal bind_thread/enqueue/dequeue convention shared by
//    the ordering-tree queue and every baseline, over both Real and Sim
//    platforms.
//  - wfq::api::AnyQueue<T>: a type-erased owning handle so registries,
//    experiment sweeps and conformance tests can hold "some queue" chosen
//    at runtime by name (see queue_registry.hpp) without templates leaking
//    into bench code. AnyQueue<T> itself satisfies ConcurrentQueue<T>.
//
// The virtual hop costs a few ns per op; experiments that measure shared-
// memory *steps* are unaffected (step counts are taken inside the platform
// layer), and wall-clock experiments (E9) pay it uniformly for every queue.
#pragma once

#include <concepts>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

namespace wfq::api {

/// A FIFO queue usable from concurrently bound threads: `bind_thread(pid)`
/// pins the calling thread to process slot `pid` (leaf index for the
/// ordering-tree queues, ignored by baselines that need no pinning),
/// `enqueue` is total, and `dequeue` returns nullopt iff the queue was
/// observably empty.
template <typename Q, typename T = uint64_t>
concept ConcurrentQueue = requires(Q q, T v, int pid) {
  q.bind_thread(pid);
  q.enqueue(std::move(v));
  { q.dequeue() } -> std::same_as<std::optional<T>>;
};

/// Space introspection snapshot surfaced through AnyQueue so the space
/// experiments (E6/E8) can sweep queues by registry name: `live_blocks`
/// counts reachable blocks (array suffixes + archived RBT entries for the
/// bounded queue, total appended blocks for the unbounded one) and
/// `ebr_retired` the reclamation backlog. `known` is false for queues with
/// no block-space debug surface (baselines), whose rows read "-".
struct SpaceStats {
  uint64_t live_blocks = 0;
  uint64_t ebr_retired = 0;
  bool known = false;
};

/// Type-erased owning handle over any ConcurrentQueue implementation.
/// Construct with AnyQueue<T>::of<Impl>(name, ctor args...); the impl is
/// built in place (queue types are neither copyable nor movable — they
/// hold atomics and mutexes).
template <typename T>
class AnyQueue {
 public:
  AnyQueue() = default;
  AnyQueue(AnyQueue&&) noexcept = default;
  AnyQueue& operator=(AnyQueue&&) noexcept = default;

  template <typename Q, typename... Args>
    requires ConcurrentQueue<Q, T>
  static AnyQueue of(std::string name, Args&&... args) {
    AnyQueue a;
    a.impl_ = std::make_unique<Impl<Q>>(std::forward<Args>(args)...);
    a.name_ = std::move(name);
    return a;
  }

  void bind_thread(int pid) { impl_->bind_thread(pid); }
  void enqueue(T x) { impl_->enqueue(std::move(x)); }
  std::optional<T> dequeue() { return impl_->dequeue(); }

  /// Block-space snapshot (uncounted debug surface); `known == false` when
  /// the wrapped implementation exposes no space introspection.
  ///
  /// Quiescent-only: call when no enqueue/dequeue is in flight (e.g. after
  /// worker threads join or between measurement rounds). The bounded
  /// queue's snapshot reads the current archive version without an epoch
  /// pin, so a concurrent GC phase could retire it mid-read.
  SpaceStats space_stats() const { return impl_->space_stats(); }

  /// Registry name the handle was created under ("" if default-constructed).
  const std::string& name() const { return name_; }
  explicit operator bool() const { return impl_ != nullptr; }

 private:
  struct Iface {
    virtual ~Iface() = default;
    virtual void bind_thread(int pid) = 0;
    virtual void enqueue(T x) = 0;
    virtual std::optional<T> dequeue() = 0;
    virtual SpaceStats space_stats() const = 0;
  };

  template <typename Q>
  struct Impl final : Iface {
    template <typename... Args>
    explicit Impl(Args&&... args) : q(std::forward<Args>(args)...) {}
    void bind_thread(int pid) override { q.bind_thread(pid); }
    void enqueue(T x) override { q.enqueue(std::move(x)); }
    std::optional<T> dequeue() override { return q.dequeue(); }
    SpaceStats space_stats() const override {
      // Detected per implementation: the bounded queue reports its live
      // suffix + archive and EBR backlog, the unbounded one total blocks.
      if constexpr (requires(const Q& cq) { cq.debug_live_blocks(); }) {
        return {static_cast<uint64_t>(q.debug_live_blocks()),
                q.debug_ebr().retired_count(), true};
      } else if constexpr (requires(const Q& cq) {
                             cq.debug_total_blocks();
                           }) {
        return {static_cast<uint64_t>(q.debug_total_blocks()), 0, true};
      } else {
        return {};
      }
    }
    Q q;
  };

  std::unique_ptr<Iface> impl_;
  std::string name_;
};

static_assert(ConcurrentQueue<AnyQueue<uint64_t>, uint64_t>,
              "AnyQueue must satisfy the concept it erases");

}  // namespace wfq::api
