// Declarative experiment API (ISSUE 3 tentpole, part 3): an Experiment is a
// named registration — title plus a run function mapping RunOptions (the
// shared CLI surface: --procs/--ops/--adversary/--seed/--queues/--format)
// to a structured Report. Reports are data, not prints: Sections hold
// typed table cells, shape fits and note lines, and the emitters in
// emit.hpp render the same Report as the classic aligned table, CSV, or
// machine-readable JSON (the BENCH_*.json perf trajectory).
//
// Each bench/experiments/*.cpp file is one registration; bench_runner.cpp
// is the single main. Defaults in every run function reproduce the
// pre-redesign hand-rolled bench outputs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "stats/shape.hpp"
#include "stats/summary.hpp"

namespace wfq::api {

enum class Format { table, csv, json };

/// Options shared by every experiment, parsed once by the runner CLI.
/// Empty/zero fields mean "use the experiment's default" — the *_or helpers
/// encode that, so each experiment states its historical constants inline.
struct RunOptions {
  /// Sentinel for "--gc not given": distinct from 0 (paper-default G) and
  /// -1 (GC disabled), both of which are meaningful values.
  static constexpr int64_t kGcUnset = INT64_MIN;

  std::vector<int> procs;           // --procs 2,4,8
  int64_t ops = 0;                  // --ops N (per process)
  std::string adversary;            // --adversary round-robin|random:<s>|
                                    //   anti-faa|stall-refresh
  uint64_t seed = 1;                // --seed; the CLI folds it into
                                    // "--adversary random" => "random:<seed>"
  std::vector<std::string> queues;  // --queues ubq,msq
  int64_t gc = kGcUnset;            // --gc G (bounded queue: 0 = paper
                                    // default, -1 = disabled)
  Format format = Format::table;    // --format table|csv|json

  std::vector<int> procs_or(std::vector<int> def) const {
    return procs.empty() ? std::move(def) : procs;
  }
  int64_t ops_or(int64_t def) const { return ops > 0 ? ops : def; }
  std::string adversary_or(std::string def) const {
    return adversary.empty() ? std::move(def) : adversary;
  }
  // --queues carries keys of either object kind; experiments filter it with
  // api::queue_keys_or / api::vector_keys_or (queue_registry.hpp) instead of
  // a kind-oblivious accessor, so mixed keys never abort a sweep mid-run.
  int64_t gc_or(int64_t def) const { return gc == kGcUnset ? def : gc; }
};

/// One table cell: rendered text plus, when numeric, the raw value so the
/// JSON emitter can output numbers instead of strings.
struct Cell {
  std::string text;
  double num = 0;
  bool numeric = false;
};

inline Cell cell(Cell c) { return c; }  // pass-through for premade cells
inline Cell cell(std::string s) { return {std::move(s), 0, false}; }
inline Cell cell(const char* s) { return {s, 0, false}; }
inline Cell cell(double v, int precision = 2) {
  return {stats::fmt(v, precision), v, true};
}
template <typename I>
  requires std::is_integral_v<I>
Cell cell(I v) {
  return {stats::fmt(v), static_cast<double>(v), true};
}

/// value/divisor as a numeric cell, or "-" when the divisor is not positive
/// (normalizing by log2(p) at p=1 must not print inf / emit JSON null).
inline Cell cell_ratio(double v, double divisor, int precision = 2) {
  return divisor > 0 ? cell(v / divisor, precision) : cell("-");
}

/// A named shape fit attached to a section (the "-> best: log p" lines).
struct Shape {
  std::string series;
  stats::ShapeFit fit;
};

/// A named scalar result (e.g. "r2_first_deq_logq") carried in the
/// machine-readable output. The human-readable table renders these inside
/// note lines; the JSON/CSV emitters emit them as numbers so the perf
/// trajectory can diff headline fits that are not p-family shapes
/// (the log-q / log-H fits of E3b, E7b, E10, E11b, E12).
struct Metric {
  std::string name;
  double value = 0;
};

/// One logical block of an experiment's output: preamble text, an aligned
/// table, shape fits, free-form fit lines and trailing expectation notes.
struct Section {
  std::string id;                      // "E2", "E3a", "E5b"
  std::vector<std::string> preamble;   // printed before the table
  std::vector<std::string> columns;
  std::vector<std::vector<Cell>> rows;
  std::vector<Shape> shapes;
  std::vector<Metric> metrics;         // machine-readable scalars
  std::vector<std::string> notes;      // printed after the table

  Section& pre(std::string line) {
    preamble.push_back(std::move(line));
    return *this;
  }
  Section& cols(std::vector<std::string> c) {
    columns = std::move(c);
    return *this;
  }
  template <typename... A>
  Section& row(A&&... cells_in) {
    rows.push_back({cell(std::forward<A>(cells_in))...});
    return *this;
  }
  /// Fits ys against {log p, log^2 p, p} and records the named result.
  Section& shape(std::string series, const std::vector<double>& ps,
                 const std::vector<double>& ys) {
    shapes.push_back({std::move(series), stats::fit_shape(ps, ys)});
    return *this;
  }
  Section& metric(std::string name, double value) {
    metrics.push_back({std::move(name), value});
    return *this;
  }
  Section& note(std::string line) {
    notes.push_back(std::move(line));
    return *this;
  }
};

/// A full experiment result; what the emitters consume. Sections live in a
/// deque so the reference section() returns stays valid while later
/// sections are created (a vector would invalidate it on reallocation).
struct Report {
  std::string experiment;             // registry name, e.g. "steps_enqueue"
  std::string id;                     // "e2"
  std::string title;
  std::vector<std::string> preamble;  // header lines before any section
  std::deque<Section> sections;

  Section& section(std::string sec_id) {
    sections.emplace_back();
    sections.back().id = std::move(sec_id);
    return sections.back();
  }
};

/// A registered experiment: `bench_runner --experiment <name|id>` finds it
/// here. `order` sorts --list and --experiment all (E1..E12).
struct Experiment {
  std::string name;  // stable CLI name, e.g. "steps_enqueue"
  std::string id;    // paper-index alias, e.g. "e2"
  std::string title;
  int order = 0;
  std::function<Report(const RunOptions&)> run;
};

inline std::vector<Experiment>& experiments_mut() {
  static std::vector<Experiment> all;
  return all;
}

/// All registrations, sorted by paper-index order.
inline std::vector<Experiment> experiments() {
  std::vector<Experiment> all = experiments_mut();
  std::sort(all.begin(), all.end(),
            [](const Experiment& a, const Experiment& b) {
              return a.order != b.order ? a.order < b.order : a.name < b.name;
            });
  return all;
}

/// Lookup by CLI name or paper id ("steps_enqueue" or "e2"); null if absent.
inline const Experiment* find_experiment(const std::string& key) {
  for (const Experiment& e : experiments_mut())
    if (e.name == key || e.id == key) return &e;
  return nullptr;
}

/// One static instance per experiment TU registers it before main().
struct ExperimentRegistrar {
  explicit ExperimentRegistrar(Experiment e) {
    experiments_mut().push_back(std::move(e));
  }
};

/// Seeds a Report with the experiment's identity fields.
inline Report make_report(const Experiment& e) {
  Report r;
  r.experiment = e.name;
  r.id = e.id;
  r.title = e.title;
  return r;
}

/// By-name variant for the experiment run() functions' self-lookup. A name
/// that doesn't match any registrar (the classic copy-the-file-and-miss-one
/// slip) throws instead of dereferencing null.
inline Report make_report(const std::string& name) {
  const Experiment* e = find_experiment(name);
  if (e == nullptr)
    throw std::logic_error(
        "api::make_report: \"" + name +
        "\" is not a registered experiment — the name passed to "
        "make_report must match the file's ExperimentRegistrar");
  return make_report(*e);
}

}  // namespace wfq::api
