// The vector half of the multi-object API seam (ISSUE 5 tentpole, part 3):
//
//  - wfq::api::ConcurrentVector<V, T>: the C++20 concept formalizing the
//    bind_thread/append/get/size contract shared by the ordering-tree
//    vector and the flat-FAA baseline, over both Real and Sim platforms.
//  - wfq::api::AnyVector<T>: a type-erased owning handle, the vector
//    sibling of AnyQueue<T>, so registries, experiment sweeps and
//    conformance tests can hold "some vector" chosen at runtime by name
//    (see the vector section of queue_registry.hpp). AnyVector<T> itself
//    satisfies ConcurrentVector<T>.
//
// Semantics the concept implies: append is total and returns the (0-based)
// index the value landed at — indices are dense and permanent; get(i)
// returns nullopt past the current end (the flat baseline may also return
// nullopt inside a claimed-but-unpublished window; the tree vector never
// does); size() is the number of appends linearized so far.
#pragma once

#include <concepts>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "api/concurrent_queue.hpp"

namespace wfq::api {

template <typename V, typename T = uint64_t>
concept ConcurrentVector = requires(V v, T x, int pid, int64_t i) {
  v.bind_thread(pid);
  { v.append(std::move(x)) } -> std::same_as<int64_t>;
  { v.get(i) } -> std::same_as<std::optional<T>>;
  { v.size() } -> std::same_as<int64_t>;
};

/// Type-erased owning handle over any ConcurrentVector implementation.
/// Construct with AnyVector<T>::of<Impl>(name, ctor args...); the impl is
/// built in place (vector types hold atomics, so they are neither copyable
/// nor movable).
template <typename T>
class AnyVector {
 public:
  AnyVector() = default;
  AnyVector(AnyVector&&) noexcept = default;
  AnyVector& operator=(AnyVector&&) noexcept = default;

  template <typename V, typename... Args>
    requires ConcurrentVector<V, T>
  static AnyVector of(std::string name, Args&&... args) {
    AnyVector a;
    a.impl_ = std::make_unique<Impl<V>>(std::forward<Args>(args)...);
    a.name_ = std::move(name);
    return a;
  }

  void bind_thread(int pid) { impl_->bind_thread(pid); }
  int64_t append(T x) { return impl_->append(std::move(x)); }
  std::optional<T> get(int64_t i) { return impl_->get(i); }
  int64_t size() { return impl_->size(); }

  /// Block-space snapshot (uncounted debug surface); `known == false` when
  /// the wrapped implementation exposes no space introspection (the flat
  /// baseline). Quiescent-only, like AnyQueue::space_stats.
  SpaceStats space_stats() const { return impl_->space_stats(); }

  /// Registry name the handle was created under ("" if default-constructed).
  const std::string& name() const { return name_; }
  explicit operator bool() const { return impl_ != nullptr; }

 private:
  struct Iface {
    virtual ~Iface() = default;
    virtual void bind_thread(int pid) = 0;
    virtual int64_t append(T x) = 0;
    virtual std::optional<T> get(int64_t i) = 0;
    virtual int64_t size() = 0;
    virtual SpaceStats space_stats() const = 0;
  };

  template <typename V>
  struct Impl final : Iface {
    template <typename... Args>
    explicit Impl(Args&&... args) : v(std::forward<Args>(args)...) {}
    void bind_thread(int pid) override { v.bind_thread(pid); }
    int64_t append(T x) override { return v.append(std::move(x)); }
    std::optional<T> get(int64_t i) override { return v.get(i); }
    int64_t size() override { return v.size(); }
    SpaceStats space_stats() const override {
      if constexpr (requires(const V& cv) { cv.debug_total_blocks(); }) {
        return {static_cast<uint64_t>(v.debug_total_blocks()), 0, true};
      } else {
        return {};
      }
    }
    V v;
  };

  std::unique_ptr<Iface> impl_;
  std::string name_;
};

static_assert(ConcurrentVector<AnyVector<uint64_t>, uint64_t>,
              "AnyVector must satisfy the concept it erases");

}  // namespace wfq::api
