// Measurement harness shared by every experiment (migrated here from the
// old bench/common.hpp as part of the ISSUE 3 API redesign, and generalized
// from "round-robin only" to any registered adversary policy):
//
//  - OpSamples: per-operation shared-step samples from one sim run;
//  - run_sim / run_round_robin: p simulated processes under a policy;
//  - measure_ops: the canonical per-op step measurement loop over any
//    ConcurrentQueue (AnyQueue included), so sweeps are written once and
//    parameterized by queue name;
//  - run_gated_pairs: the Real-platform producer/consumer pairing used by
//    the space experiments.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/concurrent_queue.hpp"
#include "platform/step_counter.hpp"
#include "sim/adversary.hpp"
#include "sim/scheduler.hpp"

namespace wfq::api {

/// Per-operation shared-memory step samples gathered from one sim run.
struct OpSamples {
  std::vector<double> steps;         // total shared steps per op
  std::vector<double> cas_attempts;  // CAS attempts per op
  std::vector<double> cas_failures;  // failed CAS per op
  uint64_t rbt_touches = 0;          // bounded queue: RBT nodes touched

  void add(const platform::StepCounts& d) {
    steps.push_back(static_cast<double>(d.total()));
    cas_attempts.push_back(static_cast<double>(d.cas_attempts));
    cas_failures.push_back(static_cast<double>(d.cas_failures));
  }
  void merge(const OpSamples& o) {
    steps.insert(steps.end(), o.steps.begin(), o.steps.end());
    cas_attempts.insert(cas_attempts.end(), o.cas_attempts.begin(),
                        o.cas_attempts.end());
    cas_failures.insert(cas_failures.end(), o.cas_failures.begin(),
                        o.cas_failures.end());
    rbt_touches += o.rbt_touches;
  }
};

/// Runs `body(pid, samples_for_pid)` on p simulated processes under the
/// given adversary policy and returns the merged per-op samples.
template <typename Body>
OpSamples run_sim(int procs, std::unique_ptr<sim::SchedulingPolicy> policy,
                  Body&& body, uint64_t max_steps = 200'000'000) {
  std::vector<OpSamples> per_proc(static_cast<size_t>(procs));
  sim::Scheduler sched(std::move(policy), max_steps);
  std::vector<std::function<void()>> bodies;
  for (int pid = 0; pid < procs; ++pid) {
    bodies.emplace_back(
        [&, pid] { body(pid, per_proc[static_cast<size_t>(pid)]); });
  }
  sched.run(std::move(bodies));
  OpSamples all;
  for (auto& s : per_proc) all.merge(s);
  return all;
}

/// Adversary selected by spec string ("round-robin", "random:<seed>",
/// "anti-faa", "stall-refresh" — see sim::make_policy).
template <typename Body>
OpSamples run_sim(int procs, const std::string& adversary, Body&& body,
                  uint64_t max_steps = 200'000'000) {
  return run_sim(procs, sim::make_policy(adversary),
                 std::forward<Body>(body), max_steps);
}

/// The historical default: the paper's canonical lock-step adversary.
template <typename Body>
OpSamples run_round_robin(int procs, Body&& body,
                          uint64_t max_steps = 200'000'000) {
  return run_sim(procs, std::make_unique<sim::RoundRobinPolicy>(),
                 std::forward<Body>(body), max_steps);
}

/// What each simulated process does per slot in measure_ops.
enum class OpKind { enqueue, dequeue, alternate };

/// The canonical sweep loop: p processes each perform `ops` operations of
/// `kind` on `q` under `adversary`, with every operation's exact step delta
/// sampled. `alternate` starts with an enqueue (the E5 50/50 mix). Values
/// are tagged (pid << 32 | k) so linearizability checks can attribute them.
template <typename Queue>
  requires ConcurrentQueue<Queue, uint64_t>
OpSamples measure_ops(Queue& q, int procs, int64_t ops, OpKind kind,
                      const std::string& adversary,
                      uint64_t max_steps = 200'000'000) {
  return run_sim(
      procs, adversary,
      [&](int pid, OpSamples& out) {
        q.bind_thread(pid);
        for (int64_t k = 0; k < ops; ++k) {
          platform::StepScope scope;
          bool enq = kind == OpKind::enqueue ||
                     (kind == OpKind::alternate && k % 2 == 0);
          if (enq)
            q.enqueue((static_cast<uint64_t>(pid) << 32) |
                      static_cast<uint64_t>(k));
          else
            (void)q.dequeue();
          out.add(scope.delta());
        }
      },
      max_steps);
}

/// Warning line for step-model experiments asked to sweep a queue whose
/// shared accesses are NOT counted (lock-based baselines): their "steps"
/// read as zero, which must not be presented as a measurement. Returns an
/// empty string for step-counted queues.
inline std::string step_counted_warning(const std::string& qname,
                                        bool step_counted) {
  if (step_counted) return {};
  return "  WARNING: " + qname +
         " is not step-counted (no Platform atomics); its step columns "
         "read 0 and are not measurements — see E9 for its wall-clock "
         "numbers.";
}

/// Real-platform producer/consumer harness: runs `pairs` enqueue+dequeue
/// pairs on two threads with the queue size held at ~target_q. The
/// consumer gates on the producer's progress so every dequeue is non-null
/// (a spinning consumer would add millions of null-dequeue operations) and
/// the producer is throttled so q_max stays at the target (Theorem 31's
/// space bound is in terms of q_max).
template <typename Queue>
void run_gated_pairs(Queue& q, uint64_t pairs, uint64_t target_q) {
  std::atomic<uint64_t> produced{0}, consumed{0};
  std::thread producer([&] {
    q.bind_thread(0);
    for (uint64_t i = 0; i < pairs + target_q; ++i) {
      while (i > consumed.load(std::memory_order_acquire) + target_q)
        std::this_thread::yield();
      q.enqueue(i);
      produced.store(i + 1, std::memory_order_release);
    }
  });
  std::thread consumer([&] {
    q.bind_thread(1);
    for (uint64_t got = 0; got < pairs; ++got) {
      while (produced.load(std::memory_order_acquire) <= got)
        std::this_thread::yield();
      while (!q.dequeue().has_value()) {
      }
      consumed.store(got + 1, std::memory_order_release);
    }
  });
  producer.join();
  consumer.join();
}

}  // namespace wfq::api
