// Service-layer factory: the registry seam's third object kind (ISSUE 7).
// A service key names a scheduling discipline plus the backing queues it
// multiplexes: "dwrr:<nqueues>:<backing-queue-key>" builds a
// svc::ServiceFacade over <nqueues> tenant queues, each constructed through
// make_queue with <backing-queue-key> — so "dwrr:8:ubq",
// "dwrr:4:bounded:g=8" and "dwrr:16:faaq" all work, and a new backing queue
// is automatically a valid service backing the day it is registered. Key
// parsing is strict and loud in the parse_bounded_key style: malformed
// spellings throw with the expected shape spelled out.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/queue_registry.hpp"
#include "svc/service.hpp"

namespace wfq::api {

/// Parsed "dwrr:<nqueues>:<backing-queue-key>" service key.
struct ServiceKey {
  int ntenants = 0;
  std::string backing;
};

/// Registered service-key shapes, for usage lines and error messages (the
/// service side of queue_names / vector_names).
inline std::vector<std::string> service_names() {
  return {"dwrr:<nqueues>:<backing-queue-key>"};
}

/// Parses a service key. Returns nullopt for names that are not service
/// keys at all (so kind-agnostic callers can fall through to the queue /
/// vector registries); malformed dwrr keys throw. The backing key is
/// everything after the second colon, so parameterized backings like
/// "dwrr:4:bounded:g=8" parse naturally; the backing is validated against
/// the queue registry here (vectors have no dequeue to service).
inline std::optional<ServiceKey> parse_service_key(const std::string& name) {
  if (name.rfind("dwrr", 0) != 0) return std::nullopt;
  const std::string want =
      "want \"dwrr:<nqueues>:<backing-queue-key>\" with 1 <= nqueues <= 4096 "
      "and a registered backing queue key (e.g. \"dwrr:8:ubq\", "
      "\"dwrr:4:bounded:g=8\")";
  if (name.size() > 4 && name[4] != ':')
    return std::nullopt;  // some other name that merely starts with "dwrr"
  if (name.size() <= 5)   // "dwrr" or "dwrr:"
    throw std::invalid_argument("api::make_service: bad service key \"" +
                                name + "\"; " + want);
  size_t second = name.find(':', 5);
  std::string digits =
      second == std::string::npos ? name.substr(5) : name.substr(5, second - 5);
  bool shape_ok = !digits.empty();
  for (char c : digits)
    if (c < '0' || c > '9') shape_ok = false;
  if (!shape_ok || second == std::string::npos ||
      second + 1 >= name.size())  // "dwrr:4", "dwrr:4:", "dwrr:-1:ubq", ...
    throw std::invalid_argument("api::make_service: bad service key \"" +
                                name + "\"; " + want);
  long long n = 0;
  try {
    n = std::stoll(digits);
  } catch (const std::exception&) {
    throw std::invalid_argument("api::make_service: bad tenant count in \"" +
                                name + "\"; " + want);
  }
  if (n < 1 || n > 4096)
    throw std::invalid_argument("api::make_service: tenant count " + digits +
                                " in \"" + name + "\" is out of range; " +
                                want);
  std::string backing = name.substr(second + 1);
  // Loud backing validation: unknown names, vector names and parameterized
  // spellings of non-parameterized queues all get queue_info's errors, with
  // this key quoted so the caller sees which layer rejected what.
  try {
    (void)queue_info(backing);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("api::make_service: bad backing queue in \"" +
                                name + "\": " + e.what());
  }
  return ServiceKey{static_cast<int>(n), backing};
}

/// Builds a fresh service facade by key; throws std::invalid_argument on
/// unknown or malformed keys. cfg applies to every backing queue (procs,
/// backend, capacity, gc_period all pass through make_queue unchanged).
template <typename T>
svc::ServiceFacade<T> make_service(const std::string& name,
                                   const QueueConfig& cfg,
                                   int64_t quantum_base = 1) {
  std::optional<ServiceKey> key = parse_service_key(name);
  if (!key) {
    std::string names;
    for (const std::string& s : service_names()) names += " " + s;
    throw std::invalid_argument("api::make_service: unknown service \"" +
                                name + "\"; known:" + names);
  }
  return svc::ServiceFacade<T>(key->ntenants, key->backing, cfg,
                               quantum_base);
}

}  // namespace wfq::api
