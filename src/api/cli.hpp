// Shared CLI for the experiment runner (ISSUE 3 tentpole, part 3): parses
// the flag surface every experiment shares, resolves experiment names,
// runs them, and hands the Reports to the selected emitter. bench_runner's
// main() is one call to api::run_main.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <system_error>
#include <vector>

#include "api/emit.hpp"
#include "api/experiment.hpp"
#include "api/queue_registry.hpp"
#include "api/service_registry.hpp"
#include "sim/adversary.hpp"

namespace wfq::api {

namespace detail {

/// Strict integer parsing: the whole token must be digits (with optional
/// leading '-'), mirroring the seed parsing in sim::make_policy — "4x8"
/// (a typo for "4,8") must be an error, not a silent p=4 run. stoll alone
/// is too lax (it skips leading whitespace and accepts '+'), so the shape
/// is checked first.
inline int64_t parse_int(const std::string& s, const std::string& flag) {
  bool shape_ok = !s.empty() && s != "-";
  for (size_t i = (s[0] == '-' ? 1 : 0); i < s.size() && shape_ok; ++i)
    if (s[i] < '0' || s[i] > '9') shape_ok = false;
  try {
    if (!shape_ok) throw std::invalid_argument(s);
    return std::stoll(s);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad integer \"" + s + "\" for " + flag);
  }
}

inline std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

inline void print_usage(std::ostream& os) {
  os << "usage: bench_runner [--experiment <names|all>] [options]\n"
        "\n"
        "  --experiment, -e <csv>  experiments to run, by name or paper id\n"
        "                          (e.g. steps_enqueue or e2); 'all' runs\n"
        "                          every registration in E1..E12 order\n"
        "  --list                  list registered experiments and exit\n"
        "  --procs <csv>           override the process-count sweep, e.g. "
        "2,4,8\n"
        "  --ops <n>               override operations per process\n"
        "  --adversary <spec>      round-robin | random[:<seed>] | anti-faa\n"
        "                          | stall-refresh | bursty:<on>:<off>\n"
        "  --seed <n>              seed used by '--adversary random' when no\n"
        "                          explicit :<seed> is given (default 1)\n"
        "  --queues <csv>          override the object set, by registry name\n"
        "                          (bounded takes a parameter: bounded:g=<G>;\n"
        "                          E11 reads vector keys from this flag)\n"
        "  --gc <G>                bounded-queue GC period for experiments\n"
        "                          that take one (E6, E7; E8 sweeps its own\n"
        "                          grid): 0 = paper default, -1 = disabled\n"
        "  --format <fmt>          table (default) | csv | json\n"
        "  --out <file>            write output to <file> instead of stdout\n"
        "  --help, -h              this text\n"
        "\n"
        "registered queues:";
  for (const QueueInfo& e : queue_registry())
    os << " " << e.name;
  os << "\nregistered vectors:";
  for (const QueueInfo& e : vector_registry())
    os << " " << e.name;
  os << "\nregistered services:";
  for (const std::string& s : service_names()) os << " " << s;
  os << "\nregistered adversaries:";
  for (const std::string& n : sim::policy_names()) os << " " << n;
  os << "\n";
}

inline void print_list(std::ostream& os) {
  os << "registered experiments (--experiment <name|id>):\n";
  for (const Experiment& e : experiments())
    os << "  " << e.id << "  " << e.name << " — " << e.title << "\n";
}

}  // namespace detail

/// Parses argv, runs the selected experiments, emits in the selected
/// format. Returns a process exit code (0 ok; 2 usage error).
inline int run_main(int argc, char** argv) {
  RunOptions opts;
  std::vector<std::string> selected;
  std::string out_path;
  bool list = false;

  auto need_value = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc)
      throw std::invalid_argument("missing value for " + flag);
    return argv[++i];
  };

  try {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a == "--experiment" || a == "-e") {
        for (std::string& n : detail::split_csv(need_value(i, a)))
          selected.push_back(std::move(n));
      } else if (a == "--list") {
        list = true;
      } else if (a == "--procs") {
        opts.procs.clear();  // a repeated flag overrides, like --queues
        for (const std::string& p : detail::split_csv(need_value(i, a))) {
          int64_t v = detail::parse_int(p, a);
          // 4096 is far past any real sweep; the cap mainly stops values
          // past INT_MAX from silently truncating to a different p.
          if (v < 1 || v > 4096)
            throw std::invalid_argument(
                "--procs values must be in [1, 4096] (got " + p + ")");
          opts.procs.push_back(static_cast<int>(v));
        }
      } else if (a == "--ops") {
        opts.ops = detail::parse_int(need_value(i, a), a);
        if (opts.ops < 1)
          throw std::invalid_argument("--ops must be >= 1");
      } else if (a == "--gc") {
        opts.gc = detail::parse_int(need_value(i, a), a);
        if (opts.gc < -1)
          throw std::invalid_argument(
              "--gc must be >= 1, 0 (paper default G = p^2 ceil(log2 p)) "
              "or -1 (disable collection)");
      } else if (a == "--adversary") {
        opts.adversary = need_value(i, a);
      } else if (a == "--seed") {
        int64_t v = detail::parse_int(need_value(i, a), a);
        if (v < 0) throw std::invalid_argument("--seed must be >= 0");
        opts.seed = static_cast<uint64_t>(v);
      } else if (a == "--queues") {
        opts.queues = detail::split_csv(need_value(i, a));
        for (const std::string& q : opts.queues)
          (void)object_info(q);  // validate names early (queue or vector)
      } else if (a == "--format") {
        std::string f = need_value(i, a);
        if (f == "table")
          opts.format = Format::table;
        else if (f == "csv")
          opts.format = Format::csv;
        else if (f == "json")
          opts.format = Format::json;
        else
          throw std::invalid_argument("unknown --format \"" + f +
                                      "\" (table|csv|json)");
      } else if (a == "--out") {
        out_path = need_value(i, a);
      } else if (a == "--help" || a == "-h") {
        detail::print_usage(std::cout);
        return 0;
      } else if (!a.empty() && a[0] != '-') {
        selected.push_back(a);  // positional experiment name
      } else {
        throw std::invalid_argument("unknown flag \"" + a + "\"");
      }
    }
    // "--adversary random" composes with --seed (wherever it appeared in
    // argv); explicit "random:<seed>" wins. Validated like any other spec.
    if (opts.adversary == "random")
      opts.adversary = "random:" + std::to_string(opts.seed);
    if (!opts.adversary.empty())
      (void)sim::make_policy(opts.adversary);  // validate spec early
  } catch (const std::exception& ex) {
    std::cerr << "bench_runner: " << ex.what() << "\n\n";
    detail::print_usage(std::cerr);
    return 2;
  }

  if (list) {
    detail::print_list(std::cout);
    return 0;
  }
  if (selected.empty()) {
    detail::print_usage(std::cerr);
    std::cerr << "\n";
    detail::print_list(std::cerr);
    return 2;
  }

  // `all` owns every Experiment copy to_run points into; it must outlive
  // the run loop below.
  const std::vector<Experiment> all = experiments();
  std::vector<const Experiment*> to_run;
  // Dedup: "-e all,figure2" must not run (or emit) figure2 twice — JSON
  // consumers key the experiments array by name.
  auto add_once = [&](const Experiment* e) {
    for (const Experiment* have : to_run)
      if (have == e) return;
    to_run.push_back(e);
  };
  for (const std::string& key : selected) {
    if (key == "all") {
      for (const Experiment& e : all) add_once(&e);
      continue;
    }
    // find_experiment owns the name/id resolution semantics; `all` only
    // re-homes the result so its lifetime spans the run loop.
    const Experiment* found = find_experiment(key);
    if (found == nullptr) {
      std::cerr << "bench_runner: unknown experiment \"" << key << "\"\n\n";
      detail::print_list(std::cerr);
      return 2;
    }
    for (const Experiment& e : all) {
      if (e.name == found->name) {
        add_once(&e);
        break;
      }
    }
  }

  std::vector<Report> reports;
  reports.reserve(to_run.size());
  for (const Experiment* e : to_run) {
    try {
      reports.push_back(e->run(opts));
    } catch (const std::exception& ex) {
      std::cerr << "bench_runner: experiment \"" << e->name
                << "\" failed: " << ex.what() << "\n";
      return 1;
    }
  }

  if (out_path.empty()) {
    emit(std::cout, opts.format, reports);
  } else {
    // Create the parent directory if it does not exist: "--out dir/f.json"
    // into a fresh checkout (the CI artifact path) must not die on a
    // missing directory, and when creation itself fails the message must
    // name the directory, not just the file.
    std::filesystem::path parent = std::filesystem::path(out_path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
      if (ec) {
        std::cerr << "bench_runner: cannot create output directory "
                  << parent.string() << ": " << ec.message() << "\n";
        return 1;
      }
    }
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "bench_runner: cannot open " << out_path << "\n";
      return 1;
    }
    emit(out, opts.format, reports);
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}

}  // namespace wfq::api
