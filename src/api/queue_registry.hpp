// String-keyed factory registry for every concurrent object in the repo —
// object-kind-aware since ISSUE 5: `api::make_queue<T>("ubq", cfg)` builds
// any of the eight queues, `api::make_vector<T>("wfvec", cfg)` either
// registered vector, each on either platform backend, so experiment sweeps,
// the bench_runner `--queues` flag and the conformance tests enumerate
// implementations by name instead of by #include. Adding an object variant
// means adding one entry here — no bench or test code changes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/concurrent_queue.hpp"
#include "api/concurrent_vector.hpp"
#include "baselines/faa_queue.hpp"
#include "baselines/faa_vector.hpp"
#include "baselines/kp_queue.hpp"
#include "baselines/lock_queues.hpp"
#include "baselines/ms_queue.hpp"
#include "baselines/sim_queue.hpp"
#include "core/bounded_queue.hpp"
#include "core/unbounded_queue.hpp"
#include "core/wait_free_vector.hpp"
#include "platform/platform.hpp"

namespace wfq::api {

/// Which Platform the queue's shared accesses go through. Sim instantiations
/// yield to the cooperative scheduler before every access; Real ones are
/// plain (counted) std::atomic ops.
enum class Backend { real, sim };

struct QueueConfig {
  int procs = 1;
  Backend backend = Backend::real;
  /// Bounded queue only: GC period G; 0 selects the paper default
  /// p^2 ceil(log2 p), negative (-1) disables GC (matches BoundedQueue's
  /// ctor). A "bounded:g=<G>" registry key overrides this field.
  int64_t gc_period = 0;
  /// Fixed-segment queues (faaq) only: cell-array capacity.
  size_t capacity = size_t{1} << 18;
};

struct QueueInfo {
  std::string name;
  std::string description;
  /// True when the implementation is templated on the Platform, i.e. its
  /// shared accesses are step-counted and a Sim instantiation has yield
  /// points. Lock-based baselines are false: they build under either
  /// backend but take zero modeled steps, so step-model experiments skip
  /// them by default.
  bool step_counted = true;
};

/// Registered queue metadata, in canonical registry order.
inline const std::vector<QueueInfo>& queue_registry() {
  static const std::vector<QueueInfo> entries = {
      {"ubq", "wait-free ordering-tree queue, unbounded space (the paper)",
       true},
      {"bounded",
       "bounded-space wait-free queue (Section 6: GC phases + persistent "
       "RBT + EBR; parameterize as bounded:g=<G>)",
       true},
      {"msq", "Michael-Scott lock-free queue (CAS-retry exemplar)", true},
      {"kp",
       "Kogan-Petrank wait-free queue (phase-ordered helping, Theta(p) per "
       "op; alias kpq)",
       true},
      {"simq",
       "Fatourou-Kallimanis software-combining queue (toggle announce, "
       "state-copy + single-CAS install)",
       true},
      {"faaq", "fetch&add array queue (fast in practice, Omega(p) worst "
               "case)",
       true},
      {"twolock", "Michael-Scott two-lock queue (wall-clock baseline)",
       false},
      {"mutex", "single-mutex std::deque wrapper (wall-clock baseline)",
       false},
  };
  return entries;
}

/// All registered queue names, in registry order.
inline std::vector<std::string> queue_names() {
  std::vector<std::string> names;
  for (const QueueInfo& e : queue_registry()) names.push_back(e.name);
  return names;
}

/// Parses the bounded queue's parameterized registry key. Returns nullopt
/// for names that are not bounded-queue keys at all; returns the GC period
/// for "bounded" (nullopt period -> use cfg.gc_period, i.e. the paper
/// default) and "bounded:g=<G>" with G >= 1 or G == -1 (disabled).
/// Malformed keys throw with the expected shape spelled out, mirroring how
/// sim::make_policy rejects bad "random:<seed>" specs instead of guessing.
struct BoundedKey {
  bool has_period = false;
  int64_t gc_period = 0;
};

inline std::optional<BoundedKey> parse_bounded_key(const std::string& name) {
  if (name == "bounded" || name == "bq")  // "bq" is the pre-PR-4 alias
    return BoundedKey{};
  if (name.rfind("bounded", 0) != 0) return std::nullopt;
  const std::string want =
      "want \"bounded\" or \"bounded:g=<G>\" with G >= 1 or G == -1 "
      "(disable GC)";
  if (name.rfind("bounded:g=", 0) != 0)
    throw std::invalid_argument("api::make_queue: bad bounded-queue key \"" +
                                name + "\"; " + want);
  std::string digits = name.substr(10);
  // All-digits check first (optional leading '-'): stoll would silently
  // accept whitespace/trailing junk — the class of key typo this factory
  // exists to reject loudly.
  bool shape_ok = !digits.empty() && digits != "-";
  for (size_t i = (digits[0] == '-' ? 1 : 0); i < digits.size() && shape_ok;
       ++i)
    if (digits[i] < '0' || digits[i] > '9') shape_ok = false;
  int64_t g = 0;
  try {
    if (!shape_ok) throw std::invalid_argument(digits);
    g = std::stoll(digits);
  } catch (const std::exception&) {
    throw std::invalid_argument("api::make_queue: bad GC period in \"" +
                                name + "\"; " + want);
  }
  if (g == 0 || g < -1)
    throw std::invalid_argument(
        "api::make_queue: GC period " + digits + " in \"" + name +
        "\" is out of range; " + want +
        " (the paper default is spelled \"bounded\", not g=0)");
  return BoundedKey{true, g};
}

/// Canonical registry name for accepted alias spellings. "kpq" was the
/// Kogan-Petrank key before PR 6 renamed it "kp"; old sweep scripts keep
/// working, new code should say "kp". ("bq" -> "bounded" lives in
/// parse_bounded_key because it shares the parameterized-key path.)
inline std::string resolve_queue_alias(const std::string& name) {
  if (name == "kpq") return "kp";
  return name;
}

/// Strict rejection of parameterized variants of keys that take none:
/// "kp:1" or "simq:g=2" must fail as "takes no parameters", not vanish into
/// the generic unknown-name message where the typo class is invisible. Only
/// the bounded queue has a parameterized key (and handles its own errors in
/// parse_bounded_key); anything else with a ':' whose base names a
/// registered queue is rejected here.
inline void reject_parameterized(const std::string& name) {
  size_t colon = name.find(':');
  if (colon == std::string::npos) return;
  std::string base = resolve_queue_alias(name.substr(0, colon));
  for (const QueueInfo& e : queue_registry())
    if (e.name == base && base != "bounded")
      throw std::invalid_argument(
          "api::make_queue: queue \"" + base + "\" takes no parameters; got "
          "\"" + name + "\" (only bounded takes :g=<G>)");
}

/// Metadata for one registered queue; throws on unknown names. Accepts the
/// bounded queue's parameterized keys ("bounded:g=<G>", alias "bq") and the
/// "kpq" alias, resolving them to their registry entries.
inline const QueueInfo& queue_info(const std::string& name) {
  std::string base = resolve_queue_alias(name);
  if (parse_bounded_key(name).has_value()) base = "bounded";
  reject_parameterized(name);
  for (const QueueInfo& e : queue_registry())
    if (e.name == base) return e;
  std::string names;
  for (const QueueInfo& e : queue_registry()) names += " " + e.name;
  throw std::invalid_argument("api::queue_info: unknown queue \"" + name +
                              "\"; known:" + names +
                              " (bounded takes :g=<G>)");
}

/// QueueConfig sized for a sweep of `ops_per_proc` operations per process:
/// fixed-segment queues (faaq) get a cell array covering the workload's
/// worst-case slot claims — each op can claim several slots when poisoning
/// forces reclaims (anti-faa makes this the common case), so an 8x margin
/// over the op count is applied (never below the default capacity).
/// Experiments that let --ops/--procs grow the workload must use this
/// instead of a bare {procs, backend} config, or faaq aborts on exhaustion.
inline QueueConfig sized_config(int procs, Backend backend,
                                int64_t ops_per_proc) {
  QueueConfig cfg;
  cfg.procs = procs;
  cfg.backend = backend;
  uint64_t claims = static_cast<uint64_t>(procs) *
                    static_cast<uint64_t>(ops_per_proc < 0 ? 0 : ops_per_proc);
  cfg.capacity =
      std::max(cfg.capacity, static_cast<size_t>(8 * claims + (1u << 14)));
  return cfg;
}

namespace detail {

/// Builds Q<T, Real or Sim> per cfg.backend with the given ctor args.
template <template <typename, typename> class Q, typename T, typename... Args>
AnyQueue<T> make_on_backend(const char* name, Backend backend,
                            Args&&... args) {
  if (backend == Backend::sim)
    return AnyQueue<T>::template of<Q<T, platform::SimPlatform>>(
        name, std::forward<Args>(args)...);
  return AnyQueue<T>::template of<Q<T, platform::RealPlatform>>(
      name, std::forward<Args>(args)...);
}

/// Vector sibling of make_on_backend.
template <template <typename, typename> class V, typename T, typename... Args>
AnyVector<T> make_vec_on_backend(const char* name, Backend backend,
                                 Args&&... args) {
  if (backend == Backend::sim)
    return AnyVector<T>::template of<V<T, platform::SimPlatform>>(
        name, std::forward<Args>(args)...);
  return AnyVector<T>::template of<V<T, platform::RealPlatform>>(
      name, std::forward<Args>(args)...);
}

}  // namespace detail

/// Builds a fresh queue by registry name; throws std::invalid_argument on
/// unknown names. The lock-based baselines have no Platform template
/// parameter; they are returned unchanged for either backend (under the sim
/// scheduler they simply expose no yield points, see QueueInfo).
template <typename T>
AnyQueue<T> make_queue(const std::string& name, const QueueConfig& cfg) {
  if (name == "ubq")
    return detail::make_on_backend<core::UnboundedQueue, T>(
        "ubq", cfg.backend, cfg.procs);
  if (std::optional<BoundedKey> bk = parse_bounded_key(name)) {
    int64_t g = bk->has_period ? bk->gc_period : cfg.gc_period;
    return detail::make_on_backend<core::BoundedQueue, T>(
        name.c_str(), cfg.backend, cfg.procs, g);
  }
  if (name == "msq")
    return detail::make_on_backend<baselines::MsQueue, T>("msq", cfg.backend,
                                                          cfg.procs);
  if (name == "kp" || name == "kpq")
    return detail::make_on_backend<baselines::KpQueue, T>(
        name.c_str(), cfg.backend, cfg.procs);
  if (name == "simq")
    return detail::make_on_backend<baselines::SimQueue, T>(
        "simq", cfg.backend, cfg.procs);
  if (name == "faaq")
    return detail::make_on_backend<baselines::FaaArrayQueue, T>(
        "faaq", cfg.backend, cfg.procs, cfg.capacity);
  if (name == "twolock")
    return AnyQueue<T>::template of<baselines::TwoLockQueue<T>>("twolock");
  if (name == "mutex")
    return AnyQueue<T>::template of<baselines::MutexQueue<T>>("mutex");
  // Unknown names get queue_info's invalid_argument (one error path, one
  // known-names list); a name that IS registered but missing above means
  // the registry and this factory chain fell out of sync — fail loudly.
  (void)queue_info(name);
  throw std::logic_error("api::make_queue: queue \"" + name +
                         "\" is registered but has no factory entry; add it "
                         "to the make_queue chain in queue_registry.hpp");
}

// --- the vector side of the registry (ISSUE 5) -----------------------------
// Vectors reuse QueueConfig (procs/backend/capacity apply; gc_period is
// queue-only) and QueueInfo's metadata shape, so sweeps written against the
// queue half port over unchanged.

/// Registered vector metadata, in canonical registry order.
inline const std::vector<QueueInfo>& vector_registry() {
  static const std::vector<QueueInfo> entries = {
      {"wfvec",
       "wait-free ordering-tree vector (Section 7: O(log p) append, "
       "O(log^2 p + log n) get)",
       true},
      {"faavec",
       "flat fetch&add cell-array vector (O(1) baseline; fixed capacity "
       "from cfg.capacity)",
       true},
  };
  return entries;
}

/// All registered vector names, in registry order.
inline std::vector<std::string> vector_names() {
  std::vector<std::string> names;
  for (const QueueInfo& e : vector_registry()) names.push_back(e.name);
  return names;
}

/// Metadata for one registered vector; throws on unknown names.
inline const QueueInfo& vector_info(const std::string& name) {
  for (const QueueInfo& e : vector_registry())
    if (e.name == name) return e;
  std::string names;
  for (const QueueInfo& e : vector_registry()) names += " " + e.name;
  throw std::invalid_argument("api::vector_info: unknown vector \"" + name +
                              "\"; known:" + names);
}

/// Metadata for a registered object of either kind — queue (parameterized
/// bounded keys included) or vector. This is what kind-agnostic surfaces
/// (the CLI's --queues validation) resolve against; malformed bounded keys
/// keep their loud queue-side errors, and a name matching neither kind
/// throws with both known-name lists.
inline const QueueInfo& object_info(const std::string& name) {
  std::string base = resolve_queue_alias(name);
  if (parse_bounded_key(name).has_value()) base = "bounded";
  reject_parameterized(name);
  for (const QueueInfo& e : queue_registry())
    if (e.name == base) return e;
  for (const QueueInfo& e : vector_registry())
    if (e.name == name) return e;
  std::string names;
  for (const QueueInfo& e : queue_registry()) names += " " + e.name;
  std::string vnames;
  for (const QueueInfo& e : vector_registry()) vnames += " " + e.name;
  throw std::invalid_argument("api::object_info: unknown object \"" + name +
                              "\"; known queues:" + names +
                              " (bounded takes :g=<G>); known vectors:" +
                              vnames);
}

/// The shared --queues flag carries registry keys of EITHER object kind.
/// An experiment that sweeps one kind picks out its own keys with these and
/// falls back to its historical default when none of the requested keys
/// match — so `-e all --queues ubq` runs the queue experiments on ubq while
/// E11 keeps its full vector sweep, and `--queues wfvec` narrows E11
/// without blowing up the queue experiments mid-run.
inline std::vector<std::string> queue_keys_or(
    const std::vector<std::string>& keys, std::vector<std::string> def) {
  std::vector<std::string> out;
  for (const std::string& k : keys) {
    bool is_queue = parse_bounded_key(k).has_value();
    const std::string base = resolve_queue_alias(k);
    for (const QueueInfo& e : queue_registry()) is_queue |= (e.name == base);
    if (is_queue) out.push_back(k);
  }
  return out.empty() ? std::move(def) : out;
}

inline std::vector<std::string> vector_keys_or(
    const std::vector<std::string>& keys, std::vector<std::string> def) {
  std::vector<std::string> out;
  for (const std::string& k : keys)
    for (const QueueInfo& e : vector_registry())
      if (e.name == k) out.push_back(k);
  return out.empty() ? std::move(def) : out;
}

/// Builds a fresh vector by registry name; throws std::invalid_argument on
/// unknown names. The flat baseline takes its fixed capacity from
/// cfg.capacity (sized_config applies to it exactly as it does to faaq).
template <typename T>
AnyVector<T> make_vector(const std::string& name, const QueueConfig& cfg) {
  if (name == "wfvec")
    return detail::make_vec_on_backend<core::WaitFreeVector, T>(
        "wfvec", cfg.backend, cfg.procs);
  if (name == "faavec")
    return detail::make_vec_on_backend<baselines::FaaVector, T>(
        "faavec", cfg.backend, cfg.procs, cfg.capacity);
  (void)vector_info(name);
  throw std::logic_error("api::make_vector: vector \"" + name +
                         "\" is registered but has no factory entry; add it "
                         "to the make_vector chain in queue_registry.hpp");
}

}  // namespace wfq::api
