// Report emitters for the experiment API: the same structured Report renders
// as (a) the classic human-readable aligned table — byte-compatible in
// spirit with the pre-redesign hand-rolled benches, (b) CSV for spreadsheet
// import, or (c) JSON ("wfq-bench-v1") for the machine-readable perf
// trajectory that CI archives as BENCH_*.json.
#pragma once

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "stats/table.hpp"

namespace wfq::api {

// ---------------------------------------------------------------- table ---

inline void emit_table(std::ostream& os, const Report& r) {
  for (const std::string& line : r.preamble) os << line << "\n";
  if (!r.preamble.empty()) os << "\n";
  for (const Section& sec : r.sections) {
    for (const std::string& line : sec.preamble) os << line << "\n";
    if (!sec.columns.empty()) {
      stats::Table t(sec.columns);
      for (const auto& row : sec.rows) {
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (const Cell& c : row) cells.push_back(c.text);
        t.add_row(std::move(cells));
      }
      t.print(os);
    }
    if (!sec.shapes.empty()) os << "\n";
    for (const Shape& s : sec.shapes)
      os << stats::shape_line(s.series, s.fit) << "\n";
    for (const std::string& line : sec.notes) os << line << "\n";
    os << "\n";
  }
}

// ------------------------------------------------------------------ csv ---

namespace detail {

inline std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace detail

/// One header+rows block per section, prefixed by a comment line naming the
/// experiment and section; shape fits become their own block.
inline void emit_csv(std::ostream& os, const Report& r) {
  for (const Section& sec : r.sections) {
    // Note-only sections (e.g. an "E5b skipped: ..." explanation) still
    // get their comment block: a consumer must be able to tell "skipped,
    // and here is why" from "section no longer exists".
    if (sec.columns.empty() && sec.shapes.empty() && sec.metrics.empty()) {
      if (sec.notes.empty()) continue;
      os << "# " << r.experiment << "/" << sec.id << "\n";
      for (const std::string& n : sec.notes) os << "#" << n << "\n";
      os << "\n";
      continue;
    }
    os << "# " << r.experiment << "/" << sec.id << "\n";
    if (!sec.columns.empty()) {
      for (size_t c = 0; c < sec.columns.size(); ++c)
        os << (c ? "," : "") << detail::csv_escape(sec.columns[c]);
      os << "\n";
      for (const auto& row : sec.rows) {
        for (size_t c = 0; c < row.size(); ++c)
          os << (c ? "," : "") << detail::csv_escape(row[c].text);
        os << "\n";
      }
    }
    if (!sec.shapes.empty()) {
      if (!sec.columns.empty()) os << "\n";  // own block, own schema
      os << "# " << r.experiment << "/" << sec.id << " shapes\n";
      os << "series,r2_logp,r2_log2p,r2_linp,best\n";
      for (const Shape& s : sec.shapes)
        os << detail::csv_escape(s.series) << ","
           << stats::fmt(s.fit.r2_logp, 6) << ","
           << stats::fmt(s.fit.r2_log2p, 6) << ","
           << stats::fmt(s.fit.r2_linp, 6) << "," << s.fit.best << "\n";
    }
    if (!sec.metrics.empty()) {
      if (!sec.columns.empty() || !sec.shapes.empty()) os << "\n";
      os << "# " << r.experiment << "/" << sec.id << " metrics\n";
      os << "metric,value\n";
      for (const Metric& m : sec.metrics)
        os << detail::csv_escape(m.name) << "," << stats::fmt(m.value, 6)
           << "\n";
    }
    os << "\n";
  }
}

// ----------------------------------------------------------------- json ---

namespace detail {

inline void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Numbers print with the 17 significant digits a double needs to
/// round-trip exactly (the trajectory diffs BENCH_*.json files, so lossy
/// rounding would hide — or invent — changes); non-finite values (never
/// expected, but never invalid JSON) become null.
inline void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

inline void json_string_array(std::ostream& os,
                              const std::vector<std::string>& xs) {
  os << "[";
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ",";
    json_string(os, xs[i]);
  }
  os << "]";
}

}  // namespace detail

/// One experiment object: {"name","id","title","sections":[...]}. Rows mix
/// JSON numbers (numeric cells, raw value) and strings (label cells).
inline void emit_json_experiment(std::ostream& os, const Report& r) {
  os << "{\"name\":";
  detail::json_string(os, r.experiment);
  os << ",\"id\":";
  detail::json_string(os, r.id);
  os << ",\"title\":";
  detail::json_string(os, r.title);
  os << ",\"sections\":[";
  for (size_t si = 0; si < r.sections.size(); ++si) {
    const Section& sec = r.sections[si];
    if (si) os << ",";
    os << "{\"id\":";
    detail::json_string(os, sec.id);
    os << ",\"columns\":";
    detail::json_string_array(os, sec.columns);
    os << ",\"rows\":[";
    for (size_t ri = 0; ri < sec.rows.size(); ++ri) {
      if (ri) os << ",";
      os << "[";
      for (size_t ci = 0; ci < sec.rows[ri].size(); ++ci) {
        if (ci) os << ",";
        const Cell& c = sec.rows[ri][ci];
        if (c.numeric)
          detail::json_number(os, c.num);
        else
          detail::json_string(os, c.text);
      }
      os << "]";
    }
    os << "],\"shapes\":[";
    for (size_t hi = 0; hi < sec.shapes.size(); ++hi) {
      if (hi) os << ",";
      const Shape& s = sec.shapes[hi];
      os << "{\"series\":";
      detail::json_string(os, s.series);
      os << ",\"r2_logp\":";
      detail::json_number(os, s.fit.r2_logp);
      os << ",\"r2_log2p\":";
      detail::json_number(os, s.fit.r2_log2p);
      os << ",\"r2_linp\":";
      detail::json_number(os, s.fit.r2_linp);
      os << ",\"best\":";
      detail::json_string(os, s.fit.best);
      os << "}";
    }
    os << "],\"metrics\":{";
    for (size_t mi = 0; mi < sec.metrics.size(); ++mi) {
      if (mi) os << ",";
      detail::json_string(os, sec.metrics[mi].name);
      os << ":";
      detail::json_number(os, sec.metrics[mi].value);
    }
    os << "},\"notes\":";
    detail::json_string_array(os, sec.notes);
    os << "}";
  }
  os << "]}";
}

/// Top-level document over one run's reports.
inline void emit_json(std::ostream& os, const std::vector<Report>& reports) {
  os << "{\"schema\":\"wfq-bench-v1\",\"experiments\":[";
  for (size_t i = 0; i < reports.size(); ++i) {
    if (i) os << ",";
    emit_json_experiment(os, reports[i]);
  }
  os << "]}\n";
}

/// Renders a batch of reports in the selected format.
inline void emit(std::ostream& os, Format format,
                 const std::vector<Report>& reports) {
  if (format == Format::json) {
    emit_json(os, reports);
    return;
  }
  for (const Report& r : reports) {
    if (format == Format::csv)
      emit_csv(os, r);
    else
      emit_table(os, r);
  }
}

}  // namespace wfq::api
