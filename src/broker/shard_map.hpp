// Shard map for the broker daemon (ISSUE 8 tentpole): N backing objects
// built through the api seam, each owned by exactly one servicer thread.
// The backing key is ANY registry spelling — a queue key ("ubq",
// "bounded:g=64", "faaq") or a service key ("dwrr:4:ubq"), resolved with
// the same strict parsers the seam uses everywhere (parse_service_key
// first, queue_info otherwise, so malformed keys fail at construction with
// the registry's own messages, not at first traffic).
//
// Routing: shard_of(key) = splitmix64(key) % nshards. Inside a dwrr-backed
// shard, key % ntenants picks the tenant — so one client key always lands
// on one shard AND one tenant, which is what makes per-key FIFO a testable
// broker property.
//
// Threading contract: enqueue/dequeue/space_stats(shard) are called ONLY by
// that shard's servicer (single-toucher, so backings are built with
// procs = 1 and bound once); tenant_rows() reads the facade's documented
// race-free atomic counters and may be called from any servicer.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/queue_registry.hpp"
#include "api/service_registry.hpp"
#include "core/hash.hpp"
#include "svc/service.hpp"

namespace wfq::broker {

/// Shard-routing mix: the shared splitmix64 finisher (core/hash.hpp) —
/// cheap, well-mixed, deterministic across runs, so the shard route of a
/// key is stable and FIFO-per-key is meaningful.
inline uint64_t mix_key(uint64_t x) { return core::splitmix64(x); }

/// One tenant row of a STAT report (dwrr-backed shards only).
struct TenantRow {
  int tenant = 0;
  uint32_t weight = 1;
  uint64_t enqueued = 0;
  uint64_t serviced = 0;
};

class ShardMap {
 public:
  /// Builds `nshards` backings of `backing_key`. `expected_ops` sizes
  /// fixed-segment backings (faaq cell arrays) via api::sized_config, the
  /// same contract the experiments follow.
  ShardMap(int nshards, const std::string& backing_key, int64_t expected_ops) {
    if (nshards < 1 || nshards > 4096)
      throw std::invalid_argument(
          "broker::ShardMap: shard count must be in [1, 4096] (got " +
          std::to_string(nshards) + ")");
    backing_ = backing_key;
    api::QueueConfig cfg =
        api::sized_config(1, api::Backend::real, expected_ops);
    if (auto sk = api::parse_service_key(backing_key)) {
      ntenants_ = sk->ntenants;
      for (int s = 0; s < nshards; ++s)
        services_.push_back(api::make_service<uint64_t>(backing_key, cfg));
    } else {
      (void)api::queue_info(backing_key);  // loud registry-side validation
      for (int s = 0; s < nshards; ++s)
        queues_.push_back(api::make_queue<uint64_t>(backing_key, cfg));
    }
    nshards_ = nshards;
  }

  int shards() const { return nshards_; }
  const std::string& backing() const { return backing_; }
  bool service_backed() const { return !services_.empty(); }
  int tenants_per_shard() const { return ntenants_; }

  int shard_of(uint32_t key) const {
    return static_cast<int>(mix_key(key) % static_cast<uint64_t>(nshards_));
  }

  /// Servicer-thread setup: binds process slot 0 on shard `s`'s backing.
  void bind_servicer(int s) {
    if (service_backed())
      services_[static_cast<size_t>(s)].bind_thread(0);
    else
      queues_[static_cast<size_t>(s)].bind_thread(0);
  }

  /// ENQ on shard `s` for routing key `key` (single-toucher contract).
  void enqueue(int s, uint32_t key, uint64_t v) {
    if (service_backed())
      services_[static_cast<size_t>(s)].enqueue(
          static_cast<int>(key % static_cast<uint32_t>(ntenants_)), v);
    else
      queues_[static_cast<size_t>(s)].enqueue(v);
  }

  /// DEQ on shard `s`: FIFO for queue backings; DWRR service order for
  /// service backings (the key routed here but the scheduler picks the
  /// tenant). `tenant_out` reports which tenant was served (-1 for queues).
  std::optional<uint64_t> dequeue(int s, int& tenant_out) {
    if (service_backed()) {
      auto got = services_[static_cast<size_t>(s)].service_next();
      if (!got) return std::nullopt;
      tenant_out = got->tenant;
      return got->value;
    }
    tenant_out = -1;
    return queues_[static_cast<size_t>(s)].dequeue();
  }

  /// Space snapshot of shard `s`'s backing — servicer-thread only (the
  /// single mutator reading its own object IS the quiescent case the
  /// space_stats contract asks for).
  api::SpaceStats space_stats(int s) {
    if (service_backed())
      return services_[static_cast<size_t>(s)].space_stats();
    return queues_[static_cast<size_t>(s)].space_stats();
  }

  /// Sets tenant `t`'s DWRR weight on EVERY shard. Safe from any thread
  /// (the facade's set_weight is an atomic store the schedulers read at
  /// their next refresh) — the raft apply path calls this from the raft
  /// thread while servicers run. No-op for queue backings or out-of-range
  /// tenants; returns whether it applied.
  bool set_weight_all(int t, uint32_t w) {
    if (!service_backed() || t < 0 || t >= ntenants_ || w == 0) return false;
    for (auto& svc : services_) svc.set_weight(t, w);
    return true;
  }

  /// Per-tenant counters of shard `s` (dwrr backings; empty for queues).
  /// Safe from any thread: reads the facade's atomic snapshot counters.
  std::vector<TenantRow> tenant_rows(int s) const {
    std::vector<TenantRow> rows;
    if (!service_backed()) return rows;
    const svc::ServiceFacade<uint64_t>& f = services_[static_cast<size_t>(s)];
    for (int t = 0; t < ntenants_; ++t) {
      auto st = f.tenant_stats(t);
      rows.push_back({t, st.weight, st.enqueued, st.serviced});
    }
    return rows;
  }

 private:
  std::string backing_;
  int nshards_ = 0;
  int ntenants_ = 0;
  // Deques: backings hold atomics/mutexes and must never relocate while
  // servicer threads hold into them.
  std::deque<api::AnyQueue<uint64_t>> queues_;
  std::deque<svc::ServiceFacade<uint64_t>> services_;
};

}  // namespace wfq::broker
