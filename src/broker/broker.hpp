// Broker daemon core (ISSUE 8 tentpole): owns a ShardMap of registry-built
// backings, an event-loop I/O thread, and one servicer thread per shard
// group. Runs equally as the `broker` binary (broker_main.cpp wires signals
// to stop()) and in-process (the E14 experiments and the end-to-end CTest
// construct a Broker on a temp UDS path directly — same code path, real
// sockets).
//
// Data flow: the I/O thread decodes each connection's read burst into a
// frame batch (net::EventLoop), buckets it by shard group, and pushes ONE
// work-queue append per group per burst. Each servicer drains its group's
// queue in batches, performs the queue/service ops on the shards it owns,
// encodes all responses for a connection into one buffer, and send()s
// directly from its own thread — response syscalls scale with servicers
// instead of funneling through the I/O thread.
//
// Shutdown (stop(), also the SIGINT/SIGTERM path): stop accepting and
// reading, then drain — every request already read is processed and its
// response flushed — then join and leave the final counters readable
// (report()). A group work queue that hits its backlog cap blocks the I/O
// thread (backpressure through the kernel socket buffers), never drops.
//
// Cluster mode (ISSUE 10): with cfg.cluster set, the broker is one replica
// of an N-node raft group (src/raft/). The replicated state machine is the
// broker METADATA — shard count, backing key, DWRR tenant weights — not the
// queue data: the shard map is built when the replicated config entry
// applies, SETW commits through the log before acking, and only the leader
// serves ENQ/DEQ (followers answer ERR_NOT_LEADER + hint; clients follow
// it, see loadgen's ClusterClient). Queue contents are per-replica, so a
// failover can lose items enqueued on the dead leader, and a client that
// retries a timed-out ENQ can duplicate one — there is deliberately NO
// exactly-once data contract across failover; the replicated guarantee
// covers metadata only. Documented in docs/PROTOCOL.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "broker/shard_map.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "platform/affinity.hpp"
#include "raft/cluster.hpp"

namespace wfq::broker {

struct BrokerConfig {
  int shards = 1;
  /// Servicer threads; 0 = one per shard. Shard s belongs to group
  /// s % groups, so shards spread round-robin over servicers.
  int groups = 0;
  /// Backing key per shard: any make_queue or make_service spelling.
  std::string backing = "ubq";
  /// Listeners: either or both. An empty uds_path and tcp_port < 0 is a
  /// configuration error (a broker nobody can reach).
  std::string uds_path;
  int tcp_port = -1;  // -1 = none, 0 = kernel-picked (read back via tcp_port())
  /// Pin servicer threads to cores (platform::pin_thread_to_core; no-op
  /// where unsupported).
  bool pin_threads = false;
  /// Sizes fixed-segment backings (api::sized_config contract).
  int64_t expected_ops = int64_t{1} << 18;

  // --- cluster mode (ISSUE 10): N-replica group over raft -----------------
  /// When true, this broker is replica `node_id` of a group whose client
  /// TCP ports are `peer_ports` (one per replica, index = node id;
  /// peer_ports[node_id] must equal tcp_port). Only the leader serves
  /// ENQ/DEQ/SETW; followers answer ERR_NOT_LEADER with a leader hint. The
  /// shard map is built from the raft-replicated config entry, so every
  /// replica provably runs the same topology.
  bool cluster = false;
  int node_id = 0;
  std::vector<uint16_t> peer_ports;
  uint64_t election_timeout_ms = 150;
  uint64_t raft_seed = 0;  // 0 = node_id + 1
};

class Broker {
 public:
  struct ShardCounters {
    uint64_t enq = 0;
    uint64_t deq_hit = 0;
    uint64_t deq_empty = 0;
    uint64_t ping = 0;
    uint64_t stat = 0;
    uint64_t bad = 0;
  };

  explicit Broker(BrokerConfig cfg) : cfg_(std::move(cfg)) {
    if (cfg_.uds_path.empty() && cfg_.tcp_port < 0)
      throw std::invalid_argument(
          "broker::Broker: need a UDS path and/or a TCP port to listen on");
    if (cfg_.cluster) {
      size_t n = cfg_.peer_ports.size();
      if (n < 1 || cfg_.node_id < 0 || static_cast<size_t>(cfg_.node_id) >= n)
        throw std::invalid_argument(
            "broker::Broker: cluster mode needs peer_ports with node_id in "
            "range");
      if (cfg_.tcp_port <= 0 ||
          cfg_.peer_ports[static_cast<size_t>(cfg_.node_id)] !=
              static_cast<uint16_t>(cfg_.tcp_port))
        throw std::invalid_argument(
            "broker::Broker: cluster mode requires tcp_port == "
            "peer_ports[node_id] (peers dial fixed ports)");
    }
    if (cfg_.groups <= 0 || cfg_.groups > cfg_.shards)
      cfg_.groups = cfg_.shards;
    if (!cfg_.cluster) {
      // Single-node: the map exists from birth, exactly as before cluster
      // mode was added. Cluster replicas build it when the replicated
      // config entry applies (see on_raft_apply).
      map_ = std::make_unique<ShardMap>(cfg_.shards, cfg_.backing,
                                        cfg_.expected_ops);
      map_ready_.store(true, std::memory_order_release);
    }
    for (int s = 0; s < cfg_.shards; ++s) shard_state_.emplace_back();
    for (int g = 0; g < cfg_.groups; ++g) groups_.emplace_back();
  }

  ~Broker() { stop(); }
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Binds listeners and spawns the servicer + I/O threads. Throws on bind
  /// failure (daemon has nothing to fall back to).
  void start() {
    net::EventLoop::Callbacks cbs;
    cbs.on_batch = [this](uint64_t conn, std::vector<net::Frame>& batch) {
      route(conn, batch);
    };
    loop_ = std::make_unique<net::EventLoop>(std::move(cbs));
    if (!cfg_.uds_path.empty())
      loop_->add_listener(net::listen_uds(cfg_.uds_path));
    if (cfg_.tcp_port >= 0) {
      net::FdHandle fd = net::listen_tcp(static_cast<uint16_t>(cfg_.tcp_port));
      tcp_port_ = net::bound_tcp_port(fd.get());
      loop_->add_listener(std::move(fd));
    }
    // The RaftService must exist before the I/O thread can route a frame:
    // route() reads raft_ unsynchronized, which is only sound because after
    // this point raft_ never changes until stop(). Peer dials retry, so
    // starting it before the listeners' first accept costs nothing.
    if (cfg_.cluster) {
      raft::RaftServiceConfig rc;
      rc.node_id = cfg_.node_id;
      rc.peer_ports = cfg_.peer_ports;
      rc.election_timeout_ms = cfg_.election_timeout_ms;
      rc.seed = cfg_.raft_seed;
      raft_ = std::make_unique<raft::RaftService>(
          rc,
          [this](uint64_t idx, const std::string& cmd) {
            on_raft_apply(idx, cmd);
          },
          [this](bool leader) { on_raft_role(leader); },
          [this]() -> std::optional<std::string> {
            // Leader bootstrap: until SOME config entry has applied, keep
            // proposing ours. Duplicates are idempotent at apply.
            if (map_ready_.load(std::memory_order_acquire))
              return std::nullopt;
            return "cfg|" + std::to_string(cfg_.shards) + "|" + cfg_.backing;
          });
      raft_->start();
    }
    for (int g = 0; g < cfg_.groups; ++g)
      groups_[static_cast<size_t>(g)].thread =
          std::thread([this, g] { servicer_main(g); });
    io_thread_ = std::thread([this] {
      if (cfg_.pin_threads) platform::pin_thread_to_core(0);
      loop_->run();
    });
    started_ = true;
  }

  /// Clean shutdown: stop reading, drain every already-read request through
  /// its servicer, flush responses, join. Idempotent; also the dtor path.
  void stop() {
    if (!started_ || stopped_.exchange(true)) return;
    // Cluster drain: silence raft FIRST — the leader stops heartbeating, so
    // the survivors elect a successor one election timeout later, while this
    // replica still drains every client request it already read.
    if (raft_) raft_->stop();
    loop_->stop();
    io_thread_.join();
    for (Group& g : groups_) {
      {
        std::lock_guard<std::mutex> lk(g.m);
        g.closed = true;
      }
      g.cv.notify_all();
    }
    for (Group& g : groups_) g.thread.join();
    // Every response is queued by now (servicers joined): flush the last
    // bytes out and close, so clients waiting on responses see EOF rather
    // than a silent socket.
    loop_->shutdown_flush_and_close();
    if (!cfg_.uds_path.empty()) ::unlink(cfg_.uds_path.c_str());
  }

  /// TCP port actually bound (resolves tcp_port = 0); 0 if no TCP listener.
  uint16_t tcp_port() const { return tcp_port_; }

  int shards() const { return cfg_.shards; }
  int groups() const { return cfg_.groups; }
  const std::string& backing() const { return cfg_.backing; }

  /// Cluster-mode observability (false/defaults when not clustered).
  bool is_leader() const { return raft_ ? raft_->is_leader() : true; }
  bool serving() const {
    return map_ready_.load(std::memory_order_acquire) && is_leader();
  }

  ShardCounters counters(int shard) const {
    const ShardState& s = shard_state_[static_cast<size_t>(shard)];
    return {s.enq.load(std::memory_order_relaxed),
            s.deq_hit.load(std::memory_order_relaxed),
            s.deq_empty.load(std::memory_order_relaxed),
            s.ping.load(std::memory_order_relaxed),
            s.stat.load(std::memory_order_relaxed),
            s.bad.load(std::memory_order_relaxed)};
  }

  ShardCounters totals() const {
    ShardCounters t;
    for (int s = 0; s < shards(); ++s) {
      ShardCounters c = counters(s);
      t.enq += c.enq;
      t.deq_hit += c.deq_hit;
      t.deq_empty += c.deq_empty;
      t.ping += c.ping;
      t.stat += c.stat;
      t.bad += c.bad;
    }
    return t;
  }

  /// The STAT payload and the `broker --report` body: per-shard op counters
  /// plus the space snapshot each servicer refreshes for its own shards
  /// (live read of another shard's space_stats would violate the
  /// quiescent-only contract; the cache is the race-free stand-in), plus
  /// per-tenant rows for dwrr backings. Valid JSON — a monitoring script
  /// can json.load it straight off the socket.
  std::string stat_json() const {
    bool ready = map_ready_.load(std::memory_order_acquire);
    std::ostringstream os;
    os << "{\"schema\":\"wfq-broker-stat-v1\",\"backing\":\"" << cfg_.backing
       << "\"";
    if (raft_) {
      // Raft section: how E15b's prober (and any monitor) finds the leader
      // and watches commit progress. Followers answer STAT too — a stat
      // probe must work exactly when ENQ/DEQ would be redirected.
      os << ",\"raft\":{\"node\":" << raft_->node_id()
         << ",\"cluster\":" << raft_->cluster_size()
         << ",\"term\":" << raft_->term()
         << ",\"role\":\"" << (raft_->is_leader() ? "leader" : "follower")
         << "\",\"leader\":" << raft_->leader_hint()
         << ",\"commit\":" << raft_->commit_index()
         << ",\"applied\":" << raft_->last_applied()
         << ",\"ready\":" << (ready ? "true" : "false") << "}";
    }
    os << ",\"shards\":[";
    for (int s = 0; s < shards(); ++s) {
      const ShardState& st = shard_state_[static_cast<size_t>(s)];
      ShardCounters c = counters(s);
      if (s > 0) os << ",";
      os << "{\"shard\":" << s << ",\"enq\":" << c.enq
         << ",\"deq_hit\":" << c.deq_hit << ",\"deq_empty\":" << c.deq_empty
         << ",\"ping\":" << c.ping << ",\"stat\":" << c.stat
         << ",\"bad\":" << c.bad;
      if (st.space_known.load(std::memory_order_relaxed)) {
        os << ",\"live_blocks\":"
           << st.space_live.load(std::memory_order_relaxed)
           << ",\"ebr_retired\":"
           << st.space_retired.load(std::memory_order_relaxed);
      }
      std::vector<TenantRow> tenants =
          ready ? map_->tenant_rows(s) : std::vector<TenantRow>{};
      if (!tenants.empty()) {
        os << ",\"tenants\":[";
        for (size_t t = 0; t < tenants.size(); ++t) {
          if (t > 0) os << ",";
          os << "{\"tenant\":" << tenants[t].tenant
             << ",\"weight\":" << tenants[t].weight
             << ",\"enqueued\":" << tenants[t].enqueued
             << ",\"serviced\":" << tenants[t].serviced << "}";
        }
        os << "]";
      }
      os << "}";
    }
    os << "]}";
    return os.str();
  }

 private:
  /// Per-group backlog cap: a full group blocks the I/O thread (kernel
  /// socket buffers then throttle the clients) instead of buffering
  /// without bound. 2^20 items ~ tens of MB worst case.
  static constexpr size_t kMaxBacklog = size_t{1} << 20;

  struct WorkItem {
    uint64_t conn = 0;
    int shard = 0;
    net::Frame frame;
  };

  struct Group {
    std::mutex m;
    std::condition_variable cv;       // servicer waits: work or closed
    std::condition_variable cv_room;  // I/O thread waits: below cap
    std::deque<WorkItem> items;
    bool closed = false;
    std::thread thread;
  };

  struct ShardState {
    std::atomic<uint64_t> enq{0}, deq_hit{0}, deq_empty{0};
    std::atomic<uint64_t> ping{0}, stat{0}, bad{0};
    // Space cache, refreshed by the owning servicer (see stat_json).
    std::atomic<uint64_t> space_live{0}, space_retired{0};
    std::atomic<bool> space_known{false};
  };

  /// I/O-thread callback: bucket the burst by group, one append per group.
  /// Raft-band frames peel off to the raft service here — peer traffic
  /// never enters the work queues, so a backlogged servicer cannot delay a
  /// heartbeat.
  void route(uint64_t conn, std::vector<net::Frame>& batch) {
    route_scratch_.assign(static_cast<size_t>(cfg_.groups), {});
    for (net::Frame& f : batch) {
      if (raft_ && f.op >= net::Opcode::raft_vote_req &&
          f.op <= net::Opcode::raft_append_resp) {
        raft_->deliver_frame(f);
        continue;
      }
      // Same formula as ShardMap::shard_of, computable before the
      // replicated map exists (cluster replicas must route — and reject —
      // requests while still waiting for the config entry).
      int shard = static_cast<int>(mix_key(f.key) %
                                   static_cast<uint64_t>(cfg_.shards));
      route_scratch_[static_cast<size_t>(shard % cfg_.groups)].push_back(
          WorkItem{conn, shard, std::move(f)});
    }
    for (int g = 0; g < cfg_.groups; ++g) {
      std::vector<WorkItem>& bucket = route_scratch_[static_cast<size_t>(g)];
      if (bucket.empty()) continue;
      Group& grp = groups_[static_cast<size_t>(g)];
      {
        std::unique_lock<std::mutex> lk(grp.m);
        grp.cv_room.wait(lk, [&] {
          return grp.items.size() < kMaxBacklog || grp.closed;
        });
        for (WorkItem& w : bucket) grp.items.push_back(std::move(w));
      }
      grp.cv.notify_one();
    }
  }

  /// Binds this servicer's shards once the map exists. Single-node brokers
  /// bind immediately (the pre-cluster behavior); cluster replicas bind on
  /// the first batch that arrives after the replicated config applied.
  bool bind_if_ready(int g, bool& bound) {
    if (bound) return true;
    if (!map_ready_.load(std::memory_order_acquire)) return false;
    for (int s = g; s < cfg_.shards; s += cfg_.groups) map_->bind_servicer(s);
    bound = true;
    return true;
  }

  void servicer_main(int g) {
    if (cfg_.pin_threads) platform::pin_thread_to_core(1 + g);
    bool bound = false;
    bind_if_ready(g, bound);
    Group& grp = groups_[static_cast<size_t>(g)];
    std::deque<WorkItem> local;
    std::unordered_map<uint64_t, std::string> out;
    uint64_t ops_since_space = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(grp.m);
        grp.cv.wait(lk, [&] { return !grp.items.empty() || grp.closed; });
        if (grp.items.empty() && grp.closed) break;
        local.swap(grp.items);
      }
      grp.cv_room.notify_all();
      out.clear();
      bool ready = bind_if_ready(g, bound);
      // A STAT in the batch gets fresh numbers for this group's shards:
      // refreshing here is the single-toucher reading its own objects, the
      // exact quiescent case the space_stats contract allows. Other groups'
      // shards report their last periodic snapshot.
      if (ready)
        for (const WorkItem& w : local)
          if (w.frame.op == net::Opcode::stat) {
            refresh_space(g);
            break;
          }
      for (WorkItem& w : local) handle(w, out[w.conn], ready);
      ops_since_space += local.size();
      local.clear();
      // One send per connection per batch: the whole burst of responses
      // is one buffer, one (usual-case) write syscall from this thread.
      for (auto& [conn, buf] : out) loop_->send(conn, std::move(buf));
      if (ready && ops_since_space >= 1024) {
        ops_since_space = 0;
        refresh_space(g);
      }
    }
    if (bound) refresh_space(g);  // drain complete: final snapshot behind
  }

  void refresh_space(int g) {
    for (int s = g; s < cfg_.shards; s += cfg_.groups) {
      api::SpaceStats sp = map_->space_stats(s);
      ShardState& st = shard_state_[static_cast<size_t>(s)];
      st.space_live.store(sp.live_blocks, std::memory_order_relaxed);
      st.space_retired.store(sp.ebr_retired, std::memory_order_relaxed);
      st.space_known.store(sp.known, std::memory_order_relaxed);
    }
  }

  /// Leader/readiness gate for data-path requests in cluster mode:
  /// followers (and replicas still waiting for the replicated config)
  /// answer ERR_NOT_LEADER carrying the best leader hint, and the client
  /// redirects (docs/PROTOCOL.md). Single-node brokers never take it.
  bool not_leader(bool ready) const {
    return raft_ && (!ready || !raft_->is_leader());
  }

  void fill_not_leader(net::Frame& resp) const {
    resp.op = net::Opcode::err_not_leader;
    int hint = raft_ ? raft_->leader_hint() : -1;
    resp.payload = net::encode_u32(
        hint >= 0 ? static_cast<uint32_t>(hint) : 0xffffffffu);
  }

  /// Executes one request on its shard, appends the encoded response.
  /// `ready` = this servicer has a bound shard map (always true outside
  /// cluster mode).
  void handle(WorkItem& w, std::string& out, bool ready) {
    ShardState& st = shard_state_[static_cast<size_t>(w.shard)];
    net::Frame resp;
    resp.key = w.frame.key;
    resp.flags = w.frame.flags;
    switch (w.frame.op) {
      case net::Opcode::enq: {
        if (not_leader(ready)) {
          fill_not_leader(resp);
          break;
        }
        uint64_t v = 0;
        if (!net::decode_value(w.frame.payload, v)) {
          st.bad.fetch_add(1, std::memory_order_relaxed);
          resp.op = net::Opcode::err;
          resp.payload = "ENQ payload must be exactly 8 bytes";
          break;
        }
        map_->enqueue(w.shard, w.frame.key, v);
        st.enq.fetch_add(1, std::memory_order_relaxed);
        resp.op = net::Opcode::enq_ok;
        break;
      }
      case net::Opcode::deq: {
        if (not_leader(ready)) {
          fill_not_leader(resp);
          break;
        }
        int tenant = -1;
        std::optional<uint64_t> got = map_->dequeue(w.shard, tenant);
        if (got) {
          st.deq_hit.fetch_add(1, std::memory_order_relaxed);
          resp.op = net::Opcode::deq_ok;
          resp.payload = net::encode_value(*got);
          // dwrr backings report which tenant the scheduler served; the
          // 16-bit flags field carries it (tenant counts are <= 4096).
          if (tenant >= 0) resp.flags = static_cast<uint16_t>(tenant);
        } else {
          st.deq_empty.fetch_add(1, std::memory_order_relaxed);
          resp.op = net::Opcode::deq_empty;
        }
        break;
      }
      case net::Opcode::stat:
        st.stat.fetch_add(1, std::memory_order_relaxed);
        resp.op = net::Opcode::stat_ok;
        resp.payload = stat_json();
        break;
      case net::Opcode::ping:
        st.ping.fetch_add(1, std::memory_order_relaxed);
        resp.op = net::Opcode::pong;
        resp.payload = std::move(w.frame.payload);
        break;
      case net::Opcode::setw: {
        uint32_t tenant = 0, weight = 0;
        if (!net::decode_u32_pair(w.frame.payload, tenant, weight)) {
          st.bad.fetch_add(1, std::memory_order_relaxed);
          resp.op = net::Opcode::err;
          resp.payload = "SETW payload must be 8 bytes: u32 tenant, u32 weight";
          break;
        }
        if (not_leader(ready)) {
          fill_not_leader(resp);
          break;
        }
        if (raft_) {
          // Replicate through the log; the response is deferred until the
          // entry APPLIES (on_raft_apply), so SETW_OK means "committed and
          // visible on this leader", not "received". pending_mu_ is held
          // across propose-and-register: the raft thread cannot deliver the
          // apply until it can take pending_mu_, so registration wins even
          // if the entry commits instantly.
          std::lock_guard<std::mutex> lk(pending_mu_);
          uint64_t idx = raft_->propose("w|" + std::to_string(tenant) + "|" +
                                        std::to_string(weight));
          if (idx == 0) {
            fill_not_leader(resp);
            break;
          }
          pending_setw_[idx] = PendingSetw{w.conn, w.frame.key, w.frame.flags};
          return;  // no response yet
        }
        if (map_->set_weight_all(static_cast<int>(tenant), weight)) {
          resp.op = net::Opcode::setw_ok;
        } else {
          st.bad.fetch_add(1, std::memory_order_relaxed);
          resp.op = net::Opcode::err;
          resp.payload = "SETW rejected: dwrr backing required, tenant in "
                         "range, weight >= 1";
        }
        break;
      }
      default:
        // Response-band opcodes are valid frames but not valid REQUESTS.
        st.bad.fetch_add(1, std::memory_order_relaxed);
        resp.op = net::Opcode::err;
        resp.payload = std::string("unexpected request opcode ") +
                       net::opcode_name(w.frame.op);
        break;
    }
    net::encode_frame(resp, out);
  }

  /// Raft apply (raft thread, index order, exactly once per committed
  /// entry). Two command shapes, both replica-deterministic:
  ///   "cfg|<shards>|<backing>" — the cluster topology. The FIRST one to
  ///     apply builds the shard map; every replica therefore serves the
  ///     same topology no matter whose CLI won the race. A replica whose
  ///     own CLI flags disagree with the committed config refuses to serve
  ///     (loud stderr, stays not-ready) rather than silently diverging.
  ///     Later duplicates (bootstrap re-proposals) are ignored.
  ///   "w|<tenant>|<weight>" — DWRR weight update, applied to all shards.
  void on_raft_apply(uint64_t index, const std::string& cmd) {
    bool ok = false;
    if (cmd.rfind("cfg|", 0) == 0) {
      std::string rest = cmd.substr(4);
      size_t bar = rest.find('|');
      if (bar != std::string::npos) {
        int shards = std::atoi(rest.substr(0, bar).c_str());
        std::string backing = rest.substr(bar + 1);
        if (map_ready_.load(std::memory_order_acquire)) {
          ok = true;  // duplicate bootstrap proposal
        } else if (shards != cfg_.shards || backing != cfg_.backing) {
          std::fprintf(stderr,
                       "broker: replicated config (%d shards, %s) disagrees "
                       "with CLI (%d shards, %s); this replica will NOT "
                       "serve — fix the flags and restart\n",
                       shards, backing.c_str(), cfg_.shards,
                       cfg_.backing.c_str());
        } else {
          map_ = std::make_unique<ShardMap>(cfg_.shards, cfg_.backing,
                                            cfg_.expected_ops);
          map_ready_.store(true, std::memory_order_release);
          ok = true;
        }
      }
    } else if (cmd.rfind("w|", 0) == 0) {
      std::string rest = cmd.substr(2);
      size_t bar = rest.find('|');
      if (bar != std::string::npos &&
          map_ready_.load(std::memory_order_acquire)) {
        int tenant = std::atoi(rest.substr(0, bar).c_str());
        uint32_t weight = static_cast<uint32_t>(
            std::strtoul(rest.substr(bar + 1).c_str(), nullptr, 10));
        ok = map_->set_weight_all(tenant, weight);
      }
    }
    // If this entry was a SETW this replica proposed, answer the client now
    // — SETW_OK strictly after commit+apply.
    std::optional<PendingSetw> p;
    {
      std::lock_guard<std::mutex> lk(pending_mu_);
      auto it = pending_setw_.find(index);
      if (it != pending_setw_.end()) {
        p = it->second;
        pending_setw_.erase(it);
      }
    }
    if (p) {
      net::Frame resp;
      resp.key = p->key;
      resp.flags = p->flags;
      if (ok) {
        resp.op = net::Opcode::setw_ok;
      } else {
        resp.op = net::Opcode::err;
        resp.payload = "SETW rejected: dwrr backing required, tenant in "
                       "range, weight >= 1";
      }
      std::string buf;
      net::encode_frame(resp, buf);
      loop_->send(p->conn, std::move(buf));
    }
  }

  /// Role transitions (raft thread). On stepping down, fail every pending
  /// SETW with ERR_NOT_LEADER — the entry may still commit under the new
  /// leader, but this replica can no longer promise to report it, and the
  /// weight update is idempotent for a retrying client.
  void on_raft_role(bool leader) {
    if (leader) return;
    std::unordered_map<uint64_t, PendingSetw> orphans;
    {
      std::lock_guard<std::mutex> lk(pending_mu_);
      orphans.swap(pending_setw_);
    }
    for (auto& [idx, p] : orphans) {
      net::Frame resp;
      resp.key = p.key;
      resp.flags = p.flags;
      fill_not_leader(resp);
      std::string buf;
      net::encode_frame(resp, buf);
      loop_->send(p.conn, std::move(buf));
    }
  }

  struct PendingSetw {
    uint64_t conn = 0;
    uint32_t key = 0;
    uint16_t flags = 0;
  };

  BrokerConfig cfg_;
  std::unique_ptr<ShardMap> map_;  // cluster mode: built at config apply
  std::atomic<bool> map_ready_{false};
  std::deque<ShardState> shard_state_;
  std::deque<Group> groups_;
  std::unique_ptr<net::EventLoop> loop_;
  std::unique_ptr<raft::RaftService> raft_;  // null outside cluster mode
  std::mutex pending_mu_;
  std::unordered_map<uint64_t, PendingSetw> pending_setw_;  // log idx -> conn
  std::thread io_thread_;
  std::vector<std::vector<WorkItem>> route_scratch_;  // I/O thread only
  uint16_t tcp_port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopped_{false};
};

}  // namespace wfq::broker
