// Broker daemon core (ISSUE 8 tentpole): owns a ShardMap of registry-built
// backings, an event-loop I/O thread, and one servicer thread per shard
// group. Runs equally as the `broker` binary (broker_main.cpp wires signals
// to stop()) and in-process (the E14 experiments and the end-to-end CTest
// construct a Broker on a temp UDS path directly — same code path, real
// sockets).
//
// Data flow: the I/O thread decodes each connection's read burst into a
// frame batch (net::EventLoop), buckets it by shard group, and pushes ONE
// work-queue append per group per burst. Each servicer drains its group's
// queue in batches, performs the queue/service ops on the shards it owns,
// encodes all responses for a connection into one buffer, and send()s
// directly from its own thread — response syscalls scale with servicers
// instead of funneling through the I/O thread.
//
// Shutdown (stop(), also the SIGINT/SIGTERM path): stop accepting and
// reading, then drain — every request already read is processed and its
// response flushed — then join and leave the final counters readable
// (report()). A group work queue that hits its backlog cap blocks the I/O
// thread (backpressure through the kernel socket buffers), never drops.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "broker/shard_map.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "platform/affinity.hpp"

namespace wfq::broker {

struct BrokerConfig {
  int shards = 1;
  /// Servicer threads; 0 = one per shard. Shard s belongs to group
  /// s % groups, so shards spread round-robin over servicers.
  int groups = 0;
  /// Backing key per shard: any make_queue or make_service spelling.
  std::string backing = "ubq";
  /// Listeners: either or both. An empty uds_path and tcp_port < 0 is a
  /// configuration error (a broker nobody can reach).
  std::string uds_path;
  int tcp_port = -1;  // -1 = none, 0 = kernel-picked (read back via tcp_port())
  /// Pin servicer threads to cores (platform::pin_thread_to_core; no-op
  /// where unsupported).
  bool pin_threads = false;
  /// Sizes fixed-segment backings (api::sized_config contract).
  int64_t expected_ops = int64_t{1} << 18;
};

class Broker {
 public:
  struct ShardCounters {
    uint64_t enq = 0;
    uint64_t deq_hit = 0;
    uint64_t deq_empty = 0;
    uint64_t ping = 0;
    uint64_t stat = 0;
    uint64_t bad = 0;
  };

  explicit Broker(BrokerConfig cfg)
      : cfg_(std::move(cfg)),
        map_(cfg_.shards, cfg_.backing, cfg_.expected_ops) {
    if (cfg_.uds_path.empty() && cfg_.tcp_port < 0)
      throw std::invalid_argument(
          "broker::Broker: need a UDS path and/or a TCP port to listen on");
    if (cfg_.groups <= 0 || cfg_.groups > cfg_.shards)
      cfg_.groups = cfg_.shards;
    for (int s = 0; s < cfg_.shards; ++s) shard_state_.emplace_back();
    for (int g = 0; g < cfg_.groups; ++g) groups_.emplace_back();
  }

  ~Broker() { stop(); }
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Binds listeners and spawns the servicer + I/O threads. Throws on bind
  /// failure (daemon has nothing to fall back to).
  void start() {
    net::EventLoop::Callbacks cbs;
    cbs.on_batch = [this](uint64_t conn, std::vector<net::Frame>& batch) {
      route(conn, batch);
    };
    loop_ = std::make_unique<net::EventLoop>(std::move(cbs));
    if (!cfg_.uds_path.empty())
      loop_->add_listener(net::listen_uds(cfg_.uds_path));
    if (cfg_.tcp_port >= 0) {
      net::FdHandle fd = net::listen_tcp(static_cast<uint16_t>(cfg_.tcp_port));
      tcp_port_ = net::bound_tcp_port(fd.get());
      loop_->add_listener(std::move(fd));
    }
    for (int g = 0; g < cfg_.groups; ++g)
      groups_[static_cast<size_t>(g)].thread =
          std::thread([this, g] { servicer_main(g); });
    io_thread_ = std::thread([this] {
      if (cfg_.pin_threads) platform::pin_thread_to_core(0);
      loop_->run();
    });
    started_ = true;
  }

  /// Clean shutdown: stop reading, drain every already-read request through
  /// its servicer, flush responses, join. Idempotent; also the dtor path.
  void stop() {
    if (!started_ || stopped_.exchange(true)) return;
    loop_->stop();
    io_thread_.join();
    for (Group& g : groups_) {
      {
        std::lock_guard<std::mutex> lk(g.m);
        g.closed = true;
      }
      g.cv.notify_all();
    }
    for (Group& g : groups_) g.thread.join();
    // Every response is queued by now (servicers joined): flush the last
    // bytes out and close, so clients waiting on responses see EOF rather
    // than a silent socket.
    loop_->shutdown_flush_and_close();
    if (!cfg_.uds_path.empty()) ::unlink(cfg_.uds_path.c_str());
  }

  /// TCP port actually bound (resolves tcp_port = 0); 0 if no TCP listener.
  uint16_t tcp_port() const { return tcp_port_; }

  int shards() const { return map_.shards(); }
  int groups() const { return cfg_.groups; }
  const std::string& backing() const { return map_.backing(); }

  ShardCounters counters(int shard) const {
    const ShardState& s = shard_state_[static_cast<size_t>(shard)];
    return {s.enq.load(std::memory_order_relaxed),
            s.deq_hit.load(std::memory_order_relaxed),
            s.deq_empty.load(std::memory_order_relaxed),
            s.ping.load(std::memory_order_relaxed),
            s.stat.load(std::memory_order_relaxed),
            s.bad.load(std::memory_order_relaxed)};
  }

  ShardCounters totals() const {
    ShardCounters t;
    for (int s = 0; s < shards(); ++s) {
      ShardCounters c = counters(s);
      t.enq += c.enq;
      t.deq_hit += c.deq_hit;
      t.deq_empty += c.deq_empty;
      t.ping += c.ping;
      t.stat += c.stat;
      t.bad += c.bad;
    }
    return t;
  }

  /// The STAT payload and the `broker --report` body: per-shard op counters
  /// plus the space snapshot each servicer refreshes for its own shards
  /// (live read of another shard's space_stats would violate the
  /// quiescent-only contract; the cache is the race-free stand-in), plus
  /// per-tenant rows for dwrr backings. Valid JSON — a monitoring script
  /// can json.load it straight off the socket.
  std::string stat_json() const {
    std::ostringstream os;
    os << "{\"schema\":\"wfq-broker-stat-v1\",\"backing\":\"" << map_.backing()
       << "\",\"shards\":[";
    for (int s = 0; s < shards(); ++s) {
      const ShardState& st = shard_state_[static_cast<size_t>(s)];
      ShardCounters c = counters(s);
      if (s > 0) os << ",";
      os << "{\"shard\":" << s << ",\"enq\":" << c.enq
         << ",\"deq_hit\":" << c.deq_hit << ",\"deq_empty\":" << c.deq_empty
         << ",\"ping\":" << c.ping << ",\"stat\":" << c.stat
         << ",\"bad\":" << c.bad;
      if (st.space_known.load(std::memory_order_relaxed)) {
        os << ",\"live_blocks\":"
           << st.space_live.load(std::memory_order_relaxed)
           << ",\"ebr_retired\":"
           << st.space_retired.load(std::memory_order_relaxed);
      }
      std::vector<TenantRow> tenants = map_.tenant_rows(s);
      if (!tenants.empty()) {
        os << ",\"tenants\":[";
        for (size_t t = 0; t < tenants.size(); ++t) {
          if (t > 0) os << ",";
          os << "{\"tenant\":" << tenants[t].tenant
             << ",\"weight\":" << tenants[t].weight
             << ",\"enqueued\":" << tenants[t].enqueued
             << ",\"serviced\":" << tenants[t].serviced << "}";
        }
        os << "]";
      }
      os << "}";
    }
    os << "]}";
    return os.str();
  }

 private:
  /// Per-group backlog cap: a full group blocks the I/O thread (kernel
  /// socket buffers then throttle the clients) instead of buffering
  /// without bound. 2^20 items ~ tens of MB worst case.
  static constexpr size_t kMaxBacklog = size_t{1} << 20;

  struct WorkItem {
    uint64_t conn = 0;
    int shard = 0;
    net::Frame frame;
  };

  struct Group {
    std::mutex m;
    std::condition_variable cv;       // servicer waits: work or closed
    std::condition_variable cv_room;  // I/O thread waits: below cap
    std::deque<WorkItem> items;
    bool closed = false;
    std::thread thread;
  };

  struct ShardState {
    std::atomic<uint64_t> enq{0}, deq_hit{0}, deq_empty{0};
    std::atomic<uint64_t> ping{0}, stat{0}, bad{0};
    // Space cache, refreshed by the owning servicer (see stat_json).
    std::atomic<uint64_t> space_live{0}, space_retired{0};
    std::atomic<bool> space_known{false};
  };

  /// I/O-thread callback: bucket the burst by group, one append per group.
  void route(uint64_t conn, std::vector<net::Frame>& batch) {
    route_scratch_.assign(static_cast<size_t>(cfg_.groups), {});
    for (net::Frame& f : batch) {
      int shard = map_.shard_of(f.key);
      route_scratch_[static_cast<size_t>(shard % cfg_.groups)].push_back(
          WorkItem{conn, shard, std::move(f)});
    }
    for (int g = 0; g < cfg_.groups; ++g) {
      std::vector<WorkItem>& bucket = route_scratch_[static_cast<size_t>(g)];
      if (bucket.empty()) continue;
      Group& grp = groups_[static_cast<size_t>(g)];
      {
        std::unique_lock<std::mutex> lk(grp.m);
        grp.cv_room.wait(lk, [&] {
          return grp.items.size() < kMaxBacklog || grp.closed;
        });
        for (WorkItem& w : bucket) grp.items.push_back(std::move(w));
      }
      grp.cv.notify_one();
    }
  }

  void servicer_main(int g) {
    if (cfg_.pin_threads) platform::pin_thread_to_core(1 + g);
    for (int s = g; s < map_.shards(); s += cfg_.groups)
      map_.bind_servicer(s);
    Group& grp = groups_[static_cast<size_t>(g)];
    std::deque<WorkItem> local;
    std::unordered_map<uint64_t, std::string> out;
    uint64_t ops_since_space = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(grp.m);
        grp.cv.wait(lk, [&] { return !grp.items.empty() || grp.closed; });
        if (grp.items.empty() && grp.closed) break;
        local.swap(grp.items);
      }
      grp.cv_room.notify_all();
      out.clear();
      // A STAT in the batch gets fresh numbers for this group's shards:
      // refreshing here is the single-toucher reading its own objects, the
      // exact quiescent case the space_stats contract allows. Other groups'
      // shards report their last periodic snapshot.
      for (const WorkItem& w : local)
        if (w.frame.op == net::Opcode::stat) {
          refresh_space(g);
          break;
        }
      for (WorkItem& w : local) handle(w, out[w.conn]);
      ops_since_space += local.size();
      local.clear();
      // One send per connection per batch: the whole burst of responses
      // is one buffer, one (usual-case) write syscall from this thread.
      for (auto& [conn, buf] : out) loop_->send(conn, std::move(buf));
      if (ops_since_space >= 1024) {
        ops_since_space = 0;
        refresh_space(g);
      }
    }
    refresh_space(g);  // drain complete: leave a final snapshot behind
  }

  void refresh_space(int g) {
    for (int s = g; s < map_.shards(); s += cfg_.groups) {
      api::SpaceStats sp = map_.space_stats(s);
      ShardState& st = shard_state_[static_cast<size_t>(s)];
      st.space_live.store(sp.live_blocks, std::memory_order_relaxed);
      st.space_retired.store(sp.ebr_retired, std::memory_order_relaxed);
      st.space_known.store(sp.known, std::memory_order_relaxed);
    }
  }

  /// Executes one request on its shard, appends the encoded response.
  void handle(WorkItem& w, std::string& out) {
    ShardState& st = shard_state_[static_cast<size_t>(w.shard)];
    net::Frame resp;
    resp.key = w.frame.key;
    resp.flags = w.frame.flags;
    switch (w.frame.op) {
      case net::Opcode::enq: {
        uint64_t v = 0;
        if (!net::decode_value(w.frame.payload, v)) {
          st.bad.fetch_add(1, std::memory_order_relaxed);
          resp.op = net::Opcode::err;
          resp.payload = "ENQ payload must be exactly 8 bytes";
          break;
        }
        map_.enqueue(w.shard, w.frame.key, v);
        st.enq.fetch_add(1, std::memory_order_relaxed);
        resp.op = net::Opcode::enq_ok;
        break;
      }
      case net::Opcode::deq: {
        int tenant = -1;
        std::optional<uint64_t> got = map_.dequeue(w.shard, tenant);
        if (got) {
          st.deq_hit.fetch_add(1, std::memory_order_relaxed);
          resp.op = net::Opcode::deq_ok;
          resp.payload = net::encode_value(*got);
          // dwrr backings report which tenant the scheduler served; the
          // 16-bit flags field carries it (tenant counts are <= 4096).
          if (tenant >= 0) resp.flags = static_cast<uint16_t>(tenant);
        } else {
          st.deq_empty.fetch_add(1, std::memory_order_relaxed);
          resp.op = net::Opcode::deq_empty;
        }
        break;
      }
      case net::Opcode::stat:
        st.stat.fetch_add(1, std::memory_order_relaxed);
        resp.op = net::Opcode::stat_ok;
        resp.payload = stat_json();
        break;
      case net::Opcode::ping:
        st.ping.fetch_add(1, std::memory_order_relaxed);
        resp.op = net::Opcode::pong;
        resp.payload = std::move(w.frame.payload);
        break;
      default:
        // Response-band opcodes are valid frames but not valid REQUESTS.
        st.bad.fetch_add(1, std::memory_order_relaxed);
        resp.op = net::Opcode::err;
        resp.payload = std::string("unexpected request opcode ") +
                       net::opcode_name(w.frame.op);
        break;
    }
    net::encode_frame(resp, out);
  }

  BrokerConfig cfg_;
  ShardMap map_;
  std::deque<ShardState> shard_state_;
  std::deque<Group> groups_;
  std::unique_ptr<net::EventLoop> loop_;
  std::thread io_thread_;
  std::vector<std::vector<WorkItem>> route_scratch_;  // I/O thread only
  uint16_t tcp_port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopped_{false};
};

}  // namespace wfq::broker
