// `loadgen` — the broker's load-generator client binary (ISSUE 8
// tentpole): C connections over UDS or TCP, closed- or open-loop, printing
// throughput and the p50/p99/p999 latency ladder the E14 experiments gate
// on. Thin CLI over broker::run_loadgen — the binary, the experiments, and
// the e2e test all drive the same code path.
#include <iostream>
#include <string>

#include "broker/loadgen.hpp"
#include "stats/qos.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: loadgen (--uds <path> | --tcp <port> | --cluster <csv>) "
        "[options]\n"
        "\n"
        "  --uds <path>      connect over the Unix-domain socket at <path>\n"
        "  --tcp <port>      connect to 127.0.0.1:<port>\n"
        "  --cluster <csv>   replica TCP ports in node-id order; requests\n"
        "                    follow ERR_NOT_LEADER redirects and ride out\n"
        "                    failovers (closed loop, window 1)\n"
        "  --timeout <ms>    cluster mode per-response wait (default 500)\n"
        "  --conns <c>       concurrent connections (default 1)\n"
        "  --msgs <n>        requests per connection (default 1000)\n"
        "  --mode <m>        closed | open (default closed)\n"
        "  --window <w>      max in-flight requests per connection\n"
        "                    (default 1; open loop uses it as a safety cap)\n"
        "  --rate <r>        open loop: arrivals/second per connection\n"
        "  --enq-only        send only ENQ frames (default: ENQ/DEQ pairs)\n"
        "  --key-base <k>    routing key of connection c is k + c\n"
        "  --pin             pin connection threads to cores\n"
        "  --pin-offset <o>  first core index for --pin (default 0)\n"
        "  --help, -h        this text\n";
}

int64_t parse_int(const std::string& s, const char* flag) {
  bool ok = !s.empty();
  for (char ch : s)
    if (ch < '0' || ch > '9') ok = false;
  if (!ok)
    throw std::invalid_argument(std::string("bad integer \"") + s +
                                "\" for " + flag);
  return std::stoll(s);
}

std::vector<uint16_t> parse_ports_csv(const std::string& s) {
  std::vector<uint16_t> ports;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    std::string tok =
        s.substr(pos, comma == std::string::npos ? std::string::npos
                                                 : comma - pos);
    int64_t p = parse_int(tok, "--cluster");
    if (p < 1 || p > 65535)
      throw std::invalid_argument("--cluster ports must be in [1, 65535]");
    ports.push_back(static_cast<uint16_t>(p));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return ports;
}

}  // namespace

int main(int argc, char** argv) {
  wfq::broker::LoadgenConfig cfg;
  bool have_target = false;
  try {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      auto need = [&](const char* flag) -> std::string {
        if (i + 1 >= argc)
          throw std::invalid_argument(std::string("missing value for ") +
                                      flag);
        return argv[++i];
      };
      if (a == "--uds") {
        cfg.uds_path = need("--uds");
        have_target = true;
      } else if (a == "--tcp") {
        int64_t p = parse_int(need("--tcp"), "--tcp");
        if (p < 1 || p > 65535)
          throw std::invalid_argument("--tcp port must be in [1, 65535]");
        cfg.tcp_port = static_cast<uint16_t>(p);
        have_target = true;
      } else if (a == "--cluster") {
        cfg.cluster_ports = parse_ports_csv(need("--cluster"));
        have_target = true;
      } else if (a == "--timeout") {
        int64_t t = parse_int(need("--timeout"), "--timeout");
        if (t < 1) throw std::invalid_argument("--timeout must be >= 1");
        cfg.read_timeout_ms = static_cast<uint64_t>(t);
      } else if (a == "--conns") {
        cfg.connections =
            static_cast<int>(parse_int(need("--conns"), "--conns"));
        if (cfg.connections < 1)
          throw std::invalid_argument("--conns must be >= 1");
      } else if (a == "--msgs") {
        cfg.msgs_per_conn = parse_int(need("--msgs"), "--msgs");
        if (cfg.msgs_per_conn < 1)
          throw std::invalid_argument("--msgs must be >= 1");
      } else if (a == "--mode") {
        std::string m = need("--mode");
        if (m == "closed") {
          cfg.mode = wfq::broker::LoadgenConfig::Mode::closed;
        } else if (m == "open") {
          cfg.mode = wfq::broker::LoadgenConfig::Mode::open;
        } else {
          throw std::invalid_argument("--mode must be closed or open");
        }
      } else if (a == "--window") {
        cfg.window = static_cast<int>(parse_int(need("--window"), "--window"));
        if (cfg.window < 1)
          throw std::invalid_argument("--window must be >= 1");
      } else if (a == "--rate") {
        cfg.rate_per_conn =
            static_cast<double>(parse_int(need("--rate"), "--rate"));
      } else if (a == "--enq-only") {
        cfg.pairs = false;
      } else if (a == "--key-base") {
        cfg.key_base =
            static_cast<uint32_t>(parse_int(need("--key-base"), "--key-base"));
      } else if (a == "--pin") {
        cfg.pin_threads = true;
      } else if (a == "--pin-offset") {
        cfg.pin_offset =
            static_cast<int>(parse_int(need("--pin-offset"), "--pin-offset"));
      } else if (a == "--help" || a == "-h") {
        usage(std::cout);
        return 0;
      } else {
        throw std::invalid_argument("unknown flag \"" + a + "\"");
      }
    }
    if (!have_target)
      throw std::invalid_argument("need --uds, --tcp, or --cluster");
    if (!cfg.cluster_ports.empty() &&
        cfg.mode == wfq::broker::LoadgenConfig::Mode::open)
      throw std::invalid_argument("--cluster is closed-loop only");
    if (cfg.mode == wfq::broker::LoadgenConfig::Mode::open &&
        cfg.rate_per_conn <= 0)
      throw std::invalid_argument("open loop needs --rate > 0");
  } catch (const std::exception& ex) {
    std::cerr << "loadgen: " << ex.what() << "\n\n";
    usage(std::cerr);
    return 2;
  }

  wfq::broker::LoadgenResult r = wfq::broker::run_loadgen(cfg);
  if (r.connect_failed) {
    std::cerr << "loadgen: one or more connections failed (is the broker "
                 "running?)\n";
  }
  const char* lat_kind =
      cfg.mode == wfq::broker::LoadgenConfig::Mode::closed ? "rtt" : "sojourn";
  std::cout << "loadgen: sent=" << r.sent << " acked=" << r.acked
            << " errors=" << r.errors << " elapsed_s=" << r.elapsed_s
            << " msgs_per_s=" << r.msgs_per_s;
  if (!cfg.cluster_ports.empty()) std::cout << " redirects=" << r.redirects;
  std::cout << "\n";
  std::cout << "loadgen: " << lat_kind
            << "_p50_us=" << wfq::stats::percentile(r.latencies_us, 50)
            << " p99_us=" << wfq::stats::percentile(r.latencies_us, 99)
            << " p999_us=" << wfq::stats::percentile(r.latencies_us, 99.9)
            << "\n";
  return r.connect_failed ? 1 : 0;
}
