// Load-generator client for the broker (ISSUE 8 tentpole): C connections
// over UDS or TCP, closed-loop (windowed request/response) or open-loop
// (paced arrivals) modes, per-request latency recording. Used three ways:
// the `loadgen` binary (loadgen_main.cpp), the E14 experiment family, and
// the broker end-to-end CTest — all through run_loadgen on real sockets.
//
// Each connection owns ONE routing key (key_base + index). One key lands on
// one shard and one servicer, so a connection's responses arrive in request
// order end-to-end and a FIFO deque of send timestamps matches request to
// response without sequence numbers (values carry a per-connection sequence
// anyway, which is what the e2e test checks FIFO with).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "platform/affinity.hpp"

namespace wfq::broker {

struct LoadgenConfig {
  /// Transport: UDS when uds_path is nonempty, else TCP to 127.0.0.1:port.
  std::string uds_path;
  uint16_t tcp_port = 0;

  int connections = 1;
  /// Requests per connection (an ENQ/DEQ pair counts as 2).
  int64_t msgs_per_conn = 1000;

  enum class Mode { closed, open };
  Mode mode = Mode::closed;
  /// Max outstanding requests per connection. Closed-loop window 1 is the
  /// strict one-in-flight client; open loop uses it as a safety cap so a
  /// stalled broker cannot make a client buffer without bound.
  int window = 1;
  /// Open loop only: per-connection arrival rate in requests/second
  /// (required > 0 in open mode; closed loop ignores it).
  double rate_per_conn = 0;

  /// true: alternate ENQ, DEQ (steady queue depth — throughput workload).
  /// false: ENQ only (fills the shard; the prefill phase E14c uses).
  bool pairs = true;

  /// Connection c routes with key_base + c.
  uint32_t key_base = 0;

  /// Pin connection threads to cores starting at pin_offset (best-effort).
  bool pin_threads = false;
  int pin_offset = 0;

  // --- cluster mode (ISSUE 10) --------------------------------------------
  /// Non-empty: target an N-replica raft group instead of a single broker
  /// (uds_path/tcp_port are ignored). Entry i is replica i's TCP port. Each
  /// connection becomes a ClusterClient: strict one-in-flight, following
  /// ERR_NOT_LEADER hints and riding out failovers by redirect-and-retry.
  /// Closed-loop only (window forced to 1 — a redirected pipeline has no
  /// well-defined response order).
  std::vector<uint16_t> cluster_ports;
  uint64_t connect_timeout_ms = 200;  // per connect attempt
  uint64_t read_timeout_ms = 500;     // per response wait
  uint64_t give_up_ms = 15000;        // total budget for one request
};

struct LoadgenResult {
  uint64_t sent = 0;
  uint64_t acked = 0;   // responses received (any kind)
  uint64_t errors = 0;  // ERR responses
  uint64_t redirects = 0;  // ERR_NOT_LEADER hops (cluster mode)
  double elapsed_s = 0;
  double msgs_per_s = 0;  // acked / elapsed
  /// One entry per response, microseconds. Closed loop: request RTT.
  /// Open loop: sojourn from SCHEDULED send time (queue delay included).
  std::vector<double> latencies_us;
  bool connect_failed = false;
};

/// Leader-following client for a broker replica group (ISSUE 10): one
/// request in flight, one response expected. On ERR_NOT_LEADER it hops to
/// the hinted replica; on connect failure, response timeout, or EOF (the
/// leader was SIGKILLed mid-request) it drops the connection and tries the
/// next replica — so a request outlives a failover as long as SOME leader
/// emerges within give_up_ms. Retry semantics: a request that timed out may
/// still have executed on the dying leader, so data ops are retried
/// at-least-once; only the replicated metadata ops (SETW) are idempotent by
/// design. Used by loadgen's cluster mode, the E15 probers, and the cluster
/// e2e test.
class ClusterClient {
 public:
  struct Options {
    std::vector<uint16_t> ports;  // replica TCP ports, node-id order
    uint64_t connect_timeout_ms = 200;
    uint64_t read_timeout_ms = 500;
    uint64_t give_up_ms = 15000;
  };

  explicit ClusterClient(Options opts) : opts_(std::move(opts)) {}

  /// One request/response round trip, redirecting as needed. Returns the
  /// terminal response (never ERR_NOT_LEADER), or std::nullopt when no
  /// replica answered within give_up_ms.
  std::optional<net::Frame> request(const net::Frame& req) {
    auto start = std::chrono::steady_clock::now();
    auto expired = [&] {
      return std::chrono::duration_cast<std::chrono::milliseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count() >= static_cast<int64_t>(opts_.give_up_ms);
    };
    std::string wire;
    net::encode_frame(req, wire);
    while (!expired()) {
      if (!fd_.valid() && !connect_current()) {
        advance(-1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      if (!net::write_all(fd_.get(), wire)) {
        drop_and_advance(-1);
        continue;
      }
      std::optional<net::Frame> resp = read_one();
      if (!resp) {
        drop_and_advance(-1);
        continue;
      }
      if (resp->op == net::Opcode::err_not_leader) {
        ++redirects_;
        uint32_t hint = 0xffffffffu;
        net::decode_u32(resp->payload, hint);
        int next = (hint != 0xffffffffu &&
                    hint < opts_.ports.size())
                       ? static_cast<int>(hint)
                       : -1;
        // The follower connection stays healthy; only switch targets.
        if (next != current_) drop_and_advance(next);
        else std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      return resp;
    }
    return std::nullopt;
  }

  uint64_t redirects() const { return redirects_; }
  int current() const { return current_; }

 private:
  bool connect_current() {
    fd_ = net::connect_tcp_timeout(
        opts_.ports[static_cast<size_t>(current_)], opts_.connect_timeout_ms);
    if (!fd_.valid()) return false;
    net::set_recv_timeout(fd_.get(), opts_.read_timeout_ms);
    net::set_send_timeout(fd_.get(), opts_.read_timeout_ms);
    dec_ = net::Decoder();
    return true;
  }

  /// Blocks (bounded by SO_RCVTIMEO) for exactly one frame. nullopt on
  /// timeout, EOF, or a poisoned stream.
  std::optional<net::Frame> read_one() {
    net::Frame f;
    if (dec_.next(f) == net::DecodeStatus::ok) return f;  // leftovers
    char buf[65536];
    while (true) {
      ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;  // timeout (EAGAIN), EOF, or error
      dec_.feed(buf, static_cast<size_t>(n));
      net::DecodeStatus st = dec_.next(f);
      if (st == net::DecodeStatus::ok) return f;
      if (st != net::DecodeStatus::need_more) return std::nullopt;
    }
  }

  /// Next target: the hinted replica, or round-robin when no usable hint.
  void advance(int hint) {
    current_ = hint >= 0 ? hint
                         : (current_ + 1) % static_cast<int>(
                                                opts_.ports.size());
  }

  void drop_and_advance(int hint) {
    fd_.reset();
    advance(hint);
  }

  Options opts_;
  net::FdHandle fd_;
  net::Decoder dec_;
  int current_ = 0;
  uint64_t redirects_ = 0;
};

namespace detail {

using Clock = std::chrono::steady_clock;

inline double us_since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

struct ConnStats {
  uint64_t sent = 0, acked = 0, errors = 0, redirects = 0;
  std::vector<double> latencies_us;
  bool failed = false;
};

inline net::FdHandle lg_connect(const LoadgenConfig& cfg) {
  if (!cfg.uds_path.empty()) return net::connect_uds(cfg.uds_path);
  return net::connect_tcp(cfg.tcp_port);
}

/// Drains whatever responses are readable (blocking for at least one),
/// matching them to the FIFO of send timestamps. Returns false on EOF.
inline bool read_responses(int fd, net::Decoder& dec,
                           std::deque<Clock::time_point>& pending,
                           int64_t& outstanding, ConnStats& st) {
  char buf[65536];
  ssize_t n;
  do {
    n = ::read(fd, buf, sizeof(buf));
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return false;
  dec.feed(buf, static_cast<size_t>(n));
  net::Frame f;
  while (dec.next(f) == net::DecodeStatus::ok) {
    if (!pending.empty()) {
      st.latencies_us.push_back(us_since(pending.front(), Clock::now()));
      pending.pop_front();
    }
    --outstanding;
    ++st.acked;
    if (f.op == net::Opcode::err) ++st.errors;
  }
  return true;
}

/// One closed-loop connection: keep up to `window` requests in flight,
/// batch the top-up into one write, block for responses.
inline void closed_loop_conn(const LoadgenConfig& cfg, int index,
                             ConnStats& st) {
  if (cfg.pin_threads)
    platform::pin_thread_to_core(cfg.pin_offset + index);
  net::FdHandle fd = lg_connect(cfg);
  if (!fd.valid()) {
    st.failed = true;
    return;
  }
  const uint32_t key = cfg.key_base + static_cast<uint32_t>(index);
  net::Decoder dec;
  std::deque<Clock::time_point> pending;
  int64_t outstanding = 0;
  uint64_t seq = 0;
  std::string wbuf;
  while (st.acked < static_cast<uint64_t>(cfg.msgs_per_conn)) {
    wbuf.clear();
    while (outstanding < cfg.window &&
           st.sent < static_cast<uint64_t>(cfg.msgs_per_conn)) {
      net::Frame f;
      f.key = key;
      if (cfg.pairs && (st.sent % 2 == 1)) {
        f.op = net::Opcode::deq;
      } else {
        f.op = net::Opcode::enq;
        f.payload = net::encode_value(seq++);
      }
      pending.push_back(Clock::now());
      net::encode_frame(f, wbuf);
      ++st.sent;
      ++outstanding;
    }
    if (!wbuf.empty() && !net::write_all(fd.get(), wbuf)) {
      st.failed = true;
      return;
    }
    if (!read_responses(fd.get(), dec, pending, outstanding, st)) return;
  }
}

/// One cluster-mode connection: strict one-in-flight through a
/// ClusterClient, so every request survives redirects and failovers
/// individually. Latency covers the WHOLE retry journey — a request that
/// rode out a failover reports the failover in its RTT, which is exactly
/// what E15b measures.
inline void cluster_loop_conn(const LoadgenConfig& cfg, int index,
                              ConnStats& st) {
  if (cfg.pin_threads)
    platform::pin_thread_to_core(cfg.pin_offset + index);
  ClusterClient::Options o;
  o.ports = cfg.cluster_ports;
  o.connect_timeout_ms = cfg.connect_timeout_ms;
  o.read_timeout_ms = cfg.read_timeout_ms;
  o.give_up_ms = cfg.give_up_ms;
  ClusterClient cc(o);
  const uint32_t key = cfg.key_base + static_cast<uint32_t>(index);
  uint64_t seq = 0;
  while (st.acked < static_cast<uint64_t>(cfg.msgs_per_conn)) {
    net::Frame f;
    f.key = key;
    if (cfg.pairs && (st.sent % 2 == 1)) {
      f.op = net::Opcode::deq;
    } else {
      f.op = net::Opcode::enq;
      f.payload = net::encode_value(seq++);
    }
    Clock::time_point t0 = Clock::now();
    ++st.sent;
    std::optional<net::Frame> resp = cc.request(f);
    if (!resp) {
      st.failed = true;  // no leader emerged within give_up_ms
      break;
    }
    st.latencies_us.push_back(us_since(t0, Clock::now()));
    ++st.acked;
    if (resp->op == net::Opcode::err) ++st.errors;
  }
  st.redirects = cc.redirects();
}

/// One open-loop connection: a writer paces requests on an absolute
/// schedule (next = start + k/rate — a slow broker does not slow the
/// arrival process, that is the point of open loop), a reader records
/// sojourn times against the SCHEDULED instants. The window cap is the
/// only coupling: at the cap the writer waits, and the workload degrades
/// toward closed-loop rather than buffering without bound.
inline void open_loop_conn(const LoadgenConfig& cfg, int index,
                           ConnStats& st) {
  if (cfg.pin_threads)
    platform::pin_thread_to_core(cfg.pin_offset + index);
  net::FdHandle fd = lg_connect(cfg);
  if (!fd.valid()) {
    st.failed = true;
    return;
  }
  const uint32_t key = cfg.key_base + static_cast<uint32_t>(index);
  std::mutex m;
  std::deque<Clock::time_point> pending;  // scheduled send instants
  std::atomic<int64_t> outstanding{0};
  std::atomic<bool> reader_dead{false};
  std::atomic<uint64_t> acked{0};

  std::thread reader([&] {
    net::Decoder dec;
    char buf[65536];
    net::Frame f;
    while (acked.load(std::memory_order_relaxed) <
           static_cast<uint64_t>(cfg.msgs_per_conn)) {
      ssize_t n;
      do {
        n = ::read(fd.get(), buf, sizeof(buf));
      } while (n < 0 && errno == EINTR);
      if (n <= 0) break;
      dec.feed(buf, static_cast<size_t>(n));
      while (dec.next(f) == net::DecodeStatus::ok) {
        Clock::time_point sched;
        bool have = false;
        {
          std::lock_guard<std::mutex> lk(m);
          if (!pending.empty()) {
            sched = pending.front();
            pending.pop_front();
            have = true;
          }
        }
        if (have) st.latencies_us.push_back(us_since(sched, Clock::now()));
        outstanding.fetch_sub(1, std::memory_order_relaxed);
        acked.fetch_add(1, std::memory_order_relaxed);
        if (f.op == net::Opcode::err) ++st.errors;
      }
    }
    reader_dead.store(true, std::memory_order_release);
  });

  const double interval_s =
      cfg.rate_per_conn > 0 ? 1.0 / cfg.rate_per_conn : 0.0;
  Clock::time_point start = Clock::now();
  uint64_t seq = 0;
  std::string wbuf;
  for (int64_t k = 0; k < cfg.msgs_per_conn; ++k) {
    Clock::time_point sched =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(interval_s *
                                                  static_cast<double>(k)));
    std::this_thread::sleep_until(sched);
    while (outstanding.load(std::memory_order_relaxed) >= cfg.window &&
           !reader_dead.load(std::memory_order_acquire))
      std::this_thread::yield();  // safety cap, see header comment
    if (reader_dead.load(std::memory_order_acquire)) {
      st.failed = true;  // broker went away mid-run
      break;
    }
    net::Frame f;
    f.key = key;
    if (cfg.pairs && (k % 2 == 1)) {
      f.op = net::Opcode::deq;
    } else {
      f.op = net::Opcode::enq;
      f.payload = net::encode_value(seq++);
    }
    {
      std::lock_guard<std::mutex> lk(m);
      pending.push_back(sched);
    }
    wbuf.clear();
    net::encode_frame(f, wbuf);
    if (!net::write_all(fd.get(), wbuf)) {
      st.failed = true;
      break;
    }
    outstanding.fetch_add(1, std::memory_order_relaxed);
    ++st.sent;
  }
  if (st.failed)  // writer aborted: unblock the reader's read() and bail
    ::shutdown(fd.get(), SHUT_RDWR);
  reader.join();
  st.acked = acked.load(std::memory_order_relaxed);
}

}  // namespace detail

/// Runs the configured workload, one thread per connection (open loop adds
/// a reader thread per connection), and merges per-connection stats. The
/// clock covers connect through last response.
inline LoadgenResult run_loadgen(const LoadgenConfig& cfg) {
  std::vector<detail::ConnStats> stats(
      static_cast<size_t>(cfg.connections));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(cfg.connections));
  detail::Clock::time_point t0 = detail::Clock::now();
  for (int c = 0; c < cfg.connections; ++c) {
    detail::ConnStats& st = stats[static_cast<size_t>(c)];
    threads.emplace_back([&cfg, c, &st] {
      if (!cfg.cluster_ports.empty())
        detail::cluster_loop_conn(cfg, c, st);
      else if (cfg.mode == LoadgenConfig::Mode::closed)
        detail::closed_loop_conn(cfg, c, st);
      else
        detail::open_loop_conn(cfg, c, st);
    });
  }
  for (std::thread& t : threads) t.join();
  detail::Clock::time_point t1 = detail::Clock::now();

  LoadgenResult r;
  r.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  for (detail::ConnStats& st : stats) {
    r.sent += st.sent;
    r.acked += st.acked;
    r.errors += st.errors;
    r.redirects += st.redirects;
    r.connect_failed = r.connect_failed || st.failed;
    r.latencies_us.insert(r.latencies_us.end(), st.latencies_us.begin(),
                          st.latencies_us.end());
  }
  r.msgs_per_s =
      r.elapsed_s > 0 ? static_cast<double>(r.acked) / r.elapsed_s : 0;
  return r;
}

}  // namespace wfq::broker
