// Load-generator client for the broker (ISSUE 8 tentpole): C connections
// over UDS or TCP, closed-loop (windowed request/response) or open-loop
// (paced arrivals) modes, per-request latency recording. Used three ways:
// the `loadgen` binary (loadgen_main.cpp), the E14 experiment family, and
// the broker end-to-end CTest — all through run_loadgen on real sockets.
//
// Each connection owns ONE routing key (key_base + index). One key lands on
// one shard and one servicer, so a connection's responses arrive in request
// order end-to-end and a FIFO deque of send timestamps matches request to
// response without sequence numbers (values carry a per-connection sequence
// anyway, which is what the e2e test checks FIFO with).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "platform/affinity.hpp"

namespace wfq::broker {

struct LoadgenConfig {
  /// Transport: UDS when uds_path is nonempty, else TCP to 127.0.0.1:port.
  std::string uds_path;
  uint16_t tcp_port = 0;

  int connections = 1;
  /// Requests per connection (an ENQ/DEQ pair counts as 2).
  int64_t msgs_per_conn = 1000;

  enum class Mode { closed, open };
  Mode mode = Mode::closed;
  /// Max outstanding requests per connection. Closed-loop window 1 is the
  /// strict one-in-flight client; open loop uses it as a safety cap so a
  /// stalled broker cannot make a client buffer without bound.
  int window = 1;
  /// Open loop only: per-connection arrival rate in requests/second
  /// (required > 0 in open mode; closed loop ignores it).
  double rate_per_conn = 0;

  /// true: alternate ENQ, DEQ (steady queue depth — throughput workload).
  /// false: ENQ only (fills the shard; the prefill phase E14c uses).
  bool pairs = true;

  /// Connection c routes with key_base + c.
  uint32_t key_base = 0;

  /// Pin connection threads to cores starting at pin_offset (best-effort).
  bool pin_threads = false;
  int pin_offset = 0;
};

struct LoadgenResult {
  uint64_t sent = 0;
  uint64_t acked = 0;   // responses received (any kind)
  uint64_t errors = 0;  // ERR responses
  double elapsed_s = 0;
  double msgs_per_s = 0;  // acked / elapsed
  /// One entry per response, microseconds. Closed loop: request RTT.
  /// Open loop: sojourn from SCHEDULED send time (queue delay included).
  std::vector<double> latencies_us;
  bool connect_failed = false;
};

namespace detail {

using Clock = std::chrono::steady_clock;

inline double us_since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

struct ConnStats {
  uint64_t sent = 0, acked = 0, errors = 0;
  std::vector<double> latencies_us;
  bool failed = false;
};

inline net::FdHandle lg_connect(const LoadgenConfig& cfg) {
  if (!cfg.uds_path.empty()) return net::connect_uds(cfg.uds_path);
  return net::connect_tcp(cfg.tcp_port);
}

/// Drains whatever responses are readable (blocking for at least one),
/// matching them to the FIFO of send timestamps. Returns false on EOF.
inline bool read_responses(int fd, net::Decoder& dec,
                           std::deque<Clock::time_point>& pending,
                           int64_t& outstanding, ConnStats& st) {
  char buf[65536];
  ssize_t n;
  do {
    n = ::read(fd, buf, sizeof(buf));
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return false;
  dec.feed(buf, static_cast<size_t>(n));
  net::Frame f;
  while (dec.next(f) == net::DecodeStatus::ok) {
    if (!pending.empty()) {
      st.latencies_us.push_back(us_since(pending.front(), Clock::now()));
      pending.pop_front();
    }
    --outstanding;
    ++st.acked;
    if (f.op == net::Opcode::err) ++st.errors;
  }
  return true;
}

/// One closed-loop connection: keep up to `window` requests in flight,
/// batch the top-up into one write, block for responses.
inline void closed_loop_conn(const LoadgenConfig& cfg, int index,
                             ConnStats& st) {
  if (cfg.pin_threads)
    platform::pin_thread_to_core(cfg.pin_offset + index);
  net::FdHandle fd = lg_connect(cfg);
  if (!fd.valid()) {
    st.failed = true;
    return;
  }
  const uint32_t key = cfg.key_base + static_cast<uint32_t>(index);
  net::Decoder dec;
  std::deque<Clock::time_point> pending;
  int64_t outstanding = 0;
  uint64_t seq = 0;
  std::string wbuf;
  while (st.acked < static_cast<uint64_t>(cfg.msgs_per_conn)) {
    wbuf.clear();
    while (outstanding < cfg.window &&
           st.sent < static_cast<uint64_t>(cfg.msgs_per_conn)) {
      net::Frame f;
      f.key = key;
      if (cfg.pairs && (st.sent % 2 == 1)) {
        f.op = net::Opcode::deq;
      } else {
        f.op = net::Opcode::enq;
        f.payload = net::encode_value(seq++);
      }
      pending.push_back(Clock::now());
      net::encode_frame(f, wbuf);
      ++st.sent;
      ++outstanding;
    }
    if (!wbuf.empty() && !net::write_all(fd.get(), wbuf)) {
      st.failed = true;
      return;
    }
    if (!read_responses(fd.get(), dec, pending, outstanding, st)) return;
  }
}

/// One open-loop connection: a writer paces requests on an absolute
/// schedule (next = start + k/rate — a slow broker does not slow the
/// arrival process, that is the point of open loop), a reader records
/// sojourn times against the SCHEDULED instants. The window cap is the
/// only coupling: at the cap the writer waits, and the workload degrades
/// toward closed-loop rather than buffering without bound.
inline void open_loop_conn(const LoadgenConfig& cfg, int index,
                           ConnStats& st) {
  if (cfg.pin_threads)
    platform::pin_thread_to_core(cfg.pin_offset + index);
  net::FdHandle fd = lg_connect(cfg);
  if (!fd.valid()) {
    st.failed = true;
    return;
  }
  const uint32_t key = cfg.key_base + static_cast<uint32_t>(index);
  std::mutex m;
  std::deque<Clock::time_point> pending;  // scheduled send instants
  std::atomic<int64_t> outstanding{0};
  std::atomic<bool> reader_dead{false};
  std::atomic<uint64_t> acked{0};

  std::thread reader([&] {
    net::Decoder dec;
    char buf[65536];
    net::Frame f;
    while (acked.load(std::memory_order_relaxed) <
           static_cast<uint64_t>(cfg.msgs_per_conn)) {
      ssize_t n;
      do {
        n = ::read(fd.get(), buf, sizeof(buf));
      } while (n < 0 && errno == EINTR);
      if (n <= 0) break;
      dec.feed(buf, static_cast<size_t>(n));
      while (dec.next(f) == net::DecodeStatus::ok) {
        Clock::time_point sched;
        bool have = false;
        {
          std::lock_guard<std::mutex> lk(m);
          if (!pending.empty()) {
            sched = pending.front();
            pending.pop_front();
            have = true;
          }
        }
        if (have) st.latencies_us.push_back(us_since(sched, Clock::now()));
        outstanding.fetch_sub(1, std::memory_order_relaxed);
        acked.fetch_add(1, std::memory_order_relaxed);
        if (f.op == net::Opcode::err) ++st.errors;
      }
    }
    reader_dead.store(true, std::memory_order_release);
  });

  const double interval_s =
      cfg.rate_per_conn > 0 ? 1.0 / cfg.rate_per_conn : 0.0;
  Clock::time_point start = Clock::now();
  uint64_t seq = 0;
  std::string wbuf;
  for (int64_t k = 0; k < cfg.msgs_per_conn; ++k) {
    Clock::time_point sched =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(interval_s *
                                                  static_cast<double>(k)));
    std::this_thread::sleep_until(sched);
    while (outstanding.load(std::memory_order_relaxed) >= cfg.window &&
           !reader_dead.load(std::memory_order_acquire))
      std::this_thread::yield();  // safety cap, see header comment
    if (reader_dead.load(std::memory_order_acquire)) {
      st.failed = true;  // broker went away mid-run
      break;
    }
    net::Frame f;
    f.key = key;
    if (cfg.pairs && (k % 2 == 1)) {
      f.op = net::Opcode::deq;
    } else {
      f.op = net::Opcode::enq;
      f.payload = net::encode_value(seq++);
    }
    {
      std::lock_guard<std::mutex> lk(m);
      pending.push_back(sched);
    }
    wbuf.clear();
    net::encode_frame(f, wbuf);
    if (!net::write_all(fd.get(), wbuf)) {
      st.failed = true;
      break;
    }
    outstanding.fetch_add(1, std::memory_order_relaxed);
    ++st.sent;
  }
  if (st.failed)  // writer aborted: unblock the reader's read() and bail
    ::shutdown(fd.get(), SHUT_RDWR);
  reader.join();
  st.acked = acked.load(std::memory_order_relaxed);
}

}  // namespace detail

/// Runs the configured workload, one thread per connection (open loop adds
/// a reader thread per connection), and merges per-connection stats. The
/// clock covers connect through last response.
inline LoadgenResult run_loadgen(const LoadgenConfig& cfg) {
  std::vector<detail::ConnStats> stats(
      static_cast<size_t>(cfg.connections));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(cfg.connections));
  detail::Clock::time_point t0 = detail::Clock::now();
  for (int c = 0; c < cfg.connections; ++c) {
    detail::ConnStats& st = stats[static_cast<size_t>(c)];
    threads.emplace_back([&cfg, c, &st] {
      if (cfg.mode == LoadgenConfig::Mode::closed)
        detail::closed_loop_conn(cfg, c, st);
      else
        detail::open_loop_conn(cfg, c, st);
    });
  }
  for (std::thread& t : threads) t.join();
  detail::Clock::time_point t1 = detail::Clock::now();

  LoadgenResult r;
  r.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  for (detail::ConnStats& st : stats) {
    r.sent += st.sent;
    r.acked += st.acked;
    r.errors += st.errors;
    r.connect_failed = r.connect_failed || st.failed;
    r.latencies_us.insert(r.latencies_us.end(), st.latencies_us.begin(),
                          st.latencies_us.end());
  }
  r.msgs_per_s =
      r.elapsed_s > 0 ? static_cast<double>(r.acked) / r.elapsed_s : 0;
  return r;
}

}  // namespace wfq::broker
