// `broker` — the daemon binary (ISSUE 8 tentpole): serves the wfb-v1
// protocol over a Unix-domain socket and/or loopback TCP, sharding frames
// across registry-built backings. SIGINT/SIGTERM trigger the clean drain
// path (every accepted request answered, then the per-shard counter report
// on stdout). `broker --report <uds-path>` is the companion client mode: it
// asks a LIVE broker for its STAT report (per-shard counters + space
// snapshot + per-tenant rows) and prints the JSON — the process-boundary
// version of reading space_stats() in an E6 gate.
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "broker/broker.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  char b = 1;
  [[maybe_unused]] ssize_t w = ::write(g_signal_pipe[1], &b, 1);
}

void usage(std::ostream& os) {
  os << "usage: broker --uds <path> [--tcp <port>] [options]\n"
        "       broker --cluster <id>/<n> --peers <p0,p1,...> [options]\n"
        "       broker --report <uds-path> [--timeout <ms>]\n"
        "\n"
        "  --uds <path>      listen on a Unix-domain socket at <path>\n"
        "  --tcp <port>      also listen on 127.0.0.1:<port> (0 = pick)\n"
        "  --shards <n>      number of backing shards (default 1)\n"
        "  --groups <g>      servicer threads; shards spread round-robin\n"
        "                    (default: one per shard)\n"
        "  --backing <key>   per-shard backing: any queue registry key\n"
        "                    (ubq, bounded:g=64, faaq, ...) or service key\n"
        "                    (dwrr:<n>:<backing>) (default ubq)\n"
        "  --ops <n>         expected op volume, sizes fixed-segment\n"
        "                    backings (default 262144)\n"
        "  --pin             pin I/O + servicer threads to cores\n"
        "  --cluster <i>/<n> run as replica i of an n-replica raft group\n"
        "  --peers <csv>     the n replica TCP ports, in node-id order;\n"
        "                    this replica listens on its own entry\n"
        "  --election-ms <t> raft election timeout base (default 150)\n"
        "  --raft-seed <s>   election jitter seed (default node id + 1)\n"
        "  --report <path>   client mode: print a live broker's STAT JSON\n"
        "  --timeout <ms>    report-mode connect/read budget (default 5000)\n"
        "  --help, -h        this text\n";
}

int64_t parse_int(const std::string& s, const char* flag) {
  bool ok = !s.empty();
  for (size_t i = (!s.empty() && s[0] == '-') ? 1 : 0; i < s.size() && ok; ++i)
    if (s[i] < '0' || s[i] > '9') ok = false;
  if (!ok || s == "-")
    throw std::invalid_argument(std::string("bad integer \"") + s +
                                "\" for " + flag);
  return std::stoll(s);
}

/// Client mode: one STAT round trip against a live broker. Connect, send,
/// and every read are bounded by `timeout_ms` (ISSUE 10 satellite): a hung
/// or partitioned broker yields a clean error, not a wedged CLI.
int report_mode(const std::string& uds_path, uint64_t timeout_ms) {
  wfq::net::FdHandle fd = wfq::net::connect_uds_timeout(uds_path, timeout_ms);
  if (!fd.valid()) {
    std::cerr << "broker: cannot connect to " << uds_path << ": "
              << std::strerror(errno) << "\n";
    return 1;
  }
  wfq::net::set_recv_timeout(fd.get(), timeout_ms);
  wfq::net::set_send_timeout(fd.get(), timeout_ms);
  wfq::net::Frame req;
  req.op = wfq::net::Opcode::stat;
  std::string wire;
  wfq::net::encode_frame(req, wire);
  if (!wfq::net::write_all(fd.get(), wire)) {
    std::cerr << "broker: STAT write failed\n";
    return 1;
  }
  wfq::net::Decoder dec;
  wfq::net::Frame resp;
  char buf[65536];
  while (true) {
    ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      std::cerr << "broker: STAT response timed out after " << timeout_ms
                << "ms (broker hung or partitioned?)\n";
      return 1;
    }
    if (n <= 0) {
      std::cerr << "broker: connection closed before STAT response\n";
      return 1;
    }
    dec.feed(buf, static_cast<size_t>(n));
    wfq::net::DecodeStatus st = dec.next(resp);
    if (st == wfq::net::DecodeStatus::ok) break;
    if (st != wfq::net::DecodeStatus::need_more) {
      std::cerr << "broker: bad STAT response: "
                << wfq::net::decode_status_name(st) << "\n";
      return 1;
    }
  }
  if (resp.op != wfq::net::Opcode::stat_ok) {
    std::cerr << "broker: expected STAT_OK, got "
              << wfq::net::opcode_name(resp.op) << "\n";
    return 1;
  }
  std::cout << resp.payload << "\n";
  return 0;
}

/// "i/n" for --cluster: replica id i of an n-replica group.
void parse_cluster(const std::string& s, wfq::broker::BrokerConfig& cfg,
                   int& expect_n) {
  size_t slash = s.find('/');
  if (slash == std::string::npos)
    throw std::invalid_argument("--cluster wants <id>/<n>, e.g. 0/3");
  cfg.cluster = true;
  cfg.node_id = static_cast<int>(
      parse_int(s.substr(0, slash), "--cluster id"));
  expect_n = static_cast<int>(
      parse_int(s.substr(slash + 1), "--cluster size"));
  if (expect_n < 1 || cfg.node_id < 0 || cfg.node_id >= expect_n)
    throw std::invalid_argument("--cluster needs 0 <= id < n");
}

std::vector<uint16_t> parse_ports_csv(const std::string& s) {
  std::vector<uint16_t> ports;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    std::string tok =
        s.substr(pos, comma == std::string::npos ? std::string::npos
                                                 : comma - pos);
    int64_t p = parse_int(tok, "--peers");
    if (p < 1 || p > 65535)
      throw std::invalid_argument("--peers ports must be in [1, 65535]");
    ports.push_back(static_cast<uint16_t>(p));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return ports;
}

}  // namespace

int main(int argc, char** argv) {
  wfq::broker::BrokerConfig cfg;
  std::string report_path;
  uint64_t timeout_ms = 5000;
  int expect_n = 0;
  try {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      auto need = [&](const char* flag) -> std::string {
        if (i + 1 >= argc)
          throw std::invalid_argument(std::string("missing value for ") +
                                      flag);
        return argv[++i];
      };
      if (a == "--uds") {
        cfg.uds_path = need("--uds");
      } else if (a == "--tcp") {
        int64_t p = parse_int(need("--tcp"), "--tcp");
        if (p < 0 || p > 65535)
          throw std::invalid_argument("--tcp port must be in [0, 65535]");
        cfg.tcp_port = static_cast<int>(p);
      } else if (a == "--shards") {
        cfg.shards = static_cast<int>(parse_int(need("--shards"), "--shards"));
      } else if (a == "--groups") {
        cfg.groups = static_cast<int>(parse_int(need("--groups"), "--groups"));
      } else if (a == "--backing") {
        cfg.backing = need("--backing");
      } else if (a == "--ops") {
        cfg.expected_ops = parse_int(need("--ops"), "--ops");
        if (cfg.expected_ops < 1)
          throw std::invalid_argument("--ops must be >= 1");
      } else if (a == "--pin") {
        cfg.pin_threads = true;
      } else if (a == "--cluster") {
        parse_cluster(need("--cluster"), cfg, expect_n);
      } else if (a == "--peers") {
        cfg.peer_ports = parse_ports_csv(need("--peers"));
      } else if (a == "--election-ms") {
        int64_t t = parse_int(need("--election-ms"), "--election-ms");
        if (t < 1) throw std::invalid_argument("--election-ms must be >= 1");
        cfg.election_timeout_ms = static_cast<uint64_t>(t);
      } else if (a == "--raft-seed") {
        cfg.raft_seed = static_cast<uint64_t>(
            parse_int(need("--raft-seed"), "--raft-seed"));
      } else if (a == "--report") {
        report_path = need("--report");
      } else if (a == "--timeout") {
        int64_t t = parse_int(need("--timeout"), "--timeout");
        if (t < 1) throw std::invalid_argument("--timeout must be >= 1");
        timeout_ms = static_cast<uint64_t>(t);
      } else if (a == "--help" || a == "-h") {
        usage(std::cout);
        return 0;
      } else {
        throw std::invalid_argument("unknown flag \"" + a + "\"");
      }
    }
    if (!report_path.empty()) return report_mode(report_path, timeout_ms);
    if (cfg.cluster) {
      if (static_cast<int>(cfg.peer_ports.size()) != expect_n)
        throw std::invalid_argument(
            "--peers must list exactly the --cluster n ports");
      // This replica listens on its own --peers entry; peers dial it there.
      cfg.tcp_port =
          static_cast<int>(cfg.peer_ports[static_cast<size_t>(cfg.node_id)]);
    }
    if (cfg.uds_path.empty() && cfg.tcp_port < 0)
      throw std::invalid_argument("need --uds and/or --tcp (or --cluster)");
  } catch (const std::exception& ex) {
    std::cerr << "broker: " << ex.what() << "\n\n";
    usage(std::cerr);
    return 2;
  }

  try {
    // Signal wiring before start(): a SIGTERM racing startup must still
    // land in the pipe the main thread is about to block on.
    if (::pipe(g_signal_pipe) != 0) {
      std::cerr << "broker: pipe() failed\n";
      return 1;
    }
    struct sigaction sa {};
    sa.sa_handler = on_signal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    wfq::broker::Broker broker(cfg);
    broker.start();
    std::cerr << "broker: serving " << broker.shards() << " shard(s) of "
              << broker.backing() << " on "
              << (cfg.uds_path.empty() ? std::string("-")
                                       : cfg.uds_path);
    if (cfg.tcp_port >= 0)
      std::cerr << " and 127.0.0.1:" << broker.tcp_port();
    std::cerr << " (" << broker.groups() << " servicer thread(s))";
    if (cfg.cluster)
      std::cerr << " as raft replica " << cfg.node_id << "/"
                << cfg.peer_ports.size();
    std::cerr << "\n";

    char b;
    while (::read(g_signal_pipe[0], &b, 1) < 0 && errno == EINTR) {
    }
    std::cerr << "broker: signal received, draining...\n";
    broker.stop();
    std::cout << broker.stat_json() << "\n";
    wfq::broker::Broker::ShardCounters t = broker.totals();
    std::cerr << "broker: drained; enq=" << t.enq << " deq_hit=" << t.deq_hit
              << " deq_empty=" << t.deq_empty << " ping=" << t.ping
              << " stat=" << t.stat << " bad=" << t.bad << "\n";
    return 0;
  } catch (const std::exception& ex) {
    std::cerr << "broker: " << ex.what() << "\n";
    return 1;
  }
}
