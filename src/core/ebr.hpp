// Epoch-based reclamation for the bounded-space queue (paper Section 6):
// blocks truncated out of a node's array — and superseded archive versions —
// must not be freed while a concurrent operation may still hold a raw
// pointer to them. Readers pin the global epoch for the duration of one
// queue operation; the GC phase retires garbage into the current epoch's
// bucket and frees a bucket only once every pinned reader has observably
// moved past it (the classic three-bucket, two-grace-period scheme).
//
// Division of labor with the queue:
//  - pin/unpin are called by every operation (O(1) shared steps each, so
//    they disappear into the amortized bound);
//  - retire/try_advance/collect are called only from inside a GC phase,
//    which the queue serializes with its gc lock, so the retire buckets
//    need no internal synchronization;
//  - retired_count() is the E6/E8 introspection surface: the backlog of
//    retired-but-not-yet-freed objects, which stays bounded because every
//    GC phase attempts an epoch advance.
//
// Epoch accesses go through Platform atomics: each pin/unpin/scan access is
// a shared-memory step in the paper's model (and a yield point under the
// sim scheduler), so reclamation overhead is measured, not hidden.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "platform/platform.hpp"

namespace wfq::core {

template <typename Platform = platform::RealPlatform>
class Ebr {
 public:
  /// Slot value meaning "no operation in flight on this process".
  static constexpr uint64_t kIdle = ~uint64_t{0};

  explicit Ebr(int procs)
      : procs_(procs < 1 ? 1 : procs),
        slots_(new Slot[static_cast<size_t>(procs_)]) {}

  Ebr(const Ebr&) = delete;
  Ebr& operator=(const Ebr&) = delete;

  ~Ebr() {
    for (auto& bucket : buckets_) free_bucket(bucket);
  }

  /// Marks process `pid` as reading under the current epoch. The seq_cst
  /// fence keeps the pin store from reordering past the operation's first
  /// pointer load on TSO hardware (fences are bookkeeping, not modeled
  /// steps; the store itself is a counted shared step).
  void pin(int pid) {
    slots_[static_cast<size_t>(pid)].epoch.store(epoch_.load());
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  void unpin(int pid) {
    slots_[static_cast<size_t>(pid)].epoch.store(kIdle);
  }

  /// Hands `p` to the collector; freed via `del` two epoch advances later.
  /// GC-phase only (serialized by the queue's gc lock).
  void retire(void* p, void (*del)(void*)) {
    buckets_[epoch_.unsafe_peek() % 3].push_back({p, del});
    retired_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Advances the global epoch if every pinned process has caught up with
  /// it, then frees the bucket that just became unreachable (retired two
  /// epochs ago). GC-phase only. Returns true if the epoch moved.
  bool try_advance() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    uint64_t g = epoch_.load();
    for (int i = 0; i < procs_; ++i) {
      uint64_t e = slots_[static_cast<size_t>(i)].epoch.load();
      if (e != kIdle && e != g) return false;  // a reader is still behind
    }
    if (!epoch_.cas(g, g + 1)) return false;
    free_bucket(buckets_[(g + 1) % 3]);  // epoch g-2's garbage
    return true;
  }

  /// Backlog of retired-but-not-yet-freed objects (E6's "EBR backlog"
  /// column). Transient garbage: bounded by ~3 GC phases' worth.
  uint64_t retired_count() const {
    return retired_.load(std::memory_order_relaxed) -
           freed_.load(std::memory_order_relaxed);
  }

  /// Total objects ever reclaimed (the gc tests assert this goes nonzero).
  uint64_t freed_count() const {
    return freed_.load(std::memory_order_relaxed);
  }

  uint64_t epoch() const { return epoch_.unsafe_peek(); }

 private:
  struct Retired {
    void* p;
    void (*del)(void*);
  };

  struct alignas(64) Slot {
    typename Platform::template Atomic<uint64_t> epoch{kIdle};
  };

  void free_bucket(std::vector<Retired>& bucket) {
    for (const Retired& r : bucket) r.del(r.p);
    freed_.fetch_add(bucket.size(), std::memory_order_relaxed);
    bucket.clear();
  }

  int procs_;
  std::unique_ptr<Slot[]> slots_;
  typename Platform::template Atomic<uint64_t> epoch_{0};
  std::vector<Retired> buckets_[3];  // GC-lock-guarded; indexed epoch % 3
  std::atomic<uint64_t> retired_{0};
  std::atomic<uint64_t> freed_{0};
};

}  // namespace wfq::core
