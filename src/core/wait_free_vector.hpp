// Wait-free vector from the paper's Section 7 extension ("our routines
// easily adapt"), now actually built on the shared ordering-tree core
// (core/ordering_tree.hpp, ISSUE 5) instead of the flat-FAA stub (which
// lives on as baselines::FaaVector, registry key "faavec"):
//
//  - append(x) is an enqueue-like operation: leaf Append + double-Refresh
//    propagation (O(log p) steps like Theorem 22's enqueue), followed by
//    the IndexDequeue walk generalized to enqueues to learn the index the
//    value landed at — the position of this append in the root's agreed
//    linearization. Indices are dense, start at 0, and never change.
//  - get(i) is an index-directed search: binary search over root blocks by
//    cumulative sumenq (O(log #blocks) = O(log n)) then the same
//    root-to-leaf descent a dequeue's FindResponse uses (O(log p) levels ×
//    O(log contention) per level) — the paper's O(log^2 p + log n).
//  - size() reads the root's last agreed block (appends still inside
//    propagation are not yet counted; they appear atomically when their
//    root merge lands, which is the linearization point).
//
// get(i) for i < size() always returns a value: an index is only assigned
// once the append's block reaches the root, and its element was published
// at the leaf before propagation began. No capacity, no abort: the block
// arrays grow geometrically like the queue's.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>

#include "core/ordering_tree.hpp"
#include "platform/platform.hpp"

namespace wfq::core {

template <typename T, typename Platform = platform::RealPlatform>
class WaitFreeVector {
 public:
  using Tree = OrderingTree<T, Platform, DirectStorage>;
  using Block = typename Tree::Block;
  using Node = typename Tree::Node;

  explicit WaitFreeVector(int procs) : tree_(procs, storage_) {}

  WaitFreeVector(const WaitFreeVector&) = delete;
  WaitFreeVector& operator=(const WaitFreeVector&) = delete;

  /// Associates the calling thread with leaf `pid` (0-based, < procs).
  void bind_thread(int pid) {
    assert(pid >= 0 && pid < tree_.procs());
    platform::bind_thread(pid);
  }

  /// Appends and returns the (0-based) index the value landed at.
  int64_t append(T x) {
    int pid = platform::current_pid();
    int64_t b = tree_.append(pid, std::optional<T>(std::move(x)),
                             /*is_enq=*/true);
    auto [rb, r] = tree_.index_op(pid, b, /*is_enq=*/true);
    return tree_.enqueue_rank(rb, r) - 1;
  }

  /// Value at index i, or nullopt if i is past the current end.
  std::optional<T> get(int64_t i) {
    if (i < 0) return std::nullopt;
    return tree_.find_enqueue(i + 1);
  }

  /// Appends agreed at the root so far.
  int64_t size() { return tree_.root_sumenq(); }

  // --- debug/introspection surface (uncounted) -----------------------------

  /// Number of blocks ever appended across all nodes (excluding sentinels).
  size_t debug_total_blocks() const { return tree_.debug_total_blocks(); }

  int procs() const { return tree_.procs(); }

 private:
  DirectStorage storage_;
  Tree tree_;
};

}  // namespace wfq::core
