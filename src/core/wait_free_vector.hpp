// Wait-free vector from the paper's Section 7 extension sketch ("our
// routines easily adapt"): append is an enqueue-like operation, get(i) walks
// to the i-th append.
//
// STUB: a flat FAA-claimed cell array — wait-free and linearizable, but O(1)
// per op instead of the paper's O(log p) append / O(log^2 p + log n) get, so
// E11's shape columns are not meaningful yet. The ordering-tree version
// (reusing UnboundedQueue's propagation) is a ROADMAP open item.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "platform/platform.hpp"

namespace wfq::core {

template <typename T, typename Platform = platform::RealPlatform>
class WaitFreeVector {
 public:
  explicit WaitFreeVector(int /*procs*/, size_t capacity = size_t{1} << 16)
      : cells_(capacity) {}

  void bind_thread(int pid) { platform::bind_thread(pid); }

  /// Appends and returns the index the value landed at.
  int64_t append(T x) {
    int64_t slot = len_.fetch_add(1);
    if (static_cast<size_t>(slot) >= cells_.size()) {
      std::fprintf(stderr,
                   "WaitFreeVector: capacity %zu exhausted (slot %lld)\n",
                   cells_.size(), static_cast<long long>(slot));
      std::abort();
    }
    Cell& c = cells_[static_cast<size_t>(slot)];
    c.val = std::move(x);
    c.ready.store(1);
    return slot;
  }

  /// Value at index i, or nullopt if i is past the end or the appender has
  /// claimed the slot but not yet published the value.
  std::optional<T> get(int64_t i) {
    if (i < 0 || i >= len_.load()) return std::nullopt;
    Cell& c = cells_[static_cast<size_t>(i)];
    if (c.ready.load() == 0) return std::nullopt;
    return c.val;
  }

  int64_t size() { return len_.load(); }

 private:
  struct Cell {
    typename Platform::template Atomic<uint64_t> ready{0};
    T val{};
  };

  typename Platform::template Atomic<int64_t> len_{0};
  std::vector<Cell> cells_;
};

}  // namespace wfq::core
