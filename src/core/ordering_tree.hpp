// The shared ordering-tree core (ISSUE 5 tentpole): the machinery the
// paper's queue and its Section-7 extensions have in common, extracted so
// the unbounded queue, the bounded-space queue and the wait-free vector are
// thin clients of ONE implementation instead of three diverged copies.
//
// Structure: a static tournament ("ordering") tree with one leaf per
// process. Every node holds an append-only array of immutable Blocks plus a
// head index. An operation appends a block at its own leaf, then propagates
// to the root with the double-Refresh idiom: each Refresh tries to CAS one
// new block into the parent that merges every child block not yet merged.
// Agreement on the root's block sequence induces the linearization: blocks
// in index order; within a block, enqueues before dequeues; within each
// kind, left-subtree operations before right-subtree ones.
//
// Blocks carry the paper's "implicit" fields materialized at creation time
// (each is written once before the block is published, so readers never see
// partial values):
//   sumenq/sumdeq — cumulative enqueue/dequeue counts in this node's subtree
//                   up to and including this block;
//   endleft/endright — index of the last child block merged (internal nodes);
//   size — queue size after this block's operations (root only), clamped at 0
//          so null dequeues do not drive it negative;
//   super — hint: parent's head index read just before this block was
//           published; the true superblock index is >= super and within the
//           append contention of it, so a gallop from the hint costs
//           O(log contention) (the paper's log-c factor).
//
// The Storage customization point. Clients differ ONLY in how historical
// blocks are read back: the unbounded queue and the vector load the array
// slot directly; the bounded queue routes indices under a node's GC floor
// through its persistent-RBT archive (and tombstoned slots likewise). Every
// historical read inside the tree goes through
//
//   storage.load_block(const Node* v, int64_t i) -> const Block*
//
// while frontier operations (null-scan at the head, install CAS, head
// helping) stay direct array accesses — a frontier slot is never truncated,
// in either client. DirectStorage below is the trivial hook; the bounded
// queue supplies its floor/tombstone/archive-aware one.
//
// Operation surface the clients compose:
//   append(pid, elem, is_enq)  leaf Append + double-Refresh propagation;
//   index_op(pid, b, is_enq)   locate the leaf block in the root ordering
//                              (IndexDequeue generalized to either op kind —
//                              the vector indexes its appends with the same
//                              walk a dequeue uses to index itself);
//   find_response(b, r)        queue dequeue resolution: null-vs-value from
//                              the root size prefix + Lemma-20 doubling
//                              search + root-to-leaf descent;
//   find_enqueue(e)            vector get: index-directed binary search over
//                              root blocks + the same descent;
//   enqueue_rank(b, r)         global rank of a located enqueue (the index a
//                              vector append returns).
//
// Hot-path constant factors: each leaf keeps an owner-local cache of its
// last block's index and cumulative sums (ROADMAP perf item). The leaf is
// single-writer, so the cache is plain non-atomic state with the same
// owner-only contract as the leaf array itself; it saves the head load and
// the previous-block load — two counted shared steps — on every append.
// (The cache holds VALUES, not the block pointer: under the bounded client
// a truncated block is eventually freed through EBR, and a pointer cached
// across operations — outside any epoch pin — could dangle.)
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "platform/platform.hpp"

namespace wfq::core {

/// Immutable operation/merge block; see the field glossary above.
template <typename T>
struct TreeBlock {
  std::optional<T> element;  // leaf enqueue blocks only
  int64_t sumenq = 0;
  int64_t sumdeq = 0;
  int64_t endleft = 0;   // internal nodes only
  int64_t endright = 0;  // internal nodes only
  int64_t size = 0;      // root blocks only
  int64_t super = 0;     // superblock-index hint (non-root blocks)
};

/// Append-only unbounded block array: geometrically growing segments
/// installed on demand with an (uncounted, bookkeeping-only) directory CAS.
/// Slot accesses go through Platform atomics and count as shared steps.
/// `take`/`tombstone` exist for the bounded client's GC truncation; clients
/// without collection simply never call them.
template <typename T, typename Platform>
class TreeBlockArray {
 public:
  using Block = TreeBlock<T>;

  TreeBlockArray() = default;
  TreeBlockArray(const TreeBlockArray&) = delete;
  TreeBlockArray& operator=(const TreeBlockArray&) = delete;

  ~TreeBlockArray() {
    for (int k = 0; k < kSegments; ++k) {
      Slot* seg = segs_[k].load(std::memory_order_acquire);
      if (!seg) continue;
      int64_t n = int64_t{1} << (k + kBaseBits);
      for (int64_t j = 0; j < n; ++j) {
        Block* b = seg[j].unsafe_peek();
        if (b != tombstone()) delete b;
      }
      delete[] seg;
    }
  }

  /// Reserved marker stored into truncated slots. Slots go null -> block
  /// -> tombstone and never back: if take() nulled the slot instead, a
  /// refresher that built its block long ago and stalled before its
  /// install CAS (which expects null) could resurrect a STALE block into
  /// a truncated index (ABA), and readers still holding the old floor
  /// would read wrong sums through it.
  static Block* tombstone() {
    static Block t;
    return &t;
  }

  Block* load(int64_t i) const { return slot(i).load(); }

  /// Single-writer publish (leaf appends).
  void store(int64_t i, Block* b) { slot(i).store(b); }

  /// One CAS attempt to install `b` at slot `i` (internal appends).
  bool cas(int64_t i, Block* b) { return slot(i).cas(nullptr, b); }

  /// GC truncation: detaches and returns the block at `i` (the slot
  /// becomes a tombstone; the caller retires the block through EBR).
  Block* take(int64_t i) {
    Slot& s = slot(i);
    Block* b = s.load();
    s.store(tombstone());
    return b;
  }

  /// Uncounted accessors for construction and debug introspection.
  Block* unsafe_peek(int64_t i) const { return slot(i).unsafe_peek(); }
  void unsafe_install(int64_t i, Block* b) { slot(i).unsafe_store(b); }

 private:
  using Slot = typename Platform::template Atomic<Block*>;
  static constexpr int kBaseBits = 6;  // first segment: 64 slots
  static constexpr int kSegments = 42;

  Slot& slot(int64_t i) const {
    uint64_t base = static_cast<uint64_t>(i) + (uint64_t{1} << kBaseBits);
    int k = std::bit_width(base) - 1 - kBaseBits;
    int64_t off = static_cast<int64_t>(base - (uint64_t{1} << (k + kBaseBits)));
    return segment(k)[off];
  }

  Slot* segment(int k) const {
    Slot* seg = segs_[k].load(std::memory_order_acquire);
    if (seg) return seg;
    int64_t n = int64_t{1} << (k + kBaseBits);
    Slot* fresh = new Slot[static_cast<size_t>(n)]();
    Slot* expected = nullptr;
    if (segs_[k].compare_exchange_strong(expected, fresh,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      return fresh;
    }
    delete[] fresh;
    return expected;
  }

  mutable std::atomic<Slot*> segs_[kSegments] = {};
};

template <typename T, typename Platform>
struct TreeNode {
  using Block = TreeBlock<T>;

  TreeNode* parent = nullptr;
  TreeNode* left = nullptr;
  TreeNode* right = nullptr;
  bool is_leaf = false;
  bool is_root = false;
  int leaf_pid = -1;
  int id = 0;  // archive key prefix (bounded client)
  // Next free block slot; blocks[0] is a zeroed sentinel, so head starts at
  // 1 and lags the filled frontier by at most one (helpers CAS it forward).
  typename Platform::template Atomic<int64_t> head{1};
  /// Lowest index still present in the array; indices in [1, floor) have
  /// been truncated (archived or discarded). Raised (release) before the
  /// slots are tombstoned, so a stale slot under the floor is unambiguous.
  /// Clients without collection leave it at 1 forever.
  typename Platform::template Atomic<int64_t> floor{1};
  TreeBlockArray<T, Platform> blocks;
  // Collector-only mirrors (guarded by the bounded client's gc lock, never
  // read by operations):
  int64_t af = 1;      // archive floor: lowest index kept anywhere
  int64_t kfloor = 1;  // mirror of `floor` without counted loads
  // Owner-local append cache (leaves only): the index and cumulative sums
  // of the last block this leaf's owner appended. Same single-writer
  // contract as the leaf's head/array; lets append_leaf skip the head load
  // and previous-block load (two counted shared steps per operation).
  int64_t cache_idx = 0;
  int64_t cache_sumenq = 0;
  int64_t cache_sumdeq = 0;
  int64_t cache_size = 0;  // root-leaf (p == 1) only
};

/// The trivial Storage hook: every historical read is a direct (counted)
/// array load. Used by the unbounded queue and the wait-free vector.
struct DirectStorage {
  template <typename Node>
  auto* load_block(const Node* v, int64_t i) const {
    return v->blocks.load(i);
  }
};

template <typename T, typename Platform, typename Storage>
class OrderingTree {
 public:
  using Block = TreeBlock<T>;
  using Node = TreeNode<T, Platform>;
  using BlockArray = TreeBlockArray<T, Platform>;

  /// The tree holds a reference to the client's storage policy; the client
  /// owns it (and any archive state behind it) for the tree's lifetime.
  OrderingTree(int procs, Storage& storage)
      : p_(procs < 1 ? 1 : procs), storage_(&storage) {
    unsigned width = std::bit_ceil(static_cast<unsigned>(p_));
    root_ = build_tree(nullptr, width);
    collect_leaves(root_);
  }

  OrderingTree(const OrderingTree&) = delete;
  OrderingTree& operator=(const OrderingTree&) = delete;

  ~OrderingTree() { delete_tree(root_); }

  // --- the operation surface ----------------------------------------------

  /// Appends one operation block at pid's (single-writer) leaf and runs the
  /// double-Refresh propagation to the root; returns the leaf block index.
  int64_t append(int pid, std::optional<T> elem, bool is_enq) {
    Node* leaf = leaves_[static_cast<size_t>(pid)];
    int64_t b = append_leaf(leaf, std::move(elem), is_enq);
    propagate(leaf->parent);
    return b;
  }

  /// Walks the operation appended as pid's leaf block `b` up to the root,
  /// returning (root block index, rank of this operation among that block's
  /// operations of the same kind). This is the paper's IndexDequeue,
  /// generalized over the op kind: a dequeue locates itself among a root
  /// block's dequeues (`is_enq` false), a vector append among its enqueues.
  std::pair<int64_t, int64_t> index_op(int pid, int64_t b, bool is_enq) {
    Node* v = leaves_[static_cast<size_t>(pid)];
    auto sum = [is_enq](const Block* blk) {
      return is_enq ? blk->sumenq : blk->sumdeq;
    };
    int64_t i = 1;
    while (!v->is_root) {
      Node* par = v->parent;
      bool from_left = (par->left == v);
      int64_t hint = load(v, b)->super;
      int64_t s = find_superblock(par, from_left, b, hint);
      const Block* sb = load(par, s);
      const Block* sp = load(par, s - 1);
      int64_t start = from_left ? sp->endleft : sp->endright;
      // Same-kind ops of this child merged earlier in the same superblock.
      i += sum(load(v, b - 1)) - sum(load(v, start));
      if (!from_left) {
        // Left-child ops of the superblock precede all right-child ones.
        i += sum(load(par->left, sb->endleft)) -
             sum(load(par->left, sp->endleft));
      }
      v = par;
      b = s;
    }
    return {b, i};
  }

  /// Resolves the dequeue that is the r-th dequeue of root block `b`: null
  /// if the queue is empty at its linearization point, otherwise the element
  /// of the e-th enqueue overall, located with the doubling search
  /// (Lemma 20) and a root-to-leaf descent.
  std::optional<T> find_response(int64_t b, int64_t r) {
    const Block* prev = load(root_, b - 1);
    const Block* cur = load(root_, b);
    int64_t numenq = cur->sumenq - prev->sumenq;
    if (r > prev->size + numenq) return std::nullopt;
    int64_t e = prev->sumenq - prev->size + r;
    // Doubling search backward from b for the block with sumenq >= e; its
    // cost tracks the distance b - b_e, not the total number of root blocks.
    int64_t hi = b;
    int64_t step = 1;
    int64_t lo = std::max<int64_t>(b - step, 0);
    while (lo > 0 && load(root_, lo)->sumenq >= e) {
      hi = lo;
      step <<= 1;
      lo = std::max<int64_t>(b - step, 0);
    }
    while (lo + 1 < hi) {
      int64_t mid = lo + (hi - lo) / 2;
      if (load(root_, mid)->sumenq >= e) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    int64_t i = e - load(root_, hi - 1)->sumenq;
    return get_enqueue(root_, hi, i);
  }

  /// Element of the e-th enqueue overall (1-based), or nullopt when fewer
  /// than e enqueues have propagated to the root. The vector's get(i):
  /// index-directed binary search over the root blocks (root sumenq is
  /// nondecreasing; O(log #blocks) = O(log n)) followed by the same
  /// root-to-leaf descent a dequeue uses (O(log p) levels, O(log c) binary
  /// search per level — the paper's O(log^2 p + log n) get).
  std::optional<T> find_enqueue(int64_t e) {
    if (e < 1) return std::nullopt;
    int64_t last = last_block_index(root_);
    if (load(root_, last)->sumenq < e) return std::nullopt;
    int64_t lo = 0, hi = last;  // invariant: sumenq(lo) < e <= sumenq(hi)
    while (lo + 1 < hi) {
      int64_t mid = lo + (hi - lo) / 2;
      if (load(root_, mid)->sumenq >= e) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    int64_t i = e - load(root_, hi - 1)->sumenq;
    return get_enqueue(root_, hi, i);
  }

  /// Global 1-based rank of the r-th enqueue of root block `b` (the inverse
  /// of find_enqueue; what a vector append reports as its landing index).
  int64_t enqueue_rank(int64_t b, int64_t r) {
    return load(root_, b - 1)->sumenq + r;
  }

  /// Total enqueues agreed at the root (the vector's size()).
  int64_t root_sumenq() {
    return load(root_, last_block_index(root_))->sumenq;
  }

  /// Index of the last appended block of `v` (head may lag it by one).
  /// Frontier reads only — valid under every Storage.
  int64_t last_block_index(const Node* v) const {
    int64_t h = v->head.load();
    if (v->blocks.load(h) != nullptr) return h;
    return h - 1;
  }

  // --- structure access (clients: GC walks, debug surfaces) ---------------

  Node* root() { return root_; }
  const Node* root() const { return root_; }
  Node* leaf(int pid) { return leaves_[static_cast<size_t>(pid)]; }
  const Node* leaf(int pid) const { return leaves_[static_cast<size_t>(pid)]; }
  int procs() const { return p_; }

  /// Number of blocks ever appended across all nodes (excluding sentinels).
  /// Uncounted; quiescent-only like every debug surface.
  size_t debug_total_blocks() const {
    size_t total = 0;
    count_blocks(root_, /*floor_aware=*/false, total);
    return total;
  }

  /// Blocks still present in the arrays (floor-aware live suffixes); equal
  /// to debug_total_blocks() for clients that never truncate.
  size_t debug_live_array_blocks() const {
    size_t total = 0;
    count_blocks(root_, /*floor_aware=*/true, total);
    return total;
  }

 private:
  // --- tree construction ---------------------------------------------------

  Node* build_tree(Node* parent, unsigned width) {
    Node* n = new Node;
    n->parent = parent;
    n->is_root = (parent == nullptr);
    n->id = next_id_++;
    n->blocks.unsafe_install(0, new Block{});  // sentinel: all fields zero
    if (width == 1) {
      n->is_leaf = true;
    } else {
      n->left = build_tree(n, width / 2);
      n->right = build_tree(n, width / 2);
    }
    return n;
  }

  void collect_leaves(Node* n) {
    if (n->is_leaf) {
      n->leaf_pid = static_cast<int>(leaves_.size());
      leaves_.push_back(n);
      return;
    }
    collect_leaves(n->left);
    collect_leaves(n->right);
  }

  void delete_tree(Node* n) {
    if (!n) return;
    delete_tree(n->left);
    delete_tree(n->right);
    delete n;
  }

  void count_blocks(const Node* n, bool floor_aware, size_t& total) const {
    if (!n) return;
    int64_t h = n->head.unsafe_peek();
    if (n->blocks.unsafe_peek(h) != nullptr) ++h;  // head lagging the frontier
    int64_t lo = floor_aware ? std::max<int64_t>(n->floor.unsafe_peek(), 1) : 1;
    if (h > lo) total += static_cast<size_t>(h - lo);
    count_blocks(n->left, floor_aware, total);
    count_blocks(n->right, floor_aware, total);
  }

  // --- historical reads go through the client's storage policy -------------

  const Block* load(const Node* v, int64_t i) const {
    return storage_->load_block(v, i);
  }

  // --- append & propagation ------------------------------------------------

  /// Appends one operation block at the (single-writer) leaf; returns its
  /// block index. The previous block's cumulative fields come from the
  /// owner-local cache — the leaf is single-writer, so the cache is always
  /// exact — saving the head load and prev-block load on the hot path.
  int64_t append_leaf(Node* leaf, std::optional<T> elem, bool is_enq) {
    int64_t h = leaf->cache_idx + 1;
    Block* b = new Block;
    b->element = std::move(elem);
    b->sumenq = leaf->cache_sumenq + (is_enq ? 1 : 0);
    b->sumdeq = leaf->cache_sumdeq + (is_enq ? 0 : 1);
    if (leaf->is_root) {
      b->size =
          std::max<int64_t>(0, leaf->cache_size + (is_enq ? 1 : -1));
    } else {
      b->super = leaf->parent->head.load();  // hint, read before publishing
    }
    leaf->blocks.store(h, b);
    leaf->head.store(h + 1);
    leaf->cache_idx = h;
    leaf->cache_sumenq = b->sumenq;
    leaf->cache_sumdeq = b->sumdeq;
    leaf->cache_size = b->size;
    return h;
  }

  /// After the leaf append, one Refresh pair per ancestor suffices: if both
  /// calls lose their CAS, the two winning blocks were both created after our
  /// child block was published, so the second winner merged it (the f-array
  /// double-refresh argument; each failure below is a genuine CAS loss on a
  /// slot we saw empty, which is what the argument needs).
  void propagate(Node* v) {
    while (v != nullptr) {
      if (!refresh(v)) refresh(v);
      v = v->parent;
    }
  }

  /// Tries to append one block to internal node `v` merging all child blocks
  /// not yet merged. True if nothing new to merge or our CAS won.
  bool refresh(Node* v) {
    int64_t h = v->head.load();
    while (v->blocks.load(h) != nullptr) {  // stale head: help it forward
      v->head.cas(h, h + 1);
      h = v->head.load();
    }
    const Block* prev = load(v, h - 1);
    int64_t lend = last_block_index(v->left);
    int64_t rend = last_block_index(v->right);
    if (lend == prev->endleft && rend == prev->endright) return true;
    Block* nb = new Block;
    nb->endleft = lend;
    nb->endright = rend;
    nb->sumenq = load(v->left, lend)->sumenq + load(v->right, rend)->sumenq;
    nb->sumdeq = load(v->left, lend)->sumdeq + load(v->right, rend)->sumdeq;
    if (v->is_root) {
      int64_t numenq = nb->sumenq - prev->sumenq;
      int64_t numdeq = nb->sumdeq - prev->sumdeq;
      nb->size = std::max<int64_t>(0, prev->size + numenq - numdeq);
    } else {
      nb->super = v->parent->head.load();
    }
    if (v->blocks.cas(h, nb)) {
      v->head.cas(h, h + 1);
      return true;
    }
    delete nb;
    v->head.cas(h, h + 1);  // a winner exists; help advance past it
    return false;
  }

  // --- search & descent ----------------------------------------------------

  /// Smallest parent block index s with end{left|right}(s) >= b, i.e. the
  /// block of `par` that merged child block `b`. Gallops out from the hint
  /// (end* is nondecreasing in s), then binary-searches the bracket. Probes
  /// may land below a bounded client's archive floor; the storage policy
  /// answers those with a monotone sentinel that steers the search back up.
  int64_t find_superblock(Node* par, bool from_left, int64_t b, int64_t hint) {
    auto end_of = [&](int64_t s) {
      const Block* blk = load(par, s);
      return from_left ? blk->endleft : blk->endright;
    };
    int64_t last = last_block_index(par);
    int64_t h0 = std::clamp<int64_t>(hint, 1, last);
    int64_t lo, hi;  // invariant: end_of(lo) < b <= end_of(hi)
    if (end_of(h0) >= b) {
      hi = h0;
      int64_t step = 1;
      lo = h0 - step;
      while (lo > 0 && end_of(lo) >= b) {
        hi = lo;
        step <<= 1;
        lo = h0 - step;
      }
      if (lo < 0) lo = 0;
    } else {
      lo = h0;
      int64_t step = 1;
      hi = h0 + step;
      while (hi < last && end_of(hi) < b) {
        lo = hi;
        step <<= 1;
        hi = h0 + step;
      }
      if (hi > last) hi = last;  // propagate() guarantees end_of(last) >= b
    }
    while (lo + 1 < hi) {
      int64_t mid = lo + (hi - lo) / 2;
      if (end_of(mid) >= b) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return hi;
  }

  /// Element of the i-th enqueue of block `b` at node `v`: descend to the
  /// leaf holding it. Within a block, left-child enqueues precede right-child
  /// ones; the per-level binary search spans only the merged subblocks, so it
  /// costs O(log contention) per level.
  std::optional<T> get_enqueue(Node* v, int64_t b, int64_t i) {
    while (!v->is_leaf) {
      const Block* cur = load(v, b);
      const Block* prev = load(v, b - 1);
      Node* child;
      int64_t lo, hi;
      int64_t numleft = load(v->left, cur->endleft)->sumenq -
                        load(v->left, prev->endleft)->sumenq;
      if (i <= numleft) {
        child = v->left;
        lo = prev->endleft;
        hi = cur->endleft;
      } else {
        child = v->right;
        lo = prev->endright;
        hi = cur->endright;
        i -= numleft;
      }
      int64_t target = load(child, lo)->sumenq + i;
      while (lo + 1 < hi) {
        int64_t mid = lo + (hi - lo) / 2;
        if (load(child, mid)->sumenq >= target) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      i = target - load(child, hi - 1)->sumenq;
      v = child;
      b = hi;
    }
    return load(v, b)->element;
  }

  int p_;
  int next_id_ = 0;  // node id source during build
  Storage* storage_;
  Node* root_ = nullptr;
  std::vector<Node*> leaves_;
};

}  // namespace wfq::core
