// Bounded-space variant of the wait-free queue (paper Section 6, Theorems
// 31/32). Thin client of the shared ordering-tree core
// (core/ordering_tree.hpp) — leaf Append, double-Refresh propagation,
// IndexDequeue, FindResponse are the one shared implementation — plus the
// three cooperating layers that keep every node down to a *live suffix* of
// its block array:
//
//  - Every G completed operations (the `gc_period`; 0 selects the paper
//    default G = p^2 ceil(log2 p), negative disables collection for the E8
//    ablation) the operation crossing the boundary runs a GC phase.
//  - The GC phase computes, per node, an archive floor `af` (everything
//    below it is dead: unreachable by the live queue contents and by every
//    in-flight operation) and an array floor `k` (the suffix that stays in
//    the mutable block array, sized by the GC window ~ G). Blocks in
//    [af, k) are copied into a path-copying persistent red-black tree
//    (pbt/persistent_rbt.hpp) keyed by (node id, block index); blocks below
//    af are discarded. Truncated array slots are tombstoned — never reset
//    to null, so a stalled refresher's install CAS cannot resurrect a stale
//    block into a collected index — and the Block objects are retired into
//    an epoch-based-reclamation layer (core/ebr.hpp) so a concurrent reader
//    holding a raw pointer never sees freed memory.
//  - Readers route every historical block access through the tree's Storage
//    hook, which lands in load_block() below: an index under the node's
//    floor falls back to a lookup in the current archive version. Archive
//    versions are immutable RBT snapshots swapped atomically; superseded
//    versions are EBR-retired, which is exactly why the tree must be
//    persistent — a dequeue may keep reading an old version while a GC
//    phase installs the next one.
//
// Liveness reasoning for the archive floor (what makes discarding safe):
// every operation publishes the root index observed at its start. The
// collector reads `last` (the root's last block index) *before* scanning
// the start slots, so any op that pins after its slot was scanned
// publishes a start >= last (the head is monotone). With
// m = min(active starts, root last) the oldest enqueue any in-flight or
// future dequeue can be assigned is front(m-1) = sumenq(m-1)-size(m-1)+1,
// so retaining root blocks >= min(block of front(m-1), m) - 2 — and, per
// child, everything from the end-pointers of the block PRECEDING the
// parent's archive floor (readers consume parent blocks in pairs (j-1, j),
// so the pair at the floor itself spans child blocks from the end-pointers
// of floor - 1) — covers every value-bearing load. Searches (superblock
// gallop, Lemma-20 doubling) may *probe* below the floor; a discarded
// probe answers with a sentinel whose monotone fields (-1) steer the
// search back up, which is safe because all three search predicates are
// monotone in the block index.
//
// Reachable space: in-array suffixes are O(G) per node, the archive holds
// O(q_max + p) live blocks, and the EBR backlog is transient (bounded by
// ~3 GC phases) — Theorem 31's O(p q_max + p^3 log p) with G = p^2 log p.
// Every archive access is charged through note_rbt_touch (the paper's
// model: each RBT node visited or created is one step), so E7 measures
// Theorem 32's amortized O(log p log(p+q)) including GC.
//
// Deviation from the paper (documented in DESIGN.md): GC phases are
// serialized by a try-lock and run by the boundary-crossing process alone
// (no helping), so the collector's worst-case — not amortized — bound is
// weaker than Theorem 32 under a targeted adversary. Space and amortized
// step shapes are faithful.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/ebr.hpp"
#include "core/ordering_tree.hpp"
#include "pbt/persistent_rbt.hpp"
#include "platform/platform.hpp"

namespace wfq::core {

template <typename T, typename Platform = platform::RealPlatform>
class BoundedQueue {
 public:
  using Ebr = core::Ebr<Platform>;
  using Block = TreeBlock<T>;
  using Rbt = pbt::PersistentRbt<Block>;

  /// The tree's Storage hook: every historical read is floor-, tombstone-
  /// and archive-aware (the historical-block-load customization point the
  /// shared core exists for).
  struct ArchiveStorage {
    BoundedQueue* q = nullptr;
    template <typename Node>
    const Block* load_block(const Node* v, int64_t i) const {
      return q->load_block(v, i);
    }
  };

  using Tree = OrderingTree<T, Platform, ArchiveStorage>;
  using Node = typename Tree::Node;
  using BlockArray = typename Tree::BlockArray;

  /// gc_period == 0 selects the paper default G = p^2 ceil(log2 p);
  /// gc_period < 0 (canonically -1) disables collection entirely (the E8
  /// ablation baseline: behaves like the unbounded queue).
  explicit BoundedQueue(int procs, int64_t gc_period = 0)
      : p_(procs < 1 ? 1 : procs),
        storage_{this},
        tree_(p_, storage_),
        ebr_(p_) {
    if (gc_period < 0) {
      g_ = -1;
    } else if (gc_period == 0) {
      auto lg = static_cast<int64_t>(std::bit_width(
          static_cast<unsigned>(p_ > 1 ? p_ - 1 : 1)));  // ceil(log2 p)
      g_ = std::max<int64_t>(4, static_cast<int64_t>(p_) * p_ * lg);
    } else {
      g_ = gc_period;
    }
    window_ = std::max<int64_t>(g_ < 0 ? 4 : g_, 4);
    starts_.reset(new StartSlot[static_cast<size_t>(p_)]);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  ~BoundedQueue() { delete archive_.unsafe_peek(); }

  /// Associates the calling thread with leaf `pid` (0-based, < procs).
  void bind_thread(int pid) {
    assert(pid >= 0 && pid < p_);
    platform::bind_thread(pid);
  }

  void enqueue(T x) {
    int pid = platform::current_pid();
    {
      OpGuard guard(this, pid);
      tree_.append(pid, std::optional<T>(std::move(x)), /*is_enq=*/true);
    }
    after_op();
  }

  std::optional<T> dequeue() {
    int pid = platform::current_pid();
    std::optional<T> out;
    {
      OpGuard guard(this, pid);
      int64_t b = tree_.append(pid, std::nullopt, /*is_enq=*/false);
      auto [rb, r] = tree_.index_op(pid, b, /*is_enq=*/false);
      out = tree_.find_response(rb, r);
    }
    after_op();
    return out;
  }

  // --- debug/introspection surface (uncounted) -----------------------------

  /// Reachable blocks: in-array live suffixes plus archived RBT entries.
  /// Theorem 31: plateaus as ops grow (the unbounded queue's grows ~ ops).
  /// Quiescent-only: peeks the archive without an epoch pin, so a GC phase
  /// running concurrently could retire the version mid-read.
  size_t debug_live_blocks() const {
    size_t total = tree_.debug_live_array_blocks();
    const ArchiveVersion* av = archive_.unsafe_peek();
    if (av != nullptr) total += av->count;
    return total;
  }

  /// Blocks currently archived in the persistent RBT (test surface).
  size_t debug_archived_blocks() const {
    const ArchiveVersion* av = archive_.unsafe_peek();
    return av == nullptr ? 0 : av->count;
  }

  /// Completed GC phases (test surface).
  uint64_t debug_gc_phases() const {
    return gc_phases_.load(std::memory_order_relaxed);
  }

  const Ebr& debug_ebr() const { return ebr_; }

  /// Resolved GC period: the actual G in use, or -1 when disabled.
  int64_t gc_period() const { return g_; }

  int procs() const { return p_; }

 private:
  // --- operation prologue/epilogue (EBR pin + start publication) -----------

  static constexpr int64_t kStartNone = INT64_MAX;
  static constexpr int64_t kStartPending = -1;

  struct alignas(64) StartSlot {
    typename Platform::template Atomic<int64_t> v{kStartNone};
  };

  /// Pins the epoch and publishes the root index observed at op start (the
  /// GC retention scan's input). kStartPending bridges the gap between the
  /// pin and the root read: a scan that observes it skips discarding this
  /// round rather than guessing what the op saw.
  struct OpGuard {
    BoundedQueue* q;
    int pid;
    OpGuard(BoundedQueue* q_in, int pid_in) : q(q_in), pid(pid_in) {
      q->ebr_.pin(pid);
      auto& s = q->starts_[static_cast<size_t>(pid)].v;
      s.store(kStartPending);
      s.store(q->tree_.root()->head.load());
    }
    ~OpGuard() {
      q->starts_[static_cast<size_t>(pid)].v.store(kStartNone);
      q->ebr_.unpin(pid);
    }
  };

  void after_op() {
    if (g_ < 0) return;
    int64_t n = opcount_.fetch_add(1) + 1;
    if (n % g_ == 0) gc_phase();
  }

  // --- block access with archive fallback ----------------------------------

  static uint64_t key_of(const Node* v, int64_t i) {
    // Low 44 bits hold the block index (~17T per node before overflow);
    // masking keeps an out-of-range index from aliasing another node's keys.
    constexpr uint64_t kIndexBits = 44;
    constexpr uint64_t kIndexMask = (uint64_t{1} << kIndexBits) - 1;
    assert(i >= 0 && static_cast<uint64_t>(i) <= kIndexMask);
    return (static_cast<uint64_t>(static_cast<uint32_t>(v->id)) << kIndexBits) |
           (static_cast<uint64_t>(i) & kIndexMask);
  }

  /// Sentinel for probes into discarded history: its monotone fields read
  /// -1 ("before everything"), which steers every search predicate —
  /// end* >= b, sumenq >= e — back toward retained indices. Value-bearing
  /// loads never land here (see the retention argument in the header).
  static const Block& discarded_block() {
    static const Block b = [] {
      Block d;
      d.sumenq = d.sumdeq = d.endleft = d.endright = -1;
      return d;
    }();
    return b;
  }

  const Block* archived(const Node* v, int64_t i) const {
    const ArchiveVersion* av = archive_.load();
    if (i >= 0 && av != nullptr) {
      const Block* b = Rbt::find(av->root, key_of(v, i));
      if (b != nullptr) return b;
    }
    return &discarded_block();
  }

  /// Every historical block read goes through here (via ArchiveStorage):
  /// array first, archive under the floor. Returns nullptr only for
  /// genuinely unfilled frontier slots (the tree's head-helping paths read
  /// the array directly instead).
  const Block* load_block(const Node* v, int64_t i) const {
    if (i == 0) return v->blocks.load(0);  // sentinel is never truncated
    if (i < v->floor.load()) return archived(v, i);
    const Block* b = v->blocks.load(i);
    if (b == BlockArray::tombstone()) return archived(v, i);
    if (b != nullptr) return b;
    // Lost a race with a GC truncation: the floor store precedes the slot
    // tombstone, so re-reading the floor disambiguates truncated vs
    // genuinely unfilled frontier slots.
    if (i < v->floor.load()) return archived(v, i);
    return nullptr;
  }

  // --- the GC phase --------------------------------------------------------

  struct ArchiveVersion {
    typename Rbt::Ptr root;
    size_t count = 0;
  };

  struct Plan {
    Node* v;
    int64_t af_new;
    int64_t k_new;
  };

  void gc_phase() {
    if (!gclock_.cas(0, 1)) return;  // a collection is already running
    collect();
    gc_phases_.fetch_add(1, std::memory_order_relaxed);
    gclock_.store(0);
  }

  void collect() {
    Node* root = tree_.root();
    // 1. Retention scan: the oldest root index any in-flight op observed.
    // `last` MUST be read before the start slots are scanned: an op whose
    // slot was idle when scanned can pin afterwards, and the root head is
    // monotone, so the start it then publishes is >= this `last` and its
    // reads are covered by m <= last. Reading `last` after the scan would
    // let such an op publish a start below a later head — the floor
    // min(be, m) - 2 could then discard blocks its find_response /
    // index_dequeue still needs.
    int64_t last = tree_.last_block_index(root);
    int64_t m = kStartNone;
    bool pending = false;
    for (int i = 0; i < p_; ++i) {
      int64_t s = starts_[static_cast<size_t>(i)].v.load();
      if (s == kStartPending) {
        pending = true;
      } else if (s != kStartNone) {
        m = std::min(m, s);
      }
    }
    m = std::min(m, last);
    if (m < 1) m = 1;

    // 2. New root archive floor: nothing below (block of the oldest enqueue
    // any dequeue that started at or after m can be assigned) - slack may
    // ever be read again. A pending publication freezes discarding this
    // round (truncation into the archive is always safe and proceeds).
    int64_t af_root = root->af;
    if (!pending) {
      const Block* bm = load_block(root, m - 1);
      int64_t e_ret = bm->sumenq - bm->size + 1;
      int64_t be = oldest_root_block_with_sumenq(e_ret, last);
      af_root = std::max(af_root, std::min(be, m) - 2);
      af_root = std::clamp<int64_t>(af_root, 1, last);
    }

    // 3. Array floors (the in-array live suffix, sized by the GC window)
    // and per-child floors derived from retained boundary blocks.
    std::vector<Plan> plans;
    plan_node(root, af_root, last - window_ + 1, plans);

    // 4. New archive version: copy [kfloor, k_new) in, drop [af, af_new).
    const ArchiveVersion* old_av = archive_.load();
    typename Rbt::Ptr aroot = old_av ? old_av->root : Rbt::empty();
    size_t count = old_av ? old_av->count : 0;
    for (const Plan& pl : plans) {
      for (int64_t i = pl.v->af; i < pl.af_new; ++i) {
        typename Rbt::Ptr next = Rbt::erase(aroot, key_of(pl.v, i));
        if (next != aroot) --count;
        aroot = std::move(next);
      }
      for (int64_t i = pl.v->kfloor; i < pl.k_new; ++i) {
        if (i < pl.af_new) continue;  // dead: discarded, never archived
        const Block* b = pl.v->blocks.load(i);
        aroot = Rbt::insert(aroot, key_of(pl.v, i), *b);
        ++count;
      }
    }
    auto* nv = new ArchiveVersion{std::move(aroot), count};
    archive_.store(nv);
    if (old_av != nullptr) {
      ebr_.retire(const_cast<ArchiveVersion*>(old_av),
                  +[](void* p) { delete static_cast<ArchiveVersion*>(p); });
    }

    // 5. Truncate the arrays (floor first — release — then tombstone slots)
    // and retire the detached blocks; then give the epoch a push.
    for (const Plan& pl : plans) {
      pl.v->floor.store(pl.k_new);
      for (int64_t i = pl.v->kfloor; i < pl.k_new; ++i) {
        Block* b = pl.v->blocks.take(i);
        ebr_.retire(b, +[](void* p) { delete static_cast<Block*>(p); });
      }
      pl.v->kfloor = pl.k_new;
      pl.v->af = pl.af_new;
    }
    ebr_.try_advance();
  }

  /// Smallest retained root index whose sumenq reaches e (last+1 if none).
  int64_t oldest_root_block_with_sumenq(int64_t e, int64_t last) const {
    const Node* root = tree_.root();
    int64_t lo = root->af;  // collector-only mirror; lowest readable index
    if (load_block(root, lo)->sumenq >= e) return lo;
    if (load_block(root, last)->sumenq < e) return last + 1;
    int64_t hi = last;  // invariant: sumenq(lo) < e <= sumenq(hi)
    while (lo + 1 < hi) {
      int64_t mid = lo + (hi - lo) / 2;
      if (load_block(root, mid)->sumenq >= e) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return hi;
  }

  void plan_node(Node* v, int64_t af_in, int64_t k_in,
                 std::vector<Plan>& out) {
    int64_t lastv = tree_.last_block_index(v);
    if (lastv < 1) {
      // Sentinel-only node (an idle process's leaf, or a subtree whose
      // appends have not propagated here yet): nothing to archive or
      // truncate, and no boundary block to derive child floors from —
      // keep the children's floors where they are.
      out.push_back({v, v->af, v->kfloor});
      if (!v->is_leaf) {
        plan_node(v->left, 1, 1, out);
        plan_node(v->right, 1, 1, out);
      }
      return;
    }
    int64_t af_new = std::clamp<int64_t>(std::max(v->af, af_in), 1, lastv);
    int64_t k_new =
        std::clamp<int64_t>(std::max(v->kfloor, k_in), af_new, lastv);
    out.push_back({v, af_new, k_new});
    if (!v->is_leaf) {
      // Readers retained at this node use block PAIRS (j-1, j) for
      // j >= af_new, and the pair (af_new - 1, af_new) spans child blocks
      // starting just past end*(af_new - 1) — so the children's floors must
      // be seeded from the end pointers of block af_new - 1, not af_new
      // (seeding from af_new discards child blocks that pair still needs).
      // When af_new did not move this round, block af_new - 1 was discarded
      // by the round that set it; the sentinel's -1 endpoints then leave
      // the children's floors unchanged, which is exactly right because
      // that earlier round already seeded them from this pair.
      const Block* baf = load_block(v, af_new - 1);
      const Block* bk = load_block(v, std::max(k_new - 1, af_new));
      plan_node(v->left, baf->endleft, bk->endleft, out);
      plan_node(v->right, baf->endright, bk->endright, out);
    }
  }

  // --- members -------------------------------------------------------------

  int p_;
  int64_t g_;       // resolved GC period (-1 = disabled)
  int64_t window_;  // in-array suffix target per node (~G)
  ArchiveStorage storage_;
  Tree tree_;
  std::unique_ptr<StartSlot[]> starts_;
  Ebr ebr_;
  typename Platform::template Atomic<int64_t> opcount_{0};
  typename Platform::template Atomic<int> gclock_{0};
  typename Platform::template Atomic<const ArchiveVersion*> archive_{nullptr};
  std::atomic<uint64_t> gc_phases_{0};
};

}  // namespace wfq::core
