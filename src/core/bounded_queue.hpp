// Bounded-space variant of the wait-free queue (paper Section 6,
// Theorems 31/32): tree nodes keep only a suffix of their block arrays, with
// a GC phase every `gc_period` appends that copies the live suffix through a
// persistent red-black tree so space stays O(p*q_max + p^3 log p).
//
// STUB: forwards to the unbounded queue so every bench compiles and runs with
// correct FIFO semantics and step counts; gc_period is accepted but no memory
// is reclaimed yet (debug_live_blocks() therefore grows like the unbounded
// queue's). The real implementation, together with pbt/persistent_rbt.hpp,
// is the next tentpole — see ROADMAP "Open items".
#pragma once

#include <cstdint>
#include <optional>

#include "core/unbounded_queue.hpp"
#include "pbt/persistent_rbt.hpp"

namespace wfq::core {

template <typename T, typename Platform = platform::RealPlatform>
class BoundedQueue {
 public:
  /// Epoch-based-reclamation introspection surface (E6 prints the backlog of
  /// retired-but-not-yet-freed blocks). Nothing is retired in the stub.
  struct Ebr {
    uint64_t retired_count() const { return 0; }
  };

  /// gc_period <= 0 selects the paper default G = p^2 * ceil(log2 p)
  /// (gc_period == -1 disables GC in the ablation bench; identical here
  /// because the stub never collects).
  explicit BoundedQueue(int procs, int64_t gc_period = 0)
      : q_(procs), gc_period_(gc_period) {}

  void bind_thread(int pid) { q_.bind_thread(pid); }
  void enqueue(T x) { q_.enqueue(std::move(x)); }
  std::optional<T> dequeue() { return q_.dequeue(); }

  size_t debug_live_blocks() const { return q_.debug_total_blocks(); }
  const Ebr& debug_ebr() const { return ebr_; }
  int64_t gc_period() const { return gc_period_; }

 private:
  UnboundedQueue<T, Platform> q_;
  int64_t gc_period_;
  Ebr ebr_;
};

}  // namespace wfq::core
