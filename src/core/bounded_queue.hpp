// Bounded-space variant of the wait-free queue (paper Section 6, Theorems
// 31/32). Same ordering-tree core as core/unbounded_queue.hpp — leaf Append,
// double-Refresh propagation, IndexDequeue, FindResponse — but every node
// keeps only a *live suffix* of its block array:
//
//  - Every G completed operations (the `gc_period`; 0 selects the paper
//    default G = p^2 ceil(log2 p), negative disables collection for the E8
//    ablation) the operation crossing the boundary runs a GC phase.
//  - The GC phase computes, per node, an archive floor `af` (everything
//    below it is dead: unreachable by the live queue contents and by every
//    in-flight operation) and an array floor `k` (the suffix that stays in
//    the mutable block array, sized by the GC window ~ G). Blocks in
//    [af, k) are copied into a path-copying persistent red-black tree
//    (pbt/persistent_rbt.hpp) keyed by (node id, block index); blocks below
//    af are discarded. Truncated array slots are tombstoned — never reset
//    to null, so a stalled refresher's install CAS cannot resurrect a stale
//    block into a collected index — and the Block objects are retired into
//    an epoch-based-reclamation layer (core/ebr.hpp) so a concurrent reader
//    holding a raw pointer never sees freed memory.
//  - Readers route every historical block access through load_block(): an
//    index under the node's floor falls back to a lookup in the current
//    archive version. Archive versions are immutable RBT snapshots swapped
//    atomically; superseded versions are EBR-retired, which is exactly why
//    the tree must be persistent — a dequeue may keep reading an old
//    version while a GC phase installs the next one.
//
// Liveness reasoning for the archive floor (what makes discarding safe):
// every operation publishes the root index observed at its start. The
// collector reads `last` (the root's last block index) *before* scanning
// the start slots, so any op that pins after its slot was scanned
// publishes a start >= last (the head is monotone). With
// m = min(active starts, root last) the oldest enqueue any in-flight or
// future dequeue can be assigned is front(m-1) = sumenq(m-1)-size(m-1)+1,
// so retaining root blocks >= min(block of front(m-1), m) - 2 — and, per
// child, everything from the end-pointers of the block PRECEDING the
// parent's archive floor (readers consume parent blocks in pairs (j-1, j),
// so the pair at the floor itself spans child blocks from the end-pointers
// of floor - 1) — covers every value-bearing load. Searches (superblock
// gallop, Lemma-20 doubling) may *probe* below the floor; a discarded
// probe answers with a sentinel whose monotone fields (-1) steer the
// search back up, which is safe because all three search predicates are
// monotone in the block index.
//
// Reachable space: in-array suffixes are O(G) per node, the archive holds
// O(q_max + p) live blocks, and the EBR backlog is transient (bounded by
// ~3 GC phases) — Theorem 31's O(p q_max + p^3 log p) with G = p^2 log p.
// Every archive access is charged through note_rbt_touch (the paper's
// model: each RBT node visited or created is one step), so E7 measures
// Theorem 32's amortized O(log p log(p+q)) including GC.
//
// Deviation from the paper (documented in DESIGN.md): GC phases are
// serialized by a try-lock and run by the boundary-crossing process alone
// (no helping), so the collector's worst-case — not amortized — bound is
// weaker than Theorem 32 under a targeted adversary. Space and amortized
// step shapes are faithful.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/ebr.hpp"
#include "pbt/persistent_rbt.hpp"
#include "platform/platform.hpp"

namespace wfq::core {

template <typename T, typename Platform = platform::RealPlatform>
class BoundedQueue {
 public:
  using Ebr = core::Ebr<Platform>;

  struct Block {
    std::optional<T> element;  // leaf enqueue blocks only
    int64_t sumenq = 0;
    int64_t sumdeq = 0;
    int64_t endleft = 0;   // internal nodes only
    int64_t endright = 0;  // internal nodes only
    int64_t size = 0;      // root blocks only
    int64_t super = 0;     // superblock-index hint (non-root blocks)
  };

  using Rbt = pbt::PersistentRbt<Block>;

  /// gc_period == 0 selects the paper default G = p^2 ceil(log2 p);
  /// gc_period < 0 (canonically -1) disables collection entirely (the E8
  /// ablation baseline: behaves like the unbounded queue).
  explicit BoundedQueue(int procs, int64_t gc_period = 0)
      : p_(procs < 1 ? 1 : procs), ebr_(p_) {
    if (gc_period < 0) {
      g_ = -1;
    } else if (gc_period == 0) {
      auto lg = static_cast<int64_t>(std::bit_width(
          static_cast<unsigned>(p_ > 1 ? p_ - 1 : 1)));  // ceil(log2 p)
      g_ = std::max<int64_t>(4, static_cast<int64_t>(p_) * p_ * lg);
    } else {
      g_ = gc_period;
    }
    window_ = std::max<int64_t>(g_ < 0 ? 4 : g_, 4);
    unsigned width = std::bit_ceil(static_cast<unsigned>(p_));
    root_ = build_tree(nullptr, width);
    collect_leaves(root_);
    starts_.reset(new StartSlot[static_cast<size_t>(p_)]);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  ~BoundedQueue() {
    delete archive_.unsafe_peek();
    delete_tree(root_);
  }

  /// Associates the calling thread with leaf `pid` (0-based, < procs).
  void bind_thread(int pid) {
    assert(pid >= 0 && pid < p_);
    platform::bind_thread(pid);
  }

  void enqueue(T x) {
    int pid = platform::current_pid();
    Node* leaf = leaves_[static_cast<size_t>(pid)];
    {
      OpGuard guard(this, pid);
      append_leaf(leaf, std::optional<T>(std::move(x)), /*is_enq=*/true);
      propagate(leaf->parent);
    }
    after_op();
  }

  std::optional<T> dequeue() {
    int pid = platform::current_pid();
    Node* leaf = leaves_[static_cast<size_t>(pid)];
    std::optional<T> out;
    {
      OpGuard guard(this, pid);
      int64_t b = append_leaf(leaf, std::nullopt, /*is_enq=*/false);
      propagate(leaf->parent);
      auto [rb, r] = index_dequeue(leaf, b);
      out = find_response(rb, r);
    }
    after_op();
    return out;
  }

  // --- debug/introspection surface (uncounted) -----------------------------

  /// Reachable blocks: in-array live suffixes plus archived RBT entries.
  /// Theorem 31: plateaus as ops grow (the unbounded queue's grows ~ ops).
  /// Quiescent-only: peeks the archive without an epoch pin, so a GC phase
  /// running concurrently could retire the version mid-read.
  size_t debug_live_blocks() const {
    size_t total = 0;
    count_live(root_, total);
    const ArchiveVersion* av = archive_.unsafe_peek();
    if (av != nullptr) total += av->count;
    return total;
  }

  /// Blocks currently archived in the persistent RBT (test surface).
  size_t debug_archived_blocks() const {
    const ArchiveVersion* av = archive_.unsafe_peek();
    return av == nullptr ? 0 : av->count;
  }

  /// Completed GC phases (test surface).
  uint64_t debug_gc_phases() const {
    return gc_phases_.load(std::memory_order_relaxed);
  }

  const Ebr& debug_ebr() const { return ebr_; }

  /// Resolved GC period: the actual G in use, or -1 when disabled.
  int64_t gc_period() const { return g_; }

  int procs() const { return p_; }

 private:
  // --- tree ----------------------------------------------------------------

  /// Append-only block array with geometric segments (same scheme as the
  /// unbounded queue's), plus `take` for GC truncation: slots below a
  /// node's floor are tombstoned and their blocks handed to EBR.
  class BlockArray {
   public:
    BlockArray() = default;
    BlockArray(const BlockArray&) = delete;
    BlockArray& operator=(const BlockArray&) = delete;

    ~BlockArray() {
      for (int k = 0; k < kSegments; ++k) {
        Slot* seg = segs_[k].load(std::memory_order_acquire);
        if (!seg) continue;
        int64_t n = int64_t{1} << (k + kBaseBits);
        for (int64_t j = 0; j < n; ++j) {
          Block* b = seg[j].unsafe_peek();
          if (b != tombstone()) delete b;
        }
        delete[] seg;
      }
    }

    /// Reserved marker stored into truncated slots. Slots go null -> block
    /// -> tombstone and never back: if take() nulled the slot instead, a
    /// refresher that built its block long ago and stalled before its
    /// install CAS (which expects null) could resurrect a STALE block into
    /// a truncated index (ABA), and readers still holding the old floor
    /// would read wrong sums through it.
    static Block* tombstone() {
      static Block t;
      return &t;
    }

    Block* load(int64_t i) const { return slot(i).load(); }
    void store(int64_t i, Block* b) { slot(i).store(b); }
    bool cas(int64_t i, Block* b) { return slot(i).cas(nullptr, b); }

    /// GC truncation: detaches and returns the block at `i` (the slot
    /// becomes a tombstone; the caller retires the block through EBR).
    Block* take(int64_t i) {
      Slot& s = slot(i);
      Block* b = s.load();
      s.store(tombstone());
      return b;
    }

    Block* unsafe_peek(int64_t i) const { return slot(i).unsafe_peek(); }
    void unsafe_install(int64_t i, Block* b) { slot(i).unsafe_store(b); }

   private:
    using Slot = typename Platform::template Atomic<Block*>;
    static constexpr int kBaseBits = 6;
    static constexpr int kSegments = 42;

    Slot& slot(int64_t i) const {
      uint64_t base = static_cast<uint64_t>(i) + (uint64_t{1} << kBaseBits);
      int k = std::bit_width(base) - 1 - kBaseBits;
      int64_t off =
          static_cast<int64_t>(base - (uint64_t{1} << (k + kBaseBits)));
      return segment(k)[off];
    }

    Slot* segment(int k) const {
      Slot* seg = segs_[k].load(std::memory_order_acquire);
      if (seg) return seg;
      int64_t n = int64_t{1} << (k + kBaseBits);
      Slot* fresh = new Slot[static_cast<size_t>(n)]();
      Slot* expected = nullptr;
      if (segs_[k].compare_exchange_strong(expected, fresh,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        return fresh;
      }
      delete[] fresh;
      return expected;
    }

    mutable std::atomic<Slot*> segs_[kSegments] = {};
  };

  struct Node {
    Node* parent = nullptr;
    Node* left = nullptr;
    Node* right = nullptr;
    bool is_leaf = false;
    bool is_root = false;
    int leaf_pid = -1;
    int id = 0;  // archive key prefix
    typename Platform::template Atomic<int64_t> head{1};
    /// Lowest index still present in the array; indices in [1, floor) have
    /// been truncated (archive or discarded). Raised (release) before the
    /// slots are nulled, so a null slot under the floor is unambiguous.
    typename Platform::template Atomic<int64_t> floor{1};
    BlockArray blocks;
    // Collector-only mirrors (guarded by the gc lock, never read by ops):
    int64_t af = 1;      // archive floor: lowest index kept anywhere
    int64_t kfloor = 1;  // mirror of `floor` without counted loads
  };

  Node* build_tree(Node* parent, unsigned width) {
    Node* n = new Node;
    n->parent = parent;
    n->is_root = (parent == nullptr);
    n->id = next_id_++;
    n->blocks.unsafe_install(0, new Block{});  // sentinel: all fields zero
    if (width == 1) {
      n->is_leaf = true;
    } else {
      n->left = build_tree(n, width / 2);
      n->right = build_tree(n, width / 2);
    }
    return n;
  }

  void collect_leaves(Node* n) {
    if (n->is_leaf) {
      n->leaf_pid = static_cast<int>(leaves_.size());
      leaves_.push_back(n);
      return;
    }
    collect_leaves(n->left);
    collect_leaves(n->right);
  }

  void delete_tree(Node* n) {
    if (!n) return;
    delete_tree(n->left);
    delete_tree(n->right);
    delete n;
  }

  void count_live(const Node* n, size_t& total) const {
    if (!n) return;
    int64_t h = n->head.unsafe_peek();
    if (n->blocks.unsafe_peek(h) != nullptr) ++h;
    int64_t fl = std::max<int64_t>(n->floor.unsafe_peek(), 1);
    if (h > fl) total += static_cast<size_t>(h - fl);
    count_live(n->left, total);
    count_live(n->right, total);
  }

  // --- operation prologue/epilogue (EBR pin + start publication) -----------

  static constexpr int64_t kStartNone = INT64_MAX;
  static constexpr int64_t kStartPending = -1;

  struct alignas(64) StartSlot {
    typename Platform::template Atomic<int64_t> v{kStartNone};
  };

  /// Pins the epoch and publishes the root index observed at op start (the
  /// GC retention scan's input). kStartPending bridges the gap between the
  /// pin and the root read: a scan that observes it skips discarding this
  /// round rather than guessing what the op saw.
  struct OpGuard {
    BoundedQueue* q;
    int pid;
    OpGuard(BoundedQueue* q_in, int pid_in) : q(q_in), pid(pid_in) {
      q->ebr_.pin(pid);
      auto& s = q->starts_[static_cast<size_t>(pid)].v;
      s.store(kStartPending);
      s.store(q->root_->head.load());
    }
    ~OpGuard() {
      q->starts_[static_cast<size_t>(pid)].v.store(kStartNone);
      q->ebr_.unpin(pid);
    }
  };

  void after_op() {
    if (g_ < 0) return;
    int64_t n = opcount_.fetch_add(1) + 1;
    if (n % g_ == 0) gc_phase();
  }

  // --- block access with archive fallback ----------------------------------

  static uint64_t key_of(const Node* v, int64_t i) {
    // Low 44 bits hold the block index (~17T per node before overflow);
    // masking keeps an out-of-range index from aliasing another node's keys.
    constexpr uint64_t kIndexBits = 44;
    constexpr uint64_t kIndexMask = (uint64_t{1} << kIndexBits) - 1;
    assert(i >= 0 && static_cast<uint64_t>(i) <= kIndexMask);
    return (static_cast<uint64_t>(static_cast<uint32_t>(v->id)) << kIndexBits) |
           (static_cast<uint64_t>(i) & kIndexMask);
  }

  /// Sentinel for probes into discarded history: its monotone fields read
  /// -1 ("before everything"), which steers every search predicate —
  /// end* >= b, sumenq >= e — back toward retained indices. Value-bearing
  /// loads never land here (see the retention argument in the header).
  static const Block& discarded_block() {
    static const Block b = [] {
      Block d;
      d.sumenq = d.sumdeq = d.endleft = d.endright = -1;
      return d;
    }();
    return b;
  }

  const Block* archived(const Node* v, int64_t i) const {
    const ArchiveVersion* av = archive_.load();
    if (i >= 0 && av != nullptr) {
      const Block* b = Rbt::find(av->root, key_of(v, i));
      if (b != nullptr) return b;
    }
    return &discarded_block();
  }

  /// Every historical block read goes through here: array first, archive
  /// under the floor. Returns nullptr only for genuinely unfilled frontier
  /// slots (the head-helping paths read the array directly instead).
  const Block* load_block(const Node* v, int64_t i) const {
    if (i == 0) return v->blocks.load(0);  // sentinel is never truncated
    if (i < v->floor.load()) return archived(v, i);
    const Block* b = v->blocks.load(i);
    if (b == BlockArray::tombstone()) return archived(v, i);
    if (b != nullptr) return b;
    // Lost a race with a GC truncation: the floor store precedes the slot
    // tombstone, so re-reading the floor disambiguates truncated vs
    // genuinely unfilled frontier slots.
    if (i < v->floor.load()) return archived(v, i);
    return nullptr;
  }

  // --- append & propagation (as the unbounded queue, floor-aware loads) ----

  int64_t append_leaf(Node* leaf, std::optional<T> elem, bool is_enq) {
    int64_t h = leaf->head.load();
    const Block* prev = load_block(leaf, h - 1);
    Block* b = new Block;
    b->element = std::move(elem);
    b->sumenq = prev->sumenq + (is_enq ? 1 : 0);
    b->sumdeq = prev->sumdeq + (is_enq ? 0 : 1);
    if (leaf->is_root) {
      b->size = std::max<int64_t>(0, prev->size + (is_enq ? 1 : -1));
    } else {
      b->super = leaf->parent->head.load();
    }
    leaf->blocks.store(h, b);
    leaf->head.store(h + 1);
    return h;
  }

  int64_t last_block_index(const Node* v) const {
    int64_t h = v->head.load();
    if (v->blocks.load(h) != nullptr) return h;
    return h - 1;
  }

  void propagate(Node* v) {
    while (v != nullptr) {
      if (!refresh(v)) refresh(v);
      v = v->parent;
    }
  }

  bool refresh(Node* v) {
    int64_t h = v->head.load();
    while (v->blocks.load(h) != nullptr) {  // stale head: help it forward
      v->head.cas(h, h + 1);
      h = v->head.load();
    }
    const Block* prev = load_block(v, h - 1);
    int64_t lend = last_block_index(v->left);
    int64_t rend = last_block_index(v->right);
    if (lend == prev->endleft && rend == prev->endright) return true;
    Block* nb = new Block;
    nb->endleft = lend;
    nb->endright = rend;
    nb->sumenq = load_block(v->left, lend)->sumenq +
                 load_block(v->right, rend)->sumenq;
    nb->sumdeq = load_block(v->left, lend)->sumdeq +
                 load_block(v->right, rend)->sumdeq;
    if (v->is_root) {
      int64_t numenq = nb->sumenq - prev->sumenq;
      int64_t numdeq = nb->sumdeq - prev->sumdeq;
      nb->size = std::max<int64_t>(0, prev->size + numenq - numdeq);
    } else {
      nb->super = v->parent->head.load();
    }
    if (v->blocks.cas(h, nb)) {
      v->head.cas(h, h + 1);
      return true;
    }
    delete nb;
    v->head.cas(h, h + 1);
    return false;
  }

  // --- dequeue path (as the unbounded queue, floor-aware loads) ------------

  std::pair<int64_t, int64_t> index_dequeue(Node* v, int64_t b) {
    int64_t i = 1;
    while (!v->is_root) {
      Node* par = v->parent;
      bool from_left = (par->left == v);
      int64_t hint = load_block(v, b)->super;
      int64_t s = find_superblock(par, from_left, b, hint);
      const Block* sb = load_block(par, s);
      const Block* sp = load_block(par, s - 1);
      int64_t start = from_left ? sp->endleft : sp->endright;
      i += load_block(v, b - 1)->sumdeq - load_block(v, start)->sumdeq;
      if (!from_left) {
        i += load_block(par->left, sb->endleft)->sumdeq -
             load_block(par->left, sp->endleft)->sumdeq;
      }
      v = par;
      b = s;
    }
    return {b, i};
  }

  int64_t find_superblock(Node* par, bool from_left, int64_t b, int64_t hint) {
    auto end_of = [&](int64_t s) {
      const Block* blk = load_block(par, s);
      return from_left ? blk->endleft : blk->endright;
    };
    int64_t last = last_block_index(par);
    int64_t h0 = std::clamp<int64_t>(hint, 1, last);
    int64_t lo, hi;  // invariant: end_of(lo) < b <= end_of(hi)
    if (end_of(h0) >= b) {
      hi = h0;
      int64_t step = 1;
      lo = h0 - step;
      while (lo > 0 && end_of(lo) >= b) {
        hi = lo;
        step <<= 1;
        lo = h0 - step;
      }
      if (lo < 0) lo = 0;
    } else {
      lo = h0;
      int64_t step = 1;
      hi = h0 + step;
      while (hi < last && end_of(hi) < b) {
        lo = hi;
        step <<= 1;
        hi = h0 + step;
      }
      if (hi > last) hi = last;
    }
    while (lo + 1 < hi) {
      int64_t mid = lo + (hi - lo) / 2;
      if (end_of(mid) >= b) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return hi;
  }

  std::optional<T> find_response(int64_t b, int64_t r) {
    const Block* prev = load_block(root_, b - 1);
    const Block* cur = load_block(root_, b);
    int64_t numenq = cur->sumenq - prev->sumenq;
    if (r > prev->size + numenq) return std::nullopt;
    int64_t e = prev->sumenq - prev->size + r;
    int64_t hi = b;
    int64_t step = 1;
    int64_t lo = std::max<int64_t>(b - step, 0);
    while (lo > 0 && load_block(root_, lo)->sumenq >= e) {
      hi = lo;
      step <<= 1;
      lo = std::max<int64_t>(b - step, 0);
    }
    while (lo + 1 < hi) {
      int64_t mid = lo + (hi - lo) / 2;
      if (load_block(root_, mid)->sumenq >= e) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    int64_t i = e - load_block(root_, hi - 1)->sumenq;
    return get_enqueue(root_, hi, i);
  }

  std::optional<T> get_enqueue(Node* v, int64_t b, int64_t i) {
    while (!v->is_leaf) {
      const Block* cur = load_block(v, b);
      const Block* prev = load_block(v, b - 1);
      Node* child;
      int64_t lo, hi;
      int64_t numleft = load_block(v->left, cur->endleft)->sumenq -
                        load_block(v->left, prev->endleft)->sumenq;
      if (i <= numleft) {
        child = v->left;
        lo = prev->endleft;
        hi = cur->endleft;
      } else {
        child = v->right;
        lo = prev->endright;
        hi = cur->endright;
        i -= numleft;
      }
      int64_t target = load_block(child, lo)->sumenq + i;
      while (lo + 1 < hi) {
        int64_t mid = lo + (hi - lo) / 2;
        if (load_block(child, mid)->sumenq >= target) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      i = target - load_block(child, hi - 1)->sumenq;
      v = child;
      b = hi;
    }
    return load_block(v, b)->element;
  }

  // --- the GC phase --------------------------------------------------------

  struct ArchiveVersion {
    typename Rbt::Ptr root;
    size_t count = 0;
  };

  struct Plan {
    Node* v;
    int64_t af_new;
    int64_t k_new;
  };

  void gc_phase() {
    if (!gclock_.cas(0, 1)) return;  // a collection is already running
    collect();
    gc_phases_.fetch_add(1, std::memory_order_relaxed);
    gclock_.store(0);
  }

  void collect() {
    // 1. Retention scan: the oldest root index any in-flight op observed.
    // `last` MUST be read before the start slots are scanned: an op whose
    // slot was idle when scanned can pin afterwards, and the root head is
    // monotone, so the start it then publishes is >= this `last` and its
    // reads are covered by m <= last. Reading `last` after the scan would
    // let such an op publish a start below a later head — the floor
    // min(be, m) - 2 could then discard blocks its find_response /
    // index_dequeue still needs.
    int64_t last = last_block_index(root_);
    int64_t m = kStartNone;
    bool pending = false;
    for (int i = 0; i < p_; ++i) {
      int64_t s = starts_[static_cast<size_t>(i)].v.load();
      if (s == kStartPending) {
        pending = true;
      } else if (s != kStartNone) {
        m = std::min(m, s);
      }
    }
    m = std::min(m, last);
    if (m < 1) m = 1;

    // 2. New root archive floor: nothing below (block of the oldest enqueue
    // any dequeue that started at or after m can be assigned) - slack may
    // ever be read again. A pending publication freezes discarding this
    // round (truncation into the archive is always safe and proceeds).
    int64_t af_root = root_->af;
    if (!pending) {
      const Block* bm = load_block(root_, m - 1);
      int64_t e_ret = bm->sumenq - bm->size + 1;
      int64_t be = oldest_root_block_with_sumenq(e_ret, last);
      af_root = std::max(af_root, std::min(be, m) - 2);
      af_root = std::clamp<int64_t>(af_root, 1, last);
    }

    // 3. Array floors (the in-array live suffix, sized by the GC window)
    // and per-child floors derived from retained boundary blocks.
    std::vector<Plan> plans;
    plan_node(root_, af_root, last - window_ + 1, plans);

    // 4. New archive version: copy [kfloor, k_new) in, drop [af, af_new).
    const ArchiveVersion* old_av = archive_.load();
    typename Rbt::Ptr aroot = old_av ? old_av->root : Rbt::empty();
    size_t count = old_av ? old_av->count : 0;
    for (const Plan& pl : plans) {
      for (int64_t i = pl.v->af; i < pl.af_new; ++i) {
        typename Rbt::Ptr next = Rbt::erase(aroot, key_of(pl.v, i));
        if (next != aroot) --count;
        aroot = std::move(next);
      }
      for (int64_t i = pl.v->kfloor; i < pl.k_new; ++i) {
        if (i < pl.af_new) continue;  // dead: discarded, never archived
        const Block* b = pl.v->blocks.load(i);
        aroot = Rbt::insert(aroot, key_of(pl.v, i), *b);
        ++count;
      }
    }
    auto* nv = new ArchiveVersion{std::move(aroot), count};
    archive_.store(nv);
    if (old_av != nullptr) {
      ebr_.retire(const_cast<ArchiveVersion*>(old_av),
                  +[](void* p) { delete static_cast<ArchiveVersion*>(p); });
    }

    // 5. Truncate the arrays (floor first — release — then null slots) and
    // retire the detached blocks; then give the epoch a push.
    for (const Plan& pl : plans) {
      pl.v->floor.store(pl.k_new);
      for (int64_t i = pl.v->kfloor; i < pl.k_new; ++i) {
        Block* b = pl.v->blocks.take(i);
        ebr_.retire(b, +[](void* p) { delete static_cast<Block*>(p); });
      }
      pl.v->kfloor = pl.k_new;
      pl.v->af = pl.af_new;
    }
    ebr_.try_advance();
  }

  /// Smallest retained root index whose sumenq reaches e (last+1 if none).
  int64_t oldest_root_block_with_sumenq(int64_t e, int64_t last) const {
    int64_t lo = root_->af;  // collector-only mirror; lowest readable index
    if (load_block(root_, lo)->sumenq >= e) return lo;
    if (load_block(root_, last)->sumenq < e) return last + 1;
    int64_t hi = last;  // invariant: sumenq(lo) < e <= sumenq(hi)
    while (lo + 1 < hi) {
      int64_t mid = lo + (hi - lo) / 2;
      if (load_block(root_, mid)->sumenq >= e) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return hi;
  }

  void plan_node(Node* v, int64_t af_in, int64_t k_in,
                 std::vector<Plan>& out) {
    int64_t lastv = last_block_index(v);
    if (lastv < 1) {
      // Sentinel-only node (an idle process's leaf, or a subtree whose
      // appends have not propagated here yet): nothing to archive or
      // truncate, and no boundary block to derive child floors from —
      // keep the children's floors where they are.
      out.push_back({v, v->af, v->kfloor});
      if (!v->is_leaf) {
        plan_node(v->left, 1, 1, out);
        plan_node(v->right, 1, 1, out);
      }
      return;
    }
    int64_t af_new = std::clamp<int64_t>(std::max(v->af, af_in), 1, lastv);
    int64_t k_new =
        std::clamp<int64_t>(std::max(v->kfloor, k_in), af_new, lastv);
    out.push_back({v, af_new, k_new});
    if (!v->is_leaf) {
      // Readers retained at this node use block PAIRS (j-1, j) for
      // j >= af_new, and the pair (af_new - 1, af_new) spans child blocks
      // starting just past end*(af_new - 1) — so the children's floors must
      // be seeded from the end pointers of block af_new - 1, not af_new
      // (seeding from af_new discards child blocks that pair still needs).
      // When af_new did not move this round, block af_new - 1 was discarded
      // by the round that set it; the sentinel's -1 endpoints then leave
      // the children's floors unchanged, which is exactly right because
      // that earlier round already seeded them from this pair.
      const Block* baf = load_block(v, af_new - 1);
      const Block* bk = load_block(v, std::max(k_new - 1, af_new));
      plan_node(v->left, baf->endleft, bk->endleft, out);
      plan_node(v->right, baf->endright, bk->endright, out);
    }
  }

  // --- members -------------------------------------------------------------

  int p_;
  int64_t g_;        // resolved GC period (-1 = disabled)
  int64_t window_;   // in-array suffix target per node (~G)
  int next_id_ = 0;  // node id source during build
  Node* root_ = nullptr;
  std::vector<Node*> leaves_;
  std::unique_ptr<StartSlot[]> starts_;
  Ebr ebr_;
  typename Platform::template Atomic<int64_t> opcount_{0};
  typename Platform::template Atomic<int> gclock_{0};
  typename Platform::template Atomic<const ArchiveVersion*> archive_{nullptr};
  std::atomic<uint64_t> gc_phases_{0};
};

}  // namespace wfq::core
