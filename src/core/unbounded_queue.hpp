// The paper's wait-free FIFO queue with polylogarithmic worst-case step
// complexity (Naderibeni & Ruppert, PODC 2023), unbounded-space variant.
//
// Thin client of the shared ordering-tree core (core/ordering_tree.hpp,
// ISSUE 5): an enqueue is a leaf Append + double-Refresh propagation; a
// dequeue appends its own block, locates itself in the root ordering
// (IndexDequeue: walk up, O(log p) levels, gallop-from-hint per level),
// decides null-vs-value from the root block's size prefix, and finds the
// enqueue it returns with the Lemma-20 doubling search (cost grows with the
// distance back to the enqueue's block — i.e. with log of the queue size —
// not with the total history length; see experiments E10/E12), then descends
// to the enqueue's leaf to read the element.
//
// Storage policy: DirectStorage — every historical block read is a plain
// (counted) array load; nothing is ever truncated. The bounded-space variant
// (core/bounded_queue.hpp) instantiates the same tree with an archive-aware
// policy instead.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>

#include "core/ordering_tree.hpp"
#include "platform/platform.hpp"

namespace wfq::core {

template <typename T, typename Platform = platform::RealPlatform>
class UnboundedQueue {
 public:
  using Tree = OrderingTree<T, Platform, DirectStorage>;
  using Block = typename Tree::Block;
  using Node = typename Tree::Node;

  explicit UnboundedQueue(int procs) : tree_(procs, storage_) {}

  UnboundedQueue(const UnboundedQueue&) = delete;
  UnboundedQueue& operator=(const UnboundedQueue&) = delete;

  /// Associates the calling thread with leaf `pid` (0-based, < procs).
  void bind_thread(int pid) {
    assert(pid >= 0 && pid < tree_.procs());
    platform::bind_thread(pid);
  }

  void enqueue(T x) {
    tree_.append(platform::current_pid(), std::optional<T>(std::move(x)),
                 /*is_enq=*/true);
  }

  std::optional<T> dequeue() {
    int pid = platform::current_pid();
    int64_t b = tree_.append(pid, std::nullopt, /*is_enq=*/false);
    auto [rb, r] = tree_.index_op(pid, b, /*is_enq=*/false);
    return tree_.find_response(rb, r);
  }

  // --- debug/introspection surface (uncounted) -----------------------------

  const Node* debug_root() const { return tree_.root(); }
  const Node* debug_leaf(int pid) const { return tree_.leaf(pid); }

  /// Number of blocks ever appended across all nodes (excluding sentinels).
  size_t debug_total_blocks() const { return tree_.debug_total_blocks(); }

  int procs() const { return tree_.procs(); }

 private:
  DirectStorage storage_;
  Tree tree_;
};

}  // namespace wfq::core
