// The paper's wait-free FIFO queue with polylogarithmic worst-case step
// complexity (Naderibeni & Ruppert, PODC 2023), unbounded-space variant.
//
// Structure: a static tournament ("ordering") tree with one leaf per process.
// Every node holds an append-only array of immutable Blocks plus a head index.
// An operation appends a block at its own leaf, then propagates to the root
// with the double-Refresh idiom: each Refresh tries to CAS one new block into
// the parent that merges every child block not yet merged. Agreement on the
// root's block sequence induces the linearization: blocks in index order;
// within a block, enqueues before dequeues; within each kind, left-subtree
// operations before right-subtree ones.
//
// Blocks carry the paper's "implicit" fields materialized at creation time
// (each is written once before the block is published, so readers never see
// partial values):
//   sumenq/sumdeq — cumulative enqueue/dequeue counts in this node's subtree
//                   up to and including this block;
//   endleft/endright — index of the last child block merged (internal nodes);
//   size — queue size after this block's operations (root only), clamped at 0
//          so null dequeues do not drive it negative;
//   super — hint: parent's head index read just before this block was
//           published; the true superblock index is >= super and within the
//           append contention of it, so a gallop from the hint costs
//           O(log contention) (the paper's log-c factor).
//
// A dequeue locates itself in the root ordering (IndexDequeue: walk up,
// O(log p) levels, gallop-from-hint per level), decides null-vs-value from
// the root block's size prefix, and finds the enqueue it returns with the
// Lemma-20 doubling search (cost grows with the distance back to the
// enqueue's block — i.e. with log of the queue size — not with the total
// history length; see experiments E10/E12, bench_runner -e doubling_search
// / -e search_ablation), then
// descends to the enqueue's leaf to read the element.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "platform/platform.hpp"

namespace wfq::core {

template <typename T, typename Platform = platform::RealPlatform>
class UnboundedQueue {
 public:
  struct Block {
    std::optional<T> element;  // leaf enqueue blocks only
    int64_t sumenq = 0;
    int64_t sumdeq = 0;
    int64_t endleft = 0;   // internal nodes only
    int64_t endright = 0;  // internal nodes only
    int64_t size = 0;      // root blocks only
    int64_t super = 0;     // superblock-index hint (non-root blocks)
  };

  /// Append-only unbounded block array: geometrically growing segments
  /// installed on demand with an (uncounted, bookkeeping-only) directory CAS.
  /// Slot accesses go through Platform atomics and count as shared steps.
  class BlockArray {
   public:
    BlockArray() = default;
    BlockArray(const BlockArray&) = delete;
    BlockArray& operator=(const BlockArray&) = delete;

    ~BlockArray() {
      for (int k = 0; k < kSegments; ++k) {
        Slot* seg = segs_[k].load(std::memory_order_acquire);
        if (!seg) continue;
        int64_t n = int64_t{1} << (k + kBaseBits);
        for (int64_t j = 0; j < n; ++j) delete seg[j].unsafe_peek();
        delete[] seg;
      }
    }

    Block* load(int64_t i) const { return slot(i).load(); }

    /// Single-writer publish (leaf appends).
    void store(int64_t i, Block* b) { slot(i).store(b); }

    /// One CAS attempt to install `b` at slot `i` (internal appends).
    bool cas(int64_t i, Block* b) { return slot(i).cas(nullptr, b); }

    /// Uncounted accessors for construction and debug introspection.
    Block* unsafe_peek(int64_t i) const { return slot(i).unsafe_peek(); }
    void unsafe_install(int64_t i, Block* b) { slot(i).unsafe_store(b); }

   private:
    using Slot = typename Platform::template Atomic<Block*>;
    static constexpr int kBaseBits = 6;  // first segment: 64 slots
    static constexpr int kSegments = 42;

    Slot& slot(int64_t i) const {
      uint64_t base = static_cast<uint64_t>(i) + (uint64_t{1} << kBaseBits);
      int k = std::bit_width(base) - 1 - kBaseBits;
      int64_t off = static_cast<int64_t>(base - (uint64_t{1} << (k + kBaseBits)));
      return segment(k)[off];
    }

    Slot* segment(int k) const {
      Slot* seg = segs_[k].load(std::memory_order_acquire);
      if (seg) return seg;
      int64_t n = int64_t{1} << (k + kBaseBits);
      Slot* fresh = new Slot[static_cast<size_t>(n)]();
      Slot* expected = nullptr;
      if (segs_[k].compare_exchange_strong(expected, fresh,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        return fresh;
      }
      delete[] fresh;
      return expected;
    }

    mutable std::atomic<Slot*> segs_[kSegments] = {};
  };

  struct Node {
    Node* parent = nullptr;
    Node* left = nullptr;
    Node* right = nullptr;
    bool is_leaf = false;
    bool is_root = false;
    int leaf_pid = -1;
    // Next free block slot; blocks[0] is a zeroed sentinel, so head starts at
    // 1 and lags the filled frontier by at most one (helpers CAS it forward).
    typename Platform::template Atomic<int64_t> head{1};
    BlockArray blocks;
  };

  explicit UnboundedQueue(int procs) : p_(procs < 1 ? 1 : procs) {
    unsigned width = std::bit_ceil(static_cast<unsigned>(p_));
    root_ = build_tree(nullptr, width);
    collect_leaves(root_);
  }

  UnboundedQueue(const UnboundedQueue&) = delete;
  UnboundedQueue& operator=(const UnboundedQueue&) = delete;

  ~UnboundedQueue() { delete_tree(root_); }

  /// Associates the calling thread with leaf `pid` (0-based, < procs).
  void bind_thread(int pid) {
    assert(pid >= 0 && pid < p_);
    platform::bind_thread(pid);
  }

  void enqueue(T x) {
    Node* leaf = leaves_[static_cast<size_t>(platform::current_pid())];
    append_leaf(leaf, std::optional<T>(std::move(x)), /*is_enq=*/true);
    propagate(leaf->parent);
  }

  std::optional<T> dequeue() {
    Node* leaf = leaves_[static_cast<size_t>(platform::current_pid())];
    int64_t b = append_leaf(leaf, std::nullopt, /*is_enq=*/false);
    propagate(leaf->parent);
    auto [rb, r] = index_dequeue(leaf, b);
    return find_response(rb, r);
  }

  // --- debug/introspection surface (uncounted) -----------------------------

  const Node* debug_root() const { return root_; }
  const Node* debug_leaf(int pid) const {
    return leaves_[static_cast<size_t>(pid)];
  }

  /// Number of blocks ever appended across all nodes (excluding sentinels).
  size_t debug_total_blocks() const {
    size_t total = 0;
    count_blocks(root_, total);
    return total;
  }

  int procs() const { return p_; }

 private:
  // --- tree construction ---------------------------------------------------

  Node* build_tree(Node* parent, unsigned width) {
    Node* n = new Node;
    n->parent = parent;
    n->is_root = (parent == nullptr);
    n->blocks.unsafe_install(0, new Block{});  // sentinel: all fields zero
    if (width == 1) {
      n->is_leaf = true;
    } else {
      n->left = build_tree(n, width / 2);
      n->right = build_tree(n, width / 2);
    }
    return n;
  }

  void collect_leaves(Node* n) {
    if (n->is_leaf) {
      n->leaf_pid = static_cast<int>(leaves_.size());
      leaves_.push_back(n);
      return;
    }
    collect_leaves(n->left);
    collect_leaves(n->right);
  }

  void delete_tree(Node* n) {
    if (!n) return;
    delete_tree(n->left);
    delete_tree(n->right);
    delete n;
  }

  void count_blocks(const Node* n, size_t& total) const {
    if (!n) return;
    int64_t h = n->head.unsafe_peek();
    if (n->blocks.unsafe_peek(h) != nullptr) ++h;  // head lagging the frontier
    total += static_cast<size_t>(h - 1);           // exclude the sentinel
    count_blocks(n->left, total);
    count_blocks(n->right, total);
  }

  // --- append & propagation ------------------------------------------------

  /// Appends one operation block at the (single-writer) leaf; returns its
  /// block index.
  int64_t append_leaf(Node* leaf, std::optional<T> elem, bool is_enq) {
    int64_t h = leaf->head.load();
    const Block* prev = leaf->blocks.load(h - 1);
    Block* b = new Block;
    b->element = std::move(elem);
    b->sumenq = prev->sumenq + (is_enq ? 1 : 0);
    b->sumdeq = prev->sumdeq + (is_enq ? 0 : 1);
    if (leaf->is_root) {
      b->size = std::max<int64_t>(0, prev->size + (is_enq ? 1 : -1));
    } else {
      b->super = leaf->parent->head.load();  // hint, read before publishing
    }
    leaf->blocks.store(h, b);
    leaf->head.store(h + 1);
    return h;
  }

  /// Index of the last appended block of `v` (head may lag it by one).
  int64_t last_block_index(const Node* v) {
    int64_t h = v->head.load();
    if (v->blocks.load(h) != nullptr) return h;
    return h - 1;
  }

  /// After the leaf append, one Refresh pair per ancestor suffices: if both
  /// calls lose their CAS, the two winning blocks were both created after our
  /// child block was published, so the second winner merged it (the f-array
  /// double-refresh argument; each failure below is a genuine CAS loss on a
  /// slot we saw empty, which is what the argument needs).
  void propagate(Node* v) {
    while (v != nullptr) {
      if (!refresh(v)) refresh(v);
      v = v->parent;
    }
  }

  /// Tries to append one block to internal node `v` merging all child blocks
  /// not yet merged. True if nothing new to merge or our CAS won.
  bool refresh(Node* v) {
    int64_t h = v->head.load();
    while (v->blocks.load(h) != nullptr) {  // stale head: help it forward
      v->head.cas(h, h + 1);
      h = v->head.load();
    }
    const Block* prev = v->blocks.load(h - 1);
    int64_t lend = last_block_index(v->left);
    int64_t rend = last_block_index(v->right);
    if (lend == prev->endleft && rend == prev->endright) return true;
    Block* nb = new Block;
    nb->endleft = lend;
    nb->endright = rend;
    nb->sumenq = v->left->blocks.load(lend)->sumenq +
                 v->right->blocks.load(rend)->sumenq;
    nb->sumdeq = v->left->blocks.load(lend)->sumdeq +
                 v->right->blocks.load(rend)->sumdeq;
    if (v->is_root) {
      int64_t numenq = nb->sumenq - prev->sumenq;
      int64_t numdeq = nb->sumdeq - prev->sumdeq;
      nb->size = std::max<int64_t>(0, prev->size + numenq - numdeq);
    } else {
      nb->super = v->parent->head.load();
    }
    if (v->blocks.cas(h, nb)) {
      v->head.cas(h, h + 1);
      return true;
    }
    delete nb;
    v->head.cas(h, h + 1);  // a winner exists; help advance past it
    return false;
  }

  // --- dequeue path --------------------------------------------------------

  /// Walks the dequeue appended as leaf block `b` up to the root, returning
  /// (root block index, rank of this dequeue among that block's dequeues).
  std::pair<int64_t, int64_t> index_dequeue(Node* v, int64_t b) {
    int64_t i = 1;
    while (!v->is_root) {
      Node* par = v->parent;
      bool from_left = (par->left == v);
      int64_t hint = v->blocks.load(b)->super;
      int64_t s = find_superblock(par, from_left, b, hint);
      const Block* sb = par->blocks.load(s);
      const Block* sp = par->blocks.load(s - 1);
      int64_t start = from_left ? sp->endleft : sp->endright;
      // Dequeues of this child merged earlier in the same superblock.
      i += v->blocks.load(b - 1)->sumdeq - v->blocks.load(start)->sumdeq;
      if (!from_left) {
        // Left-child dequeues of the superblock precede all right-child ones.
        i += par->left->blocks.load(sb->endleft)->sumdeq -
             par->left->blocks.load(sp->endleft)->sumdeq;
      }
      v = par;
      b = s;
    }
    return {b, i};
  }

  /// Smallest parent block index s with end{left|right}(s) >= b, i.e. the
  /// block of `par` that merged child block `b`. Gallops out from the hint
  /// (end* is nondecreasing in s), then binary-searches the bracket.
  int64_t find_superblock(Node* par, bool from_left, int64_t b, int64_t hint) {
    auto end_of = [&](int64_t s) {
      const Block* blk = par->blocks.load(s);
      return from_left ? blk->endleft : blk->endright;
    };
    int64_t last = last_block_index(par);
    int64_t h0 = std::clamp<int64_t>(hint, 1, last);
    int64_t lo, hi;  // invariant: end_of(lo) < b <= end_of(hi)
    if (end_of(h0) >= b) {
      hi = h0;
      int64_t step = 1;
      lo = h0 - step;
      while (lo > 0 && end_of(lo) >= b) {
        hi = lo;
        step <<= 1;
        lo = h0 - step;
      }
      if (lo < 0) lo = 0;
    } else {
      lo = h0;
      int64_t step = 1;
      hi = h0 + step;
      while (hi < last && end_of(hi) < b) {
        lo = hi;
        step <<= 1;
        hi = h0 + step;
      }
      if (hi > last) hi = last;  // propagate() guarantees end_of(last) >= b
    }
    while (lo + 1 < hi) {
      int64_t mid = lo + (hi - lo) / 2;
      if (end_of(mid) >= b) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return hi;
  }

  /// Resolves the dequeue that is the r-th dequeue of root block `b`: null if
  /// the queue is empty at its linearization point, otherwise the element of
  /// the e-th enqueue overall, located with the doubling search (Lemma 20)
  /// and a root-to-leaf descent.
  std::optional<T> find_response(int64_t b, int64_t r) {
    const Block* prev = root_->blocks.load(b - 1);
    const Block* cur = root_->blocks.load(b);
    int64_t numenq = cur->sumenq - prev->sumenq;
    if (r > prev->size + numenq) return std::nullopt;
    int64_t e = prev->sumenq - prev->size + r;
    // Doubling search backward from b for the block with sumenq >= e; its
    // cost tracks the distance b - b_e, not the total number of root blocks.
    int64_t hi = b;
    int64_t step = 1;
    int64_t lo = std::max<int64_t>(b - step, 0);
    while (lo > 0 && root_->blocks.load(lo)->sumenq >= e) {
      hi = lo;
      step <<= 1;
      lo = std::max<int64_t>(b - step, 0);
    }
    while (lo + 1 < hi) {
      int64_t mid = lo + (hi - lo) / 2;
      if (root_->blocks.load(mid)->sumenq >= e) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    int64_t i = e - root_->blocks.load(hi - 1)->sumenq;
    return get_enqueue(root_, hi, i);
  }

  /// Element of the i-th enqueue of block `b` at node `v`: descend to the
  /// leaf holding it. Within a block, left-child enqueues precede right-child
  /// ones; the per-level binary search spans only the merged subblocks, so it
  /// costs O(log contention) per level.
  std::optional<T> get_enqueue(Node* v, int64_t b, int64_t i) {
    while (!v->is_leaf) {
      const Block* cur = v->blocks.load(b);
      const Block* prev = v->blocks.load(b - 1);
      Node* child;
      int64_t lo, hi;
      int64_t numleft = v->left->blocks.load(cur->endleft)->sumenq -
                        v->left->blocks.load(prev->endleft)->sumenq;
      if (i <= numleft) {
        child = v->left;
        lo = prev->endleft;
        hi = cur->endleft;
      } else {
        child = v->right;
        lo = prev->endright;
        hi = cur->endright;
        i -= numleft;
      }
      int64_t target = child->blocks.load(lo)->sumenq + i;
      while (lo + 1 < hi) {
        int64_t mid = lo + (hi - lo) / 2;
        if (child->blocks.load(mid)->sumenq >= target) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      i = target - child->blocks.load(hi - 1)->sumenq;
      v = child;
      b = hi;
    }
    return v->blocks.load(b)->element;
  }

  int p_;
  Node* root_ = nullptr;
  std::vector<Node*> leaves_;
};

}  // namespace wfq::core
