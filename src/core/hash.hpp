// Shared integer-mixing utilities (ISSUE 10 satellite): splitmix64 used to
// live inside src/broker/shard_map.hpp; the raft subsystem's seeded election
// jitter and the svc traffic generator need the same mix, so it is hoisted
// here once instead of copied. The finisher is Steele/Lea/Flood's splitmix64:
// cheap, well-mixed, a pure function — callers rely on a key's image being
// stable across runs (shard routing) and on distinct seeds mapping to
// decorrelated streams (jitter).
#pragma once

#include <cstdint>

namespace wfq::core {

/// splitmix64 finisher. Maps every input (0 included) to a well-mixed
/// 64-bit value; deterministic across runs and platforms.
inline uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Tiny seeded PRNG over repeated splitmix64 steps: next() advances the
/// state by the golden-ratio increment and returns the finished mix. Every
/// seed (0 included) yields a full-period stream — unlike raw xorshift64*,
/// which has a fixed point at 0 that callers had to reject by hand.
class SplitMix {
 public:
  explicit SplitMix(uint64_t seed) : state_(seed) {}
  uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t x = state_;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
  /// Uniform value in [0, n); n must be >= 1.
  uint64_t below(uint64_t n) { return next() % n; }

 private:
  uint64_t state_;
};

}  // namespace wfq::core
