// wfb-v1 serialization for raft::Message (ISSUE 10): the message TYPE rides
// in the frame opcode (net::Opcode::raft_vote_req .. raft_append_resp) and
// the sender's node id rides in the frame key, so the body only carries the
// type-specific fields. All integers little-endian, matching the frame
// header. Bodies are fixed-size except append_req, which carries a bounded
// entry batch:
//
//   vote_req:    u64 term, u64 last_log_index, u64 last_log_term      (24 B)
//   vote_resp:   u64 term, u8 granted                                 (9 B)
//   append_req:  u64 term, u64 prev_log_index, u64 prev_log_term,
//                u64 leader_commit, u32 n,
//                then n x (u64 entry_term, u32 cmd_len, cmd bytes)
//   append_resp: u64 term, u8 success, u64 match_index                (17 B)
//
// decode_body is strict: any size mismatch, trailing garbage, or entry
// length running past the payload end returns false and the frame is
// discarded (raft tolerates message loss by design, so "drop and let the
// protocol retry" is the correct failure mode for a malformed peer frame).
#pragma once

#include <cstdint>
#include <string>

#include "net/frame.hpp"
#include "raft/raft.hpp"

namespace wfq::raft {

inline net::Opcode opcode_for(Message::Type t) {
  switch (t) {
    case Message::Type::vote_req: return net::Opcode::raft_vote_req;
    case Message::Type::vote_resp: return net::Opcode::raft_vote_resp;
    case Message::Type::append_req: return net::Opcode::raft_append_req;
    case Message::Type::append_resp: return net::Opcode::raft_append_resp;
  }
  return net::Opcode::raft_vote_req;
}

inline bool type_for(net::Opcode op, Message::Type& out) {
  switch (op) {
    case net::Opcode::raft_vote_req: out = Message::Type::vote_req; return true;
    case net::Opcode::raft_vote_resp:
      out = Message::Type::vote_resp;
      return true;
    case net::Opcode::raft_append_req:
      out = Message::Type::append_req;
      return true;
    case net::Opcode::raft_append_resp:
      out = Message::Type::append_resp;
      return true;
    default: return false;
  }
}

namespace wire_detail {

inline void put_u64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline bool get_u64(const std::string& s, size_t& pos, uint64_t& v) {
  if (s.size() - pos < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(static_cast<uint8_t>(s[pos + size_t(i)]))
         << (8 * i);
  pos += 8;
  return true;
}

inline bool get_u32(const std::string& s, size_t& pos, uint32_t& v) {
  if (s.size() - pos < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(static_cast<uint8_t>(s[pos + size_t(i)]))
         << (8 * i);
  pos += 4;
  return true;
}

}  // namespace wire_detail

inline std::string encode_body(const Message& m) {
  using wire_detail::put_u64;
  std::string out;
  put_u64(out, m.term);
  switch (m.type) {
    case Message::Type::vote_req:
      put_u64(out, m.last_log_index);
      put_u64(out, m.last_log_term);
      break;
    case Message::Type::vote_resp:
      out.push_back(m.granted ? 1 : 0);
      break;
    case Message::Type::append_req: {
      put_u64(out, m.prev_log_index);
      put_u64(out, m.prev_log_term);
      put_u64(out, m.leader_commit);
      uint32_t n = static_cast<uint32_t>(m.entries.size());
      for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((n >> (8 * i)) & 0xff));
      for (const LogEntry& e : m.entries) {
        put_u64(out, e.term);
        uint32_t len = static_cast<uint32_t>(e.cmd.size());
        for (int i = 0; i < 4; ++i)
          out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
        out.append(e.cmd);
      }
      break;
    }
    case Message::Type::append_resp:
      out.push_back(m.success ? 1 : 0);
      put_u64(out, m.match_index);
      break;
  }
  return out;
}

/// Rebuilds a Message of type `t` sent by node `from` out of `body`.
/// Returns false on any malformed input (wrong size, truncated entries,
/// trailing bytes).
inline bool decode_body(Message::Type t, int from, const std::string& body,
                        Message& m) {
  using wire_detail::get_u32;
  using wire_detail::get_u64;
  m = Message{};
  m.type = t;
  m.from = from;
  size_t pos = 0;
  if (!get_u64(body, pos, m.term)) return false;
  switch (t) {
    case Message::Type::vote_req:
      if (!get_u64(body, pos, m.last_log_index)) return false;
      if (!get_u64(body, pos, m.last_log_term)) return false;
      break;
    case Message::Type::vote_resp:
      if (body.size() - pos < 1) return false;
      m.granted = body[pos++] != 0;
      break;
    case Message::Type::append_req: {
      if (!get_u64(body, pos, m.prev_log_index)) return false;
      if (!get_u64(body, pos, m.prev_log_term)) return false;
      if (!get_u64(body, pos, m.leader_commit)) return false;
      uint32_t n = 0;
      if (!get_u32(body, pos, n)) return false;
      // Entry count is implicitly bounded by kMaxPayload / 12 bytes per
      // empty entry; reject anything that cannot possibly fit.
      if (n > net::kMaxPayload / 12) return false;
      m.entries.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        LogEntry e;
        if (!get_u64(body, pos, e.term)) return false;
        uint32_t len = 0;
        if (!get_u32(body, pos, len)) return false;
        if (body.size() - pos < len) return false;
        e.cmd.assign(body, pos, len);
        pos += len;
        m.entries.push_back(std::move(e));
      }
      break;
    }
    case Message::Type::append_resp:
      if (body.size() - pos < 1) return false;
      m.success = body[pos++] != 0;
      if (!get_u64(body, pos, m.match_index)) return false;
      break;
  }
  return pos == body.size();
}

/// Convenience: a full wfb-v1 frame for `m` sent by node `self_id`.
inline net::Frame to_frame(const Message& m, int self_id) {
  net::Frame f;
  f.op = opcode_for(m.type);
  f.key = static_cast<uint32_t>(self_id);
  f.payload = encode_body(m);
  return f;
}

/// Convenience: parses a raft-band frame. False if the opcode is not a raft
/// opcode or the body is malformed.
inline bool from_frame(const net::Frame& f, Message& m) {
  Message::Type t;
  if (!type_for(f.op, t)) return false;
  return decode_body(t, static_cast<int>(f.key), f.payload, m);
}

}  // namespace wfq::raft
