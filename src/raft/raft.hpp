// Raft consensus core (ISSUE 10 tentpole): terms, randomized-timeout leader
// election, AppendEntries log replication, and commit/apply tracking, in one
// header with NO environment baked in. The node never reads a clock, never
// touches a socket, and never spawns a thread:
//
//   - time is injected: every entry point takes `now_ms`, and the caller
//     decides what a millisecond is (the sim harness uses a virtual clock,
//     the wire service uses steady_clock);
//   - transport is a callback: `send(to, Message)` — the sim harness moves
//     structs through a seeded drop/delay/partition event queue
//     (src/raft/sim_cluster.hpp), the wire service serializes them into the
//     wfb-v1 RAFT opcode band (src/raft/wire.hpp / src/raft/cluster.hpp);
//   - the state machine is a callback: `apply(index, cmd)` fires exactly
//     once per committed entry, in index order.
//
// So the IDENTICAL algorithm runs under the deterministic adversary and over
// real sockets — which is the point: the safety argument is made against
// seeded partition schedules in tests/raft/raft_sim_test.cpp, and the binary
// that serves traffic runs the same code.
//
// Faithfulness to the paper (Ongaro & Ousterhout 2014) and deviations:
//   - election restriction (§5.4.1): votes are granted only to candidates
//     whose log is at least as up-to-date;
//   - commit rule (§5.4.2): the leader only advances commitIndex over
//     majority-matched entries OF ITS OWN TERM; older entries commit
//     transitively. A fresh leader appends an empty no-op entry so the
//     previous term's tail becomes committable without waiting for client
//     traffic;
//   - no stable storage: currentTerm/votedFor/log live in memory. A crashed
//     node must rejoin as a NEW node (empty state), never resume its old
//     identity — the deployments here (sim crash schedules, E15 SIGKILL
//     failover) kill replicas permanently, so the persistence Raft needs
//     across restart-with-same-identity is out of scope and documented
//     rather than faked;
//   - no membership change, no snapshotting: the replicated state is broker
//     metadata (shard-map config + tenant weights), a handful of entries.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/hash.hpp"

namespace wfq::raft {

enum class Role : uint8_t { follower, candidate, leader };

inline const char* role_name(Role r) {
  switch (r) {
    case Role::follower: return "follower";
    case Role::candidate: return "candidate";
    case Role::leader: return "leader";
  }
  return "?";
}

/// One replicated log entry. `cmd` is opaque to the consensus core; the
/// empty string is reserved for the leader's election no-op (state machines
/// must skip it — see apply contract below).
struct LogEntry {
  uint64_t term = 0;
  std::string cmd;
};

/// The four Raft RPCs as one tagged struct. Field use by type:
///   vote_req:    term, from, last_log_index, last_log_term
///   vote_resp:   term, from, granted
///   append_req:  term, from, prev_log_index, prev_log_term, leader_commit,
///                entries (empty = heartbeat)
///   append_resp: term, from, success, match_index (on failure: the
///                follower's last index, a catch-up hint)
struct Message {
  enum class Type : uint8_t {
    vote_req = 0,
    vote_resp = 1,
    append_req = 2,
    append_resp = 3,
  };
  Type type = Type::vote_req;
  int from = -1;
  uint64_t term = 0;
  uint64_t last_log_index = 0;
  uint64_t last_log_term = 0;
  bool granted = false;
  uint64_t prev_log_index = 0;
  uint64_t prev_log_term = 0;
  uint64_t leader_commit = 0;
  std::vector<LogEntry> entries;
  bool success = false;
  uint64_t match_index = 0;
};

inline const char* message_type_name(Message::Type t) {
  switch (t) {
    case Message::Type::vote_req: return "vote_req";
    case Message::Type::vote_resp: return "vote_resp";
    case Message::Type::append_req: return "append_req";
    case Message::Type::append_resp: return "append_resp";
  }
  return "?";
}

struct NodeConfig {
  int id = 0;      // this replica's id, in [0, peers)
  int peers = 1;   // replica-group size n; ids are 0..n-1
  /// Election timeout base T: a follower that hears nothing for a
  /// randomized duration in [T, 2T) starts an election. Heartbeats default
  /// to T/5 (clamped to >= 1ms) so a healthy leader resets follower timers
  /// several times per timeout.
  uint64_t election_timeout_ms = 150;
  uint64_t heartbeat_ms = 0;  // 0 = election_timeout_ms / 5
  /// Seed for the election-jitter stream (core::SplitMix). Replicas must
  /// use DIFFERENT seeds or they dance in lock-step and split every vote.
  uint64_t seed = 1;
};

/// The consensus engine for one replica. Single-threaded by contract: the
/// caller serializes tick/on_message/propose (the sim harness is naturally
/// single-threaded; the wire service wraps the node in one mutex).
class Node {
 public:
  using SendFn = std::function<void(int to, const Message& m)>;
  /// Fires once per committed entry, in index order, from inside
  /// tick/on_message. `cmd` is empty for leader no-op entries.
  using ApplyFn = std::function<void(uint64_t index, const std::string& cmd)>;

  Node(NodeConfig cfg, SendFn send, ApplyFn apply)
      : cfg_(cfg),
        send_(std::move(send)),
        apply_(std::move(apply)),
        rng_(core::splitmix64(cfg.seed) ^ static_cast<uint64_t>(cfg.id)) {
    if (cfg_.heartbeat_ms == 0)
      cfg_.heartbeat_ms = cfg_.election_timeout_ms / 5;
    if (cfg_.heartbeat_ms == 0) cfg_.heartbeat_ms = 1;
    next_index_.assign(static_cast<size_t>(cfg_.peers), 1);
    match_index_.assign(static_cast<size_t>(cfg_.peers), 0);
  }

  /// Arms the first election timeout. Call once before the first tick.
  void start(uint64_t now_ms) { reset_election_timer(now_ms); }

  /// Drives timeouts: candidates/followers start elections, leaders send
  /// heartbeats (which double as replication catch-up).
  void tick(uint64_t now_ms) {
    if (role_ == Role::leader) {
      if (now_ms >= next_heartbeat_ms_) broadcast_append(now_ms);
      return;
    }
    if (now_ms >= election_deadline_ms_) start_election(now_ms);
  }

  void on_message(const Message& m, uint64_t now_ms) {
    if (m.term > term_) step_down(m.term);
    switch (m.type) {
      case Message::Type::vote_req: on_vote_req(m, now_ms); break;
      case Message::Type::vote_resp: on_vote_resp(m, now_ms); break;
      case Message::Type::append_req: on_append_req(m, now_ms); break;
      case Message::Type::append_resp: on_append_resp(m, now_ms); break;
    }
  }

  /// Leader-only: appends `cmd` to the log and starts replicating it.
  /// Returns the entry's log index, or 0 when this node is not the leader
  /// (the caller should redirect to leader_hint()).
  uint64_t propose(const std::string& cmd, uint64_t now_ms) {
    if (role_ != Role::leader) return 0;
    log_.push_back({term_, cmd});
    broadcast_append(now_ms);
    maybe_advance_commit();  // n == 1: majority is self
    return last_index();
  }

  Role role() const { return role_; }
  uint64_t term() const { return term_; }
  uint64_t commit_index() const { return commit_; }
  uint64_t last_applied() const { return applied_; }
  uint64_t last_index() const { return log_.size(); }
  const std::vector<LogEntry>& log() const { return log_; }

  /// Best guess at the current leader's id: self when leader, the sender of
  /// the last valid AppendEntries when follower, -1 when unknown (fresh
  /// follower, candidate mid-election).
  int leader_hint() const {
    return role_ == Role::leader ? cfg_.id : leader_hint_;
  }

 private:
  uint64_t term_at(uint64_t index) const {
    return index == 0 ? 0 : log_[static_cast<size_t>(index - 1)].term;
  }

  void reset_election_timer(uint64_t now_ms) {
    election_deadline_ms_ = now_ms + cfg_.election_timeout_ms +
                            rng_.below(cfg_.election_timeout_ms);
  }

  /// Higher term observed: whatever we were, we are a follower of that term
  /// with a fresh vote.
  void step_down(uint64_t new_term) {
    term_ = new_term;
    role_ = Role::follower;
    voted_for_ = -1;
    leader_hint_ = -1;
  }

  void start_election(uint64_t now_ms) {
    ++term_;
    role_ = Role::candidate;
    voted_for_ = cfg_.id;
    leader_hint_ = -1;
    votes_ = 1;  // self
    reset_election_timer(now_ms);
    if (cfg_.peers == 1) {
      become_leader(now_ms);
      return;
    }
    Message m;
    m.type = Message::Type::vote_req;
    m.from = cfg_.id;
    m.term = term_;
    m.last_log_index = last_index();
    m.last_log_term = term_at(last_index());
    for (int p = 0; p < cfg_.peers; ++p)
      if (p != cfg_.id) send_(p, m);
  }

  void become_leader(uint64_t now_ms) {
    role_ = Role::leader;
    leader_hint_ = cfg_.id;
    for (int p = 0; p < cfg_.peers; ++p) {
      next_index_[static_cast<size_t>(p)] = last_index() + 1;
      match_index_[static_cast<size_t>(p)] = 0;
    }
    // The §5.4.2 no-op: committing it (current term) transitively commits
    // every prior-term entry already majority-replicated, without waiting
    // for client traffic that might never come.
    log_.push_back({term_, std::string()});
    next_heartbeat_ms_ = now_ms;  // announce immediately
    broadcast_append(now_ms);
    maybe_advance_commit();
  }

  void on_vote_req(const Message& m, uint64_t now_ms) {
    Message resp;
    resp.type = Message::Type::vote_resp;
    resp.from = cfg_.id;
    resp.term = term_;
    // Election restriction: the candidate's log must be at least as
    // up-to-date as ours (last term higher, or equal term and length >=).
    bool up_to_date =
        m.last_log_term > term_at(last_index()) ||
        (m.last_log_term == term_at(last_index()) &&
         m.last_log_index >= last_index());
    if (m.term == term_ && (voted_for_ == -1 || voted_for_ == m.from) &&
        up_to_date) {
      voted_for_ = m.from;
      resp.granted = true;
      reset_election_timer(now_ms);  // granting a vote defers our own run
    }
    send_(m.from, resp);
  }

  void on_vote_resp(const Message& m, uint64_t now_ms) {
    if (role_ != Role::candidate || m.term != term_ || !m.granted) return;
    if (++votes_ * 2 > cfg_.peers) become_leader(now_ms);
  }

  void on_append_req(const Message& m, uint64_t now_ms) {
    Message resp;
    resp.type = Message::Type::append_resp;
    resp.from = cfg_.id;
    resp.term = term_;
    if (m.term < term_) {  // stale leader: reject, it will step down
      resp.success = false;
      resp.match_index = last_index();
      send_(m.from, resp);
      return;
    }
    // Valid leader for our term: a candidate concedes, a follower refreshes.
    role_ = Role::follower;
    leader_hint_ = m.from;
    reset_election_timer(now_ms);
    if (m.prev_log_index > last_index() ||
        term_at(m.prev_log_index) != m.prev_log_term) {
      // Log mismatch at prev: ask the leader to back up. Our last index is
      // the natural hint (the leader clamps).
      resp.success = false;
      resp.match_index =
          m.prev_log_index > last_index() ? last_index()
                                          : m.prev_log_index - 1;
      send_(m.from, resp);
      return;
    }
    // Append, truncating any conflicting suffix (same index, different
    // term). Entries we already hold with matching terms are idempotent.
    uint64_t idx = m.prev_log_index;
    for (const LogEntry& e : m.entries) {
      ++idx;
      if (idx <= last_index()) {
        if (term_at(idx) != e.term)
          log_.resize(static_cast<size_t>(idx - 1));
        else
          continue;
      }
      log_.push_back(e);
    }
    if (m.leader_commit > commit_) {
      commit_ = m.leader_commit < last_index() ? m.leader_commit
                                               : last_index();
      apply_committed();
    }
    resp.success = true;
    resp.match_index = idx;
    send_(m.from, resp);
  }

  void on_append_resp(const Message& m, uint64_t /*now_ms*/) {
    if (role_ != Role::leader || m.term != term_) return;
    size_t p = static_cast<size_t>(m.from);
    if (m.success) {
      if (m.match_index > match_index_[p]) match_index_[p] = m.match_index;
      next_index_[p] = match_index_[p] + 1;
      maybe_advance_commit();
    } else {
      // Back up toward the follower's hint, at least one step, floor 1.
      uint64_t ni = next_index_[p] > 1 ? next_index_[p] - 1 : 1;
      if (m.match_index + 1 < ni) ni = m.match_index + 1;
      next_index_[p] = ni > 0 ? ni : 1;
      send_append_to(static_cast<int>(p));  // retry immediately
    }
  }

  /// Commit rule (§5.4.2): highest N > commit with a CURRENT-term entry
  /// replicated on a majority (self counts via last_index()).
  void maybe_advance_commit() {
    for (uint64_t n = last_index(); n > commit_; --n) {
      if (term_at(n) != term_) break;  // older terms commit transitively only
      int count = 1;  // self
      for (int p = 0; p < cfg_.peers; ++p)
        if (p != cfg_.id && match_index_[static_cast<size_t>(p)] >= n)
          ++count;
      if (count * 2 > cfg_.peers) {
        commit_ = n;
        apply_committed();
        break;
      }
    }
  }

  void apply_committed() {
    while (applied_ < commit_) {
      ++applied_;
      apply_(applied_, log_[static_cast<size_t>(applied_ - 1)].cmd);
    }
  }

  /// One AppendEntries to peer p from its next_index (empty = heartbeat).
  /// Batches are capped so one catch-up message stays modest; the follower
  /// acks and the next round continues from there.
  void send_append_to(int p) {
    Message m;
    m.type = Message::Type::append_req;
    m.from = cfg_.id;
    m.term = term_;
    uint64_t ni = next_index_[static_cast<size_t>(p)];
    m.prev_log_index = ni - 1;
    m.prev_log_term = term_at(ni - 1);
    m.leader_commit = commit_;
    const uint64_t kMaxBatch = 64;
    for (uint64_t i = ni; i <= last_index() && m.entries.size() < kMaxBatch;
         ++i)
      m.entries.push_back(log_[static_cast<size_t>(i - 1)]);
    send_(p, m);
  }

  void broadcast_append(uint64_t now_ms) {
    next_heartbeat_ms_ = now_ms + cfg_.heartbeat_ms;
    for (int p = 0; p < cfg_.peers; ++p)
      if (p != cfg_.id) send_append_to(p);
  }

  NodeConfig cfg_;
  SendFn send_;
  ApplyFn apply_;
  core::SplitMix rng_;

  Role role_ = Role::follower;
  uint64_t term_ = 0;
  int voted_for_ = -1;
  int leader_hint_ = -1;
  std::vector<LogEntry> log_;  // log_[i] is index i+1
  uint64_t commit_ = 0;
  uint64_t applied_ = 0;

  int votes_ = 0;
  uint64_t election_deadline_ms_ = 0;
  uint64_t next_heartbeat_ms_ = 0;
  std::vector<uint64_t> next_index_;
  std::vector<uint64_t> match_index_;
};

}  // namespace wfq::raft
