// Socket transport + service thread wrapping raft::Node (ISSUE 10): the
// piece that runs the SAME consensus core the sim harness drives, but over
// real wfb-v1 frames between broker replicas.
//
// Topology: every replica listens on its own client TCP port (the one
// listener serves clients AND peers), and DIALS one outbound connection to
// each peer's port. Messages travel simplex: node A sends to B over A's
// outbound link; B's replies come back over B's own outbound link to A. The
// inbound half rides the broker's existing event loop — raft-band frames
// arriving in on_batch are handed to deliver_frame(), which decodes and
// queues them for the raft thread. No select/poll logic is added anywhere;
// the event loop stays the only reader.
//
// Threading: one raft thread owns the tick loop; a mutex (mu_) serializes
// the Node against propose() from servicer threads and deliver_frame() from
// the loop thread. Three things deliberately happen OUTSIDE mu_:
//   - outbound sends: buffered while the node runs, flushed after the lock
//     drops — the node never blocks on a socket;
//   - apply/role callbacks: queued under mu_, delivered on the RAFT THREAD
//     only, under a separate cb_mu_ (acquired before re-taking mu_ to swap
//     the queue, so delivery order always matches apply order). propose()
//     never delivers inline, which lets callers atomically register
//     index-keyed completions after proposing. Callbacks must not call
//     propose() (cb_mu_ is held); use the bootstrap hook for leader-driven
//     proposals;
//   - the bootstrap hook: polled on the raft thread while leader, at most
//     once per election timeout; non-nullopt return values are proposed.
//     The broker uses it to (re-)propose the cluster config until the
//     replicated state machine has one — idempotent by apply contract.
//
// Peer links use short connect/send timeouts and on any failure just drop
// the message and reconnect later (rate limited): raft is built on lossy
// links, so "drop and let the protocol retry" needs no bookkeeping.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "raft/raft.hpp"
#include "raft/wire.hpp"

namespace wfq::raft {

struct RaftServiceConfig {
  int node_id = 0;
  /// TCP client/peer port per node id; size = cluster size. The entry at
  /// node_id is this replica's own port (unused for dialing).
  std::vector<uint16_t> peer_ports;
  uint64_t election_timeout_ms = 150;
  uint64_t seed = 0;  // 0 -> node_id + 1
  uint64_t connect_timeout_ms = 100;
  uint64_t send_timeout_ms = 20;
  uint64_t reconnect_backoff_ms = 50;
};

class RaftService {
 public:
  /// `apply` fires once per committed entry, in index order (empty cmd =
  /// election no-op, already filtered out). `on_role` fires on leadership
  /// transitions. Both run WITHOUT the node lock, serialized under the
  /// callback lock; they may call propose() and the lock-free accessors.
  using ApplyFn = std::function<void(uint64_t index, const std::string& cmd)>;
  using RoleFn = std::function<void(bool is_leader)>;
  /// Polled on the raft thread while this replica is leader (at most once
  /// per election timeout); a returned command is proposed.
  using BootstrapFn = std::function<std::optional<std::string>()>;

  RaftService(RaftServiceConfig cfg, ApplyFn apply, RoleFn on_role,
              BootstrapFn bootstrap = nullptr)
      : cfg_(cfg),
        apply_(std::move(apply)),
        on_role_(std::move(on_role)),
        bootstrap_(std::move(bootstrap)) {
    NodeConfig nc;
    nc.id = cfg.node_id;
    nc.peers = static_cast<int>(cfg.peer_ports.size());
    nc.election_timeout_ms = cfg.election_timeout_ms;
    nc.seed = cfg.seed != 0 ? cfg.seed
                            : static_cast<uint64_t>(cfg.node_id) + 1;
    node_ = std::make_unique<Node>(
        nc,
        [this](int to, const Message& m) { outbox_.emplace_back(to, m); },
        [this](uint64_t idx, const std::string& cmd) {
          if (!cmd.empty()) applied_queue_.emplace_back(idx, cmd);
        });
    links_.resize(cfg.peer_ports.size());
    start_ = std::chrono::steady_clock::now();
  }

  ~RaftService() { stop(); }
  RaftService(const RaftService&) = delete;
  RaftService& operator=(const RaftService&) = delete;

  void start() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      node_->start(now_ms());
      publish_locked();
    }
    after_node_work();
    thread_ = std::thread([this] { run(); });
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    for (Link& l : links_) l.fd.reset();
  }

  /// Event-loop thread: hand over a raft-band frame from a peer. Malformed
  /// bodies are dropped (see wire.hpp). Processing happens on the raft
  /// thread at its next wakeup.
  void deliver_frame(const net::Frame& f) {
    Message m;
    if (!from_frame(f, m)) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopped_) return;
      inbox_.push_back(std::move(m));
    }
    cv_.notify_all();
  }

  /// Any thread: propose a command. Returns the log index, or 0 when this
  /// replica is not the leader (caller redirects via leader_hint()). The
  /// apply callback for the entry ALWAYS fires later on the raft thread —
  /// never inline here — so a caller can atomically {propose + register a
  /// completion keyed by the returned index} under its own lock without
  /// racing the apply (the broker's pending-SETW table relies on this).
  uint64_t propose(const std::string& cmd) {
    uint64_t idx;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopped_) return 0;
      idx = node_->propose(cmd, now_ms());
      publish_locked();
    }
    flush_outbox();
    cv_.notify_all();  // raft thread delivers any queued applies/roles
    return idx;
  }

  // Lock-free snapshots for the request path (ENQ/DEQ gating, STAT).
  bool is_leader() const { return is_leader_.load(std::memory_order_acquire); }
  int leader_hint() const {
    return leader_hint_.load(std::memory_order_acquire);
  }
  uint64_t term() const { return term_.load(std::memory_order_acquire); }
  uint64_t commit_index() const {
    return commit_.load(std::memory_order_acquire);
  }
  uint64_t last_applied() const {
    return applied_.load(std::memory_order_acquire);
  }
  int node_id() const { return cfg_.node_id; }
  int cluster_size() const { return static_cast<int>(cfg_.peer_ports.size()); }

 private:
  struct Link {
    net::FdHandle fd;
    uint64_t next_attempt_ms = 0;
  };

  uint64_t now_ms() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  void run() {
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        if (stopped_) break;
        if (inbox_.empty())
          cv_.wait_for(lk, std::chrono::milliseconds(2));
        if (stopped_) break;
        while (!inbox_.empty()) {
          Message m = std::move(inbox_.front());
          inbox_.pop_front();
          node_->on_message(m, now_ms());
        }
        node_->tick(now_ms());
        publish_locked();
      }
      after_node_work();
      maybe_bootstrap();
    }
    after_node_work();  // deliver anything queued before stop
  }

  /// Caller holds mu_: refresh the lock-free snapshots and record role
  /// transitions for out-of-lock delivery.
  void publish_locked() {
    term_.store(node_->term(), std::memory_order_release);
    leader_hint_.store(node_->leader_hint(), std::memory_order_release);
    commit_.store(node_->commit_index(), std::memory_order_release);
    applied_.store(node_->last_applied(), std::memory_order_release);
    bool leader = node_->role() == Role::leader;
    if (leader != last_published_leader_) {
      last_published_leader_ = leader;
      role_queue_.push_back(leader);
    }
    is_leader_.store(leader, std::memory_order_release);
  }

  /// Flush sends and deliver callbacks, with no node lock held. cb_mu_ is
  /// taken BEFORE mu_ for the queue swap so two racing drainers cannot
  /// reorder apply delivery.
  void after_node_work() {
    flush_outbox();
    std::lock_guard<std::mutex> cb(cb_mu_);
    std::vector<std::pair<uint64_t, std::string>> applies;
    std::vector<bool> roles;
    {
      std::lock_guard<std::mutex> lk(mu_);
      applies.swap(applied_queue_);
      roles.swap(role_queue_);
    }
    for (auto& [idx, cmd] : applies)
      if (apply_) apply_(idx, cmd);
    for (bool leader : roles)
      if (on_role_) on_role_(leader);
  }

  /// Raft thread only: while leader, poll the bootstrap hook (throttled to
  /// one call per election timeout) and propose what it returns.
  void maybe_bootstrap() {
    if (!bootstrap_ || !is_leader()) return;
    uint64_t now = now_ms();
    if (now < next_bootstrap_ms_) return;
    next_bootstrap_ms_ = now + cfg_.election_timeout_ms;
    if (std::optional<std::string> cmd = bootstrap_()) propose(*cmd);
  }

  /// Sends everything the node queued. Called without mu_; outbox_ is
  /// filled under mu_ and swapped out here, so socket writes happen
  /// lock-free. flush_mu_ serializes concurrent flushers so per-link fds
  /// are not raced.
  void flush_outbox() {
    std::vector<std::pair<int, Message>> batch;
    {
      std::lock_guard<std::mutex> lk(mu_);
      batch.swap(outbox_);
    }
    if (batch.empty()) return;
    std::lock_guard<std::mutex> lk(flush_mu_);
    for (auto& [to, msg] : batch) send_to(to, msg);
  }

  void send_to(int to, const Message& m) {
    Link& l = links_[static_cast<size_t>(to)];
    uint64_t now = now_ms();
    if (!l.fd.valid()) {
      if (now < l.next_attempt_ms) return;  // rate-limit reconnects
      l.next_attempt_ms = now + cfg_.reconnect_backoff_ms;
      l.fd = net::connect_tcp_timeout(cfg_.peer_ports[static_cast<size_t>(to)],
                                      cfg_.connect_timeout_ms);
      if (!l.fd.valid()) return;  // peer down: message dropped, raft retries
      net::set_send_timeout(l.fd.get(), cfg_.send_timeout_ms);
    }
    std::string out;
    net::encode_frame(to_frame(m, cfg_.node_id), out);
    if (!net::write_all(l.fd.get(), out)) {
      l.fd.reset();  // stalled or dead peer: drop and redial later
      l.next_attempt_ms = now + cfg_.reconnect_backoff_ms;
    }
  }

  RaftServiceConfig cfg_;
  ApplyFn apply_;
  RoleFn on_role_;
  BootstrapFn bootstrap_;
  std::unique_ptr<Node> node_;
  std::chrono::steady_clock::time_point start_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::deque<Message> inbox_;
  std::vector<std::pair<int, Message>> outbox_;
  std::vector<std::pair<uint64_t, std::string>> applied_queue_;
  std::vector<bool> role_queue_;
  bool last_published_leader_ = false;
  std::thread thread_;

  std::mutex cb_mu_;    // callback delivery order
  std::mutex flush_mu_;  // peer link fds
  std::vector<Link> links_;
  uint64_t next_bootstrap_ms_ = 0;  // raft thread only

  std::atomic<bool> is_leader_{false};
  std::atomic<int> leader_hint_{-1};
  std::atomic<uint64_t> term_{0};
  std::atomic<uint64_t> commit_{0};
  std::atomic<uint64_t> applied_{0};
};

}  // namespace wfq::raft
