// Deterministic discrete-event harness running N raft::Node replicas against
// a sim::NetPolicy adversary (ISSUE 10). Single-threaded: a virtual clock
// advances millisecond by millisecond; each ms every live node ticks, and
// in-flight messages whose delivery time has arrived are handed to their
// destination in (time, sequence) order. Because the only sources of
// nondeterminism are the two SplitMix streams (election jitter inside each
// node, drop/delay/partition draws inside the policy), a (node seeds, net
// seed) tuple replays bit-for-bit — the safety suite leans on that.
//
// Safety instrumentation is built in rather than bolted on: leadership is
// observed after EVERY event (tick or delivery), so a leader that exists for
// a single event is still recorded in leaders_by_term and checked for
// election safety; applied commands are recorded per node for prefix-
// agreement checks.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "raft/raft.hpp"
#include "sim/net_policy.hpp"

namespace wfq::raft {

struct SimClusterConfig {
  int nodes = 5;
  uint64_t election_timeout_ms = 50;
  uint64_t node_seed_base = 1;  // node i seeds with base + i
  sim::NetPolicyConfig net;
};

class SimCluster {
 public:
  explicit SimCluster(SimClusterConfig cfg)
      : cfg_(cfg), net_(cfg.net, cfg.nodes) {
    applied_.resize(static_cast<size_t>(cfg.nodes));
    alive_.assign(static_cast<size_t>(cfg.nodes), 1);
    for (int i = 0; i < cfg.nodes; ++i) {
      NodeConfig nc;
      nc.id = i;
      nc.peers = cfg.nodes;
      nc.election_timeout_ms = cfg.election_timeout_ms;
      nc.seed = cfg.node_seed_base + static_cast<uint64_t>(i);
      nodes_.push_back(std::make_unique<Node>(
          nc,
          [this, i](int to, const Message& m) { route(i, to, m); },
          [this, i](uint64_t idx, const std::string& cmd) {
            applied_[static_cast<size_t>(i)].push_back({idx, cmd});
          }));
      nodes_.back()->start(0);
    }
    observe();
  }

  /// Runs the cluster for `ms` virtual milliseconds.
  void run_for(uint64_t ms) {
    uint64_t end = now_ + ms;
    while (now_ < end) {
      ++now_;
      net_.advance(now_);
      // Deliver everything due at or before now_, in (time, seq) order.
      while (!inflight_.empty() && inflight_.begin()->first.first <= now_) {
        auto it = inflight_.begin();
        Pending p = std::move(it->second);
        inflight_.erase(it);
        if (alive_[static_cast<size_t>(p.to)]) {
          nodes_[static_cast<size_t>(p.to)]->on_message(p.msg, now_);
          observe();
        }
      }
      for (int i = 0; i < cfg_.nodes; ++i) {
        if (!alive_[static_cast<size_t>(i)]) continue;
        nodes_[static_cast<size_t>(i)]->tick(now_);
        observe();
      }
    }
  }

  /// Permanently crashes a node: it stops ticking and all its traffic (both
  /// directions, including messages already in flight) is discarded. There
  /// is deliberately no restart — the core has no stable storage, so a
  /// rejoining replica must be a new identity (see raft.hpp header note).
  void crash(int id) {
    alive_[static_cast<size_t>(id)] = 0;
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if (it->second.to == id || it->second.from == id)
        it = inflight_.erase(it);
      else
        ++it;
    }
  }

  /// Proposes `cmd` on the current leader if one is visible; returns true
  /// when some live node accepted it.
  bool propose(const std::string& cmd) {
    for (int i = 0; i < cfg_.nodes; ++i) {
      if (alive_[static_cast<size_t>(i)] &&
          nodes_[static_cast<size_t>(i)]->role() == Role::leader &&
          nodes_[static_cast<size_t>(i)]->propose(cmd, now_) != 0) {
        observe();
        return true;
      }
    }
    return false;
  }

  /// Ends the adversary: heals partitions, stops drops. The suite then runs
  /// the cluster further and asserts convergence.
  void heal() { net_.heal_forever(); }

  uint64_t now() const { return now_; }
  Node& node(int id) { return *nodes_[static_cast<size_t>(id)]; }
  bool alive(int id) const { return alive_[static_cast<size_t>(id)] != 0; }
  int live_count() const {
    int n = 0;
    for (char a : alive_) n += a ? 1 : 0;
    return n;
  }

  struct Applied {
    uint64_t index;
    std::string cmd;
  };
  const std::vector<Applied>& applied(int id) const {
    return applied_[static_cast<size_t>(id)];
  }

  /// term -> set of node ids ever observed as leader in that term. Election
  /// safety == every entry has size 1.
  const std::map<uint64_t, std::vector<int>>& leaders_by_term() const {
    return leaders_by_term_;
  }

  int current_leader() const {
    for (int i = 0; i < cfg_.nodes; ++i)
      if (alive_[static_cast<size_t>(i)] &&
          nodes_[static_cast<size_t>(i)]->role() == Role::leader)
        return i;
    return -1;
  }

 private:
  struct Pending {
    int from;
    int to;
    Message msg;
  };

  void route(int from, int to, const Message& m) {
    if (!alive_[static_cast<size_t>(from)]) return;
    sim::SendFate f = net_.on_send(from, to);
    if (f.drop) return;
    uint64_t at = now_ + f.delay_ms;
    inflight_.emplace(std::make_pair(at, seq_++), Pending{from, to, m});
  }

  /// Records any node currently in the leader role under its term. Called
  /// after every event so even one-event leaderships are captured.
  void observe() {
    for (int i = 0; i < cfg_.nodes; ++i) {
      if (!alive_[static_cast<size_t>(i)]) continue;
      if (nodes_[static_cast<size_t>(i)]->role() != Role::leader) continue;
      auto& v = leaders_by_term_[nodes_[static_cast<size_t>(i)]->term()];
      bool seen = false;
      for (int id : v) seen |= (id == i);
      if (!seen) v.push_back(i);
    }
  }

  SimClusterConfig cfg_;
  sim::NetPolicy net_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<char> alive_;
  std::vector<std::vector<Applied>> applied_;
  std::map<std::pair<uint64_t, uint64_t>, Pending> inflight_;
  uint64_t seq_ = 0;
  uint64_t now_ = 0;
  std::map<uint64_t, std::vector<int>> leaders_by_term_;
};

}  // namespace wfq::raft
