// Adversary (SchedulingPolicy) factory: string specs name scheduling
// policies so benches, tests and the bench_runner CLI can select an
// adversary without naming C++ types (`--adversary anti-faa`). Specs:
//
//   "round-robin"      perfect lock-step (the paper's canonical CAS-retry
//                      adversary); alias "rr".
//   "random:<seed>"    seeded uniform-random schedule; the seed is required
//                      and must be >= 1 (seed 0 is the xorshift64* fixed
//                      point and is rejected — see RandomPolicy).
//   "anti-faa"         targeted schedule that races dequeuers past stalled
//                      enqueuers (ROADMAP: the FAA-array queue's Omega(p)
//                      worst case; see AntiFaaPolicy below and E5b).
//   "stall-refresh"    stall-the-leader schedule against the ordering
//                      tree's double-Refresh: parks a process right before
//                      its CAS while everyone else runs, so the parked
//                      refresher's install CAS loses and its caller must
//                      take the second-Refresh path (see StallRefreshPolicy).
//   "bursty:<on>:<off>" bursty-arrival schedule: each scheduled process runs
//                      `on` consecutive steps then cools down for `off`
//                      steps (E13's arrival pattern under exact step
//                      accounting; see BurstyPolicy).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace wfq::sim {

/// Targeted adversary for fetch&add-array queues (E5b): processes are split
/// into enqueuers (pids < n/2) and dequeuers (the rest, matching the role
/// assignment of the benches that request this policy). Each round gives
/// every enqueuer exactly one shared step — just enough to execute its FAA
/// slot claim (or the CAS that discovers the slot was poisoned) — then
/// parks it, and hands one victim dequeuer a long exclusive burst. The
/// victim must poison every claimed-but-unpublished cell ahead of it, one
/// CAS per stalled enqueuer, so a single dequeue costs Theta(p) shared
/// steps: the Omega(p) worst-case execution the paper proves exists for
/// FAA-based designs. When only one role remains runnable the policy
/// degenerates to round-robin, so every workload still terminates.
class AntiFaaPolicy : public SchedulingPolicy {
 public:
  int pick(const std::vector<char>& runnable, uint64_t step) override {
    const int n = static_cast<int>(runnable.size());
    const int enqueuers = n / 2;  // pids [0, n/2) stall; the rest race
    if (burst_ == 0) burst_ = 5 * n + 8;

    bool live_enq = any_in(runnable, 0, enqueuers);
    bool live_deq = any_in(runnable, enqueuers, n);
    if (!live_enq || !live_deq) return rr_.pick(runnable, step);

    if (next_enq_ < enqueuers) {  // phase A: one step per enqueuer
      for (; next_enq_ < enqueuers; ++next_enq_) {
        if (runnable[static_cast<size_t>(next_enq_)]) return next_enq_++;
      }
    }
    // Phase B: exclusive burst for the current victim dequeuer.
    if (burst_left_ == 0) {
      burst_left_ = burst_;
      victim_ = next_victim(runnable, enqueuers, n);
    }
    if (victim_ < 0 || !runnable[static_cast<size_t>(victim_)])
      victim_ = next_victim(runnable, enqueuers, n);
    if (--burst_left_ == 0) next_enq_ = 0;  // burst spent: back to phase A
    return victim_;
  }

 private:
  static bool any_in(const std::vector<char>& runnable, int lo, int hi) {
    for (int i = lo; i < hi; ++i)
      if (runnable[static_cast<size_t>(i)]) return true;
    return false;
  }

  int next_victim(const std::vector<char>& runnable, int lo, int hi) {
    for (int k = 1; k <= hi - lo; ++k) {
      int c = lo + (victim_ - lo + k + (hi - lo)) % (hi - lo);
      if (runnable[static_cast<size_t>(c)]) return c;
    }
    return -1;
  }

  int next_enq_ = 0;       // phase-A cursor over enqueuer pids
  int victim_ = 0;         // dequeuer receiving the current burst
  uint64_t burst_ = 0;     // burst length, fixed at 5n+8 on first pick
  uint64_t burst_left_ = 0;
  RoundRobinPolicy rr_;    // degenerate mode once one role has finished
};

/// Stall-the-leader adversary against the ordering tree's double-Refresh
/// (ROADMAP adversary idea; the conformance sweep runs every registered
/// object under it). The scheduler reports each process's upcoming access
/// kind through before_step; when the round-robin cursor reaches a process
/// whose next step is a CAS, the policy parks it there for a burst while
/// every other process keeps running. In the ordering tree the common CAS
/// is Refresh's block-install: by the time the victim's CAS finally
/// executes, a competing refresher has typically installed a block at the
/// index the victim saw empty, so the victim's first Refresh LOSES and its
/// propagate() relies on the second Refresh (plus the helped head-CAS
/// paths) — exactly the double-refresh argument's hard case, which
/// lock-step schedules almost never exercise. Victims rotate with the
/// cursor, and a victim whose stall expires — or that becomes the only
/// runnable process — is released, so every workload still terminates.
class StallRefreshPolicy : public SchedulingPolicy {
 public:
  void before_step(int pid, StepKind kind) override {
    reserve(static_cast<size_t>(pid) + 1);
    next_kind_[static_cast<size_t>(pid)] =
        (kind == StepKind::cas) ? kCas : kOther;
  }

  int pick(const std::vector<char>& runnable, uint64_t /*step*/) override {
    const int n = static_cast<int>(runnable.size());
    reserve(runnable.size());
    if (stall_ == 0) stall_ = 6 * static_cast<uint64_t>(n) + 10;

    // Release the victim when its stall is spent or it already finished.
    // Its pending CAS no longer counts for victimization (else the scan
    // below would re-park it with a fresh stall before it ever ran: each
    // pending CAS earns at most ONE bounded park).
    if (victim_ >= 0 &&
        (stall_left_ == 0 || !runnable[static_cast<size_t>(victim_)])) {
      next_kind_[static_cast<size_t>(victim_)] = kOther;
      victim_ = -1;
    }

    int fallback = -1;  // the victim, if it is the only runnable process
    for (int k = 1; k <= n; ++k) {
      int c = (cursor_ + k) % n;
      if (!runnable[static_cast<size_t>(c)]) continue;
      if (c == victim_) {
        fallback = c;
        continue;
      }
      // A process about to CAS becomes the new victim (parked, skipped)
      // when no stall is in progress; its CAS executes only once released.
      if (victim_ < 0 && next_kind_[static_cast<size_t>(c)] == kCas) {
        victim_ = c;
        stall_left_ = stall_;
        fallback = c;
        continue;
      }
      cursor_ = c;
      if (victim_ >= 0 && stall_left_ > 0) --stall_left_;
      next_kind_[static_cast<size_t>(c)] = kOther;  // step consumed
      return c;
    }
    // Only the victim is left: release it so the run terminates.
    victim_ = -1;
    if (fallback >= 0) {
      cursor_ = fallback;
      next_kind_[static_cast<size_t>(fallback)] = kOther;
    }
    return fallback;
  }

 private:
  static constexpr char kOther = 0;
  static constexpr char kCas = 1;

  void reserve(size_t n) {
    if (next_kind_.size() < n) next_kind_.resize(n, kOther);
  }

  std::vector<char> next_kind_;
  int cursor_ = -1;     // round-robin position among non-victims
  int victim_ = -1;     // process parked at its pending CAS
  uint64_t stall_ = 0;  // stall length, fixed at 6n+10 on first pick
  uint64_t stall_left_ = 0;
};

/// Bursty-arrival schedule (ISSUE 7: the E13 QoS family's arrival pattern,
/// run under exact step accounting): the scheduled process keeps the
/// processor for a burst of `on` consecutive steps, then is parked for
/// `off` steps of cooldown before it becomes eligible again. Eligible
/// runnable processes are picked round-robin; when every runnable process
/// is cooling down, the one whose cooldown expires first runs early (lowest
/// pid on ties), so the schedule stays work-conserving and every workload
/// terminates. `bursty:1:0` degenerates to round-robin.
class BurstyPolicy : public SchedulingPolicy {
 public:
  BurstyPolicy(uint64_t on, uint64_t off) : on_(on), off_(off) {
    if (on < 1)
      throw std::invalid_argument(
          "sim::BurstyPolicy: burst length must be >= 1");
  }

  int pick(const std::vector<char>& runnable, uint64_t step) override {
    const int n = static_cast<int>(runnable.size());
    if (eligible_at_.size() < runnable.size())
      eligible_at_.resize(runnable.size(), 0);

    // Continue the current burst while its owner can still run.
    if (cur_ >= 0 && burst_left_ > 0 && runnable[static_cast<size_t>(cur_)]) {
      --burst_left_;
      return cur_;
    }
    // Burst over (or owner finished): start its cooldown.
    if (cur_ >= 0) eligible_at_[static_cast<size_t>(cur_)] = step + off_;

    // Round-robin among eligible runnable processes; else the runnable
    // process closest to eligibility (lowest pid ties) runs early.
    int next = -1;
    for (int k = 1; k <= n; ++k) {
      int c = (cur_ + k + n) % n;
      if (!runnable[static_cast<size_t>(c)]) continue;
      if (eligible_at_[static_cast<size_t>(c)] <= step) {
        next = c;
        break;
      }
      if (next < 0 || eligible_at_[static_cast<size_t>(c)] <
                          eligible_at_[static_cast<size_t>(next)])
        next = c;
    }
    cur_ = next;
    burst_left_ = on_ - 1;  // this pick consumes the burst's first step
    return next;
  }

 private:
  uint64_t on_;
  uint64_t off_;
  int cur_ = -1;             // owner of the in-progress burst
  uint64_t burst_left_ = 0;  // steps left in the current burst
  std::vector<uint64_t> eligible_at_;
};

/// Spec strings accepted by make_policy, for --help output and docs.
inline std::vector<std::string> policy_names() {
  return {"round-robin", "random:<seed>", "anti-faa", "stall-refresh",
          "bursty:<on>:<off>"};
}

/// Builds a fresh policy from its spec string; throws std::invalid_argument
/// on unknown names or a missing/zero random seed. Each call returns an
/// independent policy instance (policies are stateful).
inline std::unique_ptr<SchedulingPolicy> make_policy(const std::string& spec) {
  if (spec == "round-robin" || spec == "rr")
    return std::make_unique<RoundRobinPolicy>();
  if (spec == "anti-faa") return std::make_unique<AntiFaaPolicy>();
  if (spec == "stall-refresh") return std::make_unique<StallRefreshPolicy>();
  if (spec.rfind("random", 0) == 0) {
    if (spec.size() < 8 || spec[6] != ':')
      throw std::invalid_argument(
          "sim::make_policy: \"" + spec +
          "\" — the random adversary needs an explicit seed: \"random:<seed>\""
          " with seed >= 1 (seed 0 is rejected, see RandomPolicy)");
    // All-digits check first: stoull would silently wrap "random:-1" to
    // 2^64-1 — the exact class of silent seed remapping this factory
    // exists to eliminate.
    std::string digits = spec.substr(7);
    bool all_digits = !digits.empty();
    for (char c : digits)
      if (c < '0' || c > '9') all_digits = false;
    uint64_t seed = 0;
    try {
      if (!all_digits) throw std::invalid_argument(spec);
      seed = std::stoull(digits);
    } catch (const std::exception&) {
      throw std::invalid_argument("sim::make_policy: bad seed in \"" + spec +
                                  "\" (want \"random:<seed>\", seed >= 1)");
    }
    if (seed == 0)
      throw std::invalid_argument(
          "sim::make_policy: \"random:0\" is invalid — seed 0 is the "
          "xorshift64* fixed point; use any seed >= 1");
    return std::make_unique<RandomPolicy>(seed);
  }
  if (spec.rfind("bursty", 0) == 0) {
    const std::string want =
        "want \"bursty:<on>:<off>\" with on >= 1 (burst length, in steps) "
        "and off >= 0 (cooldown steps)";
    size_t first = spec.find(':');
    size_t second =
        first == std::string::npos ? std::string::npos
                                   : spec.find(':', first + 1);
    if (first != 6 || second == std::string::npos)
      throw std::invalid_argument("sim::make_policy: bad bursty spec \"" +
                                  spec + "\"; " + want);
    std::string on_s = spec.substr(7, second - 7);
    std::string off_s = spec.substr(second + 1);
    // All-digits checks first, the random:<seed> idiom: stoull would
    // silently wrap "bursty:-1:5" and accept trailing junk.
    auto all_digits = [](const std::string& s) {
      if (s.empty()) return false;
      for (char c : s)
        if (c < '0' || c > '9') return false;
      return true;
    };
    uint64_t on = 0, off = 0;
    try {
      if (!all_digits(on_s) || !all_digits(off_s))
        throw std::invalid_argument(spec);
      on = std::stoull(on_s);
      off = std::stoull(off_s);
    } catch (const std::exception&) {
      throw std::invalid_argument("sim::make_policy: bad burst lengths in \"" +
                                  spec + "\"; " + want);
    }
    if (on == 0)
      throw std::invalid_argument(
          "sim::make_policy: burst length 0 in \"" + spec +
          "\" is invalid (a process must run at least one step per burst); " +
          want);
    return std::make_unique<BurstyPolicy>(on, off);
  }
  std::string names;
  for (const std::string& n : policy_names()) names += " " + n;
  throw std::invalid_argument("sim::make_policy: unknown adversary \"" + spec +
                              "\"; known:" + names);
}

}  // namespace wfq::sim
