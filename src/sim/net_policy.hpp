// Seeded message-level network adversary for the raft sim harness (ISSUE 10).
// The shared-memory baton scheduler in scheduler.hpp adversarially interleaves
// atomic steps; raft is message-passing, so its adversary instead decides the
// fate of every send: dropped, delayed by how much, or blocked by the current
// partition. Everything is derived from one core::SplitMix stream, so a
// (seed, params) pair names one exact network behavior — the sim suite replays
// hundreds of such schedules and asserts safety on each.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hash.hpp"

namespace wfq::sim {

/// Per-send verdict returned by NetPolicy::on_send.
struct SendFate {
  bool drop = false;
  uint64_t delay_ms = 0;  // delivery latency when not dropped
};

struct NetPolicyConfig {
  uint64_t seed = 1;
  /// Probability (in 1/256 units) that any single message is dropped.
  /// 26 ≈ 10% loss. Applies on top of partitions.
  uint32_t drop_per_256 = 26;
  /// Delivery delay is uniform in [min_delay_ms, max_delay_ms].
  uint64_t min_delay_ms = 1;
  uint64_t max_delay_ms = 10;
  /// Partition churn: every [min,max] ms the policy re-draws the partition —
  /// either heals the network or splits the n nodes in two random sides
  /// (messages crossing sides are dropped). 0 repartition_max_ms disables
  /// partitions entirely.
  uint64_t repartition_min_ms = 100;
  uint64_t repartition_max_ms = 400;
  /// Probability (in 1/256 units) that a re-draw heals instead of splits.
  uint32_t heal_per_256 = 96;
};

class NetPolicy {
 public:
  NetPolicy(NetPolicyConfig cfg, int nodes)
      : cfg_(cfg), nodes_(nodes), rng_(cfg.seed), side_(size_t(nodes), 0) {
    schedule_next_repartition(0);
  }

  /// Advances the partition schedule to virtual time `now_ms`. Call before
  /// consulting on_send for sends happening at `now_ms`.
  void advance(uint64_t now_ms) {
    while (cfg_.repartition_max_ms != 0 && now_ms >= next_repartition_ms_) {
      redraw_partition();
      schedule_next_repartition(next_repartition_ms_);
    }
  }

  /// Heals the network and stops future partitions/drops; the sim suite
  /// calls this for its "after the storm, the cluster must converge" phase.
  void heal_forever() {
    cfg_.repartition_max_ms = 0;
    cfg_.drop_per_256 = 0;
    for (auto& s : side_) s = 0;
    partitioned_ = false;
  }

  SendFate on_send(int from, int to) {
    SendFate f;
    if (partitioned_ &&
        side_[static_cast<size_t>(from)] != side_[static_cast<size_t>(to)]) {
      f.drop = true;
      return f;
    }
    if (cfg_.drop_per_256 != 0 && rng_.below(256) < cfg_.drop_per_256) {
      f.drop = true;
      return f;
    }
    f.delay_ms = cfg_.min_delay_ms +
                 rng_.below(cfg_.max_delay_ms - cfg_.min_delay_ms + 1);
    return f;
  }

  bool partitioned() const { return partitioned_; }

 private:
  void schedule_next_repartition(uint64_t from_ms) {
    if (cfg_.repartition_max_ms == 0) return;
    next_repartition_ms_ =
        from_ms + cfg_.repartition_min_ms +
        rng_.below(cfg_.repartition_max_ms - cfg_.repartition_min_ms + 1);
  }

  void redraw_partition() {
    if (rng_.below(256) < cfg_.heal_per_256) {
      partitioned_ = false;
      for (auto& s : side_) s = 0;
      return;
    }
    // Split into two non-empty sides: each node flips a coin; if the draw
    // degenerates (all one side), force node 0 across.
    partitioned_ = true;
    int ones = 0;
    for (auto& s : side_) {
      s = static_cast<char>(rng_.below(2));
      ones += s;
    }
    if (ones == 0 || ones == nodes_) side_[0] ^= 1;
  }

  NetPolicyConfig cfg_;
  int nodes_;
  core::SplitMix rng_;
  std::vector<char> side_;
  bool partitioned_ = false;
  uint64_t next_repartition_ms_ = 0;
};

}  // namespace wfq::sim
