// Deterministic cooperative scheduler: runs p simulated processes, each on
// its own OS thread, but hands a single execution baton between them so that
// exactly one process runs at a time. SimPlatform atomics call yield_point()
// before every shared-memory access, so the pluggable SchedulingPolicy (the
// adversary) decides the exact interleaving of shared steps. The interleaving
// depends only on the policy — never on OS thread timing — which makes every
// sim run (and its recorded trace) bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <semaphore>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace wfq::sim {

/// Kind of the shared-memory access a process is about to perform; reported
/// to the policy through before_step so targeted adversaries (stall-refresh)
/// can park a process at a chosen primitive — e.g. right before the install
/// CAS of the ordering tree's Refresh.
enum class StepKind { load, store, cas, faa };

/// The adversary: picks which runnable process takes the next shared step.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  /// `runnable[i]` is true for processes that have not finished. At least one
  /// entry is true. Returns the index of the process to run next.
  virtual int pick(const std::vector<char>& runnable, uint64_t step) = 0;
  /// Called when process `pid` reaches its next shared access, before pick
  /// decides who runs: `kind` is the access pid will perform when it is next
  /// granted a step. A policy that parks pid now stalls it mid-primitive.
  /// Default: ignore (round-robin/random/anti-faa are kind-oblivious).
  virtual void before_step(int pid, StepKind kind) {
    (void)pid;
    (void)kind;
  }
};

/// The paper's canonical worst-case adversary for CAS-based queues: perfect
/// lock-step. Every runnable process takes exactly one shared step per round.
class RoundRobinPolicy : public SchedulingPolicy {
 public:
  int pick(const std::vector<char>& runnable, uint64_t /*step*/) override {
    int n = static_cast<int>(runnable.size());
    for (int k = 1; k <= n; ++k) {
      int c = (last_ + k) % n;
      if (runnable[static_cast<size_t>(c)]) {
        last_ = c;
        return c;
      }
    }
    return -1;
  }

 private:
  int last_ = -1;
};

/// Seeded adversary: picks a uniformly pseudo-random runnable process each
/// step (xorshift64*). Same seed => same schedule, for replay tests.
///
/// Seed 0 is rejected, not remapped: 0 is the fixed point of xorshift64*
/// (the generator would emit 0 forever), and silently substituting a magic
/// constant made "random:0" replay as some undocumented other seed. The
/// factory (sim::make_policy) surfaces the same error with the spec string.
class RandomPolicy : public SchedulingPolicy {
 public:
  explicit RandomPolicy(uint64_t seed) : state_(seed) {
    if (seed == 0)
      throw std::invalid_argument(
          "sim::RandomPolicy: seed 0 is invalid (xorshift64* fixed point); "
          "use any seed >= 1");
  }

  int pick(const std::vector<char>& runnable, uint64_t /*step*/) override {
    int live = 0;
    for (char r : runnable) live += r ? 1 : 0;
    uint64_t x = next();
    int target = static_cast<int>(x % static_cast<uint64_t>(live));
    for (size_t i = 0; i < runnable.size(); ++i) {
      if (runnable[i] && target-- == 0) return static_cast<int>(i);
    }
    return -1;
  }

 private:
  uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }
  uint64_t state_;
};

/// Thrown out of a process body when the run exceeds its step budget; the
/// scheduler unwinds every process and Scheduler::run rethrows.
struct StepLimitExceeded : std::runtime_error {
  explicit StepLimitExceeded(uint64_t limit)
      : std::runtime_error("sim: step limit exceeded (" +
                           std::to_string(limit) + ")") {}
};

class Scheduler;

namespace detail {
struct TlsCtx {
  Scheduler* sched = nullptr;
  int pid = -1;
};
inline TlsCtx& tls_ctx() {
  thread_local TlsCtx ctx;
  return ctx;
}
}  // namespace detail

class Scheduler {
 public:
  explicit Scheduler(std::unique_ptr<SchedulingPolicy> policy,
                     uint64_t max_steps = 200'000'000)
      : policy_(std::move(policy)), max_steps_(max_steps) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Runs one body per simulated process to completion under the policy.
  void run(std::vector<std::function<void()>> bodies) {
    size_t n = bodies.size();
    if (n == 0) return;
    runnable_.assign(n, 1);
    sems_.clear();
    sems_.reserve(n);
    for (size_t i = 0; i < n; ++i)
      sems_.push_back(std::make_unique<std::binary_semaphore>(0));
    live_ = n;
    limit_hit_ = false;
    steps_ = 0;
    trace_.clear();

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      threads.emplace_back([this, i, body = std::move(bodies[i])] {
        detail::tls_ctx() = {this, static_cast<int>(i)};
        sems_[i]->acquire();  // wait for the baton
        try {
          body();
        } catch (const StepLimitExceeded&) {
          // unwound by the step budget; fall through to finish
        }
        finish(static_cast<int>(i));
        detail::tls_ctx() = {};
      });
    }
    // Hand the baton to the policy's first pick; it flows process-to-process
    // from here, returning to main_done_ only when every body has finished.
    int first = policy_->pick(runnable_, steps_);
    sems_[static_cast<size_t>(first)]->release();
    main_done_.acquire();
    for (auto& t : threads) t.join();
    if (limit_hit_) throw StepLimitExceeded(max_steps_);
  }

  /// One entry per shared step: which process took it. Only the policy
  /// determines this sequence, so identical (policy state, bodies) runs
  /// produce identical traces.
  const std::vector<int>& trace() const { return trace_; }
  uint64_t steps() const { return steps_; }

  /// Called by SimPlatform before each shared-memory access of the calling
  /// simulated process, with that access's kind. No-op when the thread is
  /// not a simulated process.
  static void yield_point(StepKind kind) {
    detail::TlsCtx& ctx = detail::tls_ctx();
    if (ctx.sched != nullptr) ctx.sched->yield(ctx.pid, kind);
  }

 private:
  // All scheduler state below is only ever touched by the baton holder, so
  // it needs no locking; the semaphore handoff orders the accesses.
  void yield(int pid, StepKind kind) {
    if (limit_hit_ || ++steps_ > max_steps_) {
      limit_hit_ = true;
      throw StepLimitExceeded(max_steps_);
    }
    trace_.push_back(pid);
    policy_->before_step(pid, kind);
    int next = policy_->pick(runnable_, steps_);
    if (next == pid) return;  // keep running
    sems_[static_cast<size_t>(next)]->release();
    sems_[static_cast<size_t>(pid)]->acquire();
  }

  void finish(int pid) {
    runnable_[static_cast<size_t>(pid)] = 0;
    if (--live_ == 0) {
      main_done_.release();
      return;
    }
    int next = policy_->pick(runnable_, steps_);
    sems_[static_cast<size_t>(next)]->release();
  }

  std::unique_ptr<SchedulingPolicy> policy_;
  uint64_t max_steps_;
  uint64_t steps_ = 0;
  bool limit_hit_ = false;
  size_t live_ = 0;
  std::vector<char> runnable_;
  std::vector<std::unique_ptr<std::binary_semaphore>> sems_;
  std::binary_semaphore main_done_{0};
  std::vector<int> trace_;
};

}  // namespace wfq::sim
