// Thread-pinning helper (ISSUE 8 satellite): wall-clock experiments (E13c
// service-loop ns/item, the E14 broker rig) pin their servicer/loadgen
// threads so throughput numbers stop wandering with the OS scheduler's
// placement choices run to run. Pinning is best-effort by design: on a
// single-core host (this repo's usual CI class) or a platform without
// pthread_setaffinity_np it is a no-op that reports false, and callers
// proceed unpinned — a bench must never fail because the host cannot pin.
#pragma once

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace wfq::platform {

/// Number of logical cores visible to this process (>= 1).
inline int hardware_cores() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// Pins the CALLING thread to `core` (wrapped modulo the visible core
/// count, so callers can hand out dense indices without counting cores).
/// Returns true iff the affinity call succeeded; false on non-Linux
/// platforms, on failure, and — by the modulo — never out of range.
inline bool pin_thread_to_core(int core) {
#if defined(__linux__)
  int ncores = hardware_cores();
  if (core < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<size_t>(core % ncores), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace wfq::platform
