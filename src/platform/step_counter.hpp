// Shared-memory step accounting (the paper's cost model: every access to a
// shared base object — read, write, CAS attempt, fetch&add — is one step).
// Counters are thread-local, so under the cooperative simulator each
// simulated process accumulates its own exact per-operation step counts.
#pragma once

#include <cstdint>

namespace wfq::platform {

/// Per-thread tally of shared-memory steps, split by primitive.
struct StepCounts {
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t cas_attempts = 0;
  uint64_t cas_failures = 0;  // subset of cas_attempts
  uint64_t faas = 0;

  /// Total shared-memory steps (failed CAS attempts already count as
  /// attempts; failures are not double-counted).
  uint64_t total() const { return loads + stores + cas_attempts + faas; }

  StepCounts operator-(const StepCounts& o) const {
    return {loads - o.loads, stores - o.stores, cas_attempts - o.cas_attempts,
            cas_failures - o.cas_failures, faas - o.faas};
  }
};

inline StepCounts& tls_counts() {
  thread_local StepCounts counts;
  return counts;
}

/// RAII window over the calling thread's step counters: construct before an
/// operation, call delta() after to get the exact steps the operation took.
class StepScope {
 public:
  StepScope() : start_(tls_counts()) {}
  StepCounts delta() const { return tls_counts() - start_; }

 private:
  StepCounts start_;
};

/// Simulated-process id of the calling thread (leaf index in the ordering
/// tree). Set by Queue::bind_thread; defaults to 0 for single-threaded use.
inline int& tls_pid() {
  thread_local int pid = 0;
  return pid;
}

inline void bind_thread(int pid) { tls_pid() = pid; }
inline int current_pid() { return tls_pid(); }

}  // namespace wfq::platform
