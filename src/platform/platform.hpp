// Platform layer: the queue (and baselines) are templated on a Platform that
// supplies Atomic<U>. Every load/store/CAS/fetch&add through an Atomic is one
// shared-memory step in the paper's cost model and is tallied in the calling
// thread's StepCounts.
//
//  - RealPlatform: plain std::atomic operations (plus counting). Used for
//    wall-clock and single-threaded measurements.
//  - SimPlatform: identical, but yields to the cooperative sim scheduler
//    before every access, so the adversary policy controls the interleaving
//    at shared-memory-step granularity.
#pragma once

#include <atomic>

#include "platform/step_counter.hpp"
#include "sim/scheduler.hpp"

namespace wfq::platform {

namespace detail {

/// Yields to the sim scheduler before a shared access, telling the policy
/// what kind of access this process will perform when next granted a step
/// (targeted adversaries like stall-refresh park processes mid-primitive).
template <bool Simulated>
inline void pre_step(sim::StepKind kind) {
  if constexpr (Simulated) sim::Scheduler::yield_point(kind);
  (void)kind;
}

template <bool Simulated, typename U>
class AtomicImpl {
 public:
  AtomicImpl() : v_{} {}
  explicit AtomicImpl(U init) : v_(init) {}

  U load() const {
    pre_step<Simulated>(sim::StepKind::load);
    ++tls_counts().loads;
    return v_.load(std::memory_order_acquire);
  }

  void store(U x) {
    pre_step<Simulated>(sim::StepKind::store);
    ++tls_counts().stores;
    v_.store(x, std::memory_order_release);
  }

  /// Single CAS attempt; counted even on failure (the paper charges the
  /// attempt, which is how the CAS retry problem becomes visible in E4).
  bool cas(U expected, U desired) {
    pre_step<Simulated>(sim::StepKind::cas);
    ++tls_counts().cas_attempts;
    bool ok = v_.compare_exchange_strong(expected, desired,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
    if (!ok) ++tls_counts().cas_failures;
    return ok;
  }

  U fetch_add(U d) {
    pre_step<Simulated>(sim::StepKind::faa);
    ++tls_counts().faas;
    return v_.fetch_add(d, std::memory_order_acq_rel);
  }

  /// Uncounted relaxed read for debug introspection (bench printers); not a
  /// step in the model.
  U unsafe_peek() const { return v_.load(std::memory_order_relaxed); }

  /// Uncounted initialization store (constructor-time setup only).
  void unsafe_store(U x) { v_.store(x, std::memory_order_release); }

 private:
  std::atomic<U> v_;
};

}  // namespace detail

struct RealPlatform {
  static constexpr bool kSimulated = false;
  template <typename U>
  using Atomic = detail::AtomicImpl<false, U>;
};

struct SimPlatform {
  static constexpr bool kSimulated = true;
  template <typename U>
  using Atomic = detail::AtomicImpl<true, U>;
};

}  // namespace wfq::platform
