// Deficit-weighted-round-robin service scheduler over N tenant queues
// (ISSUE 7 tentpole; structure in the spirit of MQ-ECN's dwrr.cc, SNIPPETS
// §1: active list, per-queue quantum, round-time estimate — reshaped from a
// packet switch into a dequeue-service loop over registry-built wait-free
// queues).
//
// Model: any number of producer threads enqueue through the facade into
// per-tenant backing queues; ONE servicing thread calls service_next(),
// which drains tenants in deficit-weighted round-robin order: each visit
// grants the front tenant a quantum of weight * quantum_base item-costs,
// the tenant is served until its deficit runs out (rotate to tail, deficit
// carries) or its queue goes empty (deactivate, deficit resets — an empty
// queue must not bank credit, the classic DWRR rule).
//
// Activation protocol (the producer/servicer seam): a producer that takes a
// tenant's `active` flag false->true pushes the tenant onto a Treiber stack
// of ids; the servicer drains that stack (reversed, so activation order is
// enqueue order) into the tail of its ring. Deactivation stores
// active=false and then RE-CHECKS the pending count — a producer that saw
// active==true while the servicer was concurrently deactivating did not
// push, so the servicer must claim the flag back and re-activate, or the
// tenant's items would strand. The store-then-recheck against the
// producer's increment-then-exchange is Dekker-shaped (the SB litmus: two
// threads each store then load; release/acquire alone allows BOTH loads to
// read old values, e.g. on x86 via store-buffer forwarding), so each side
// puts a seq_cst fence between its store and its load — see the fences in
// notify_enqueue and deactivate_front; the total fence order guarantees at
// least one side observes the other's store. `enqueued` is incremented
// only after the backing enqueue completed, so pending > 0 guarantees a
// fresh dequeue observes a value (only the servicer removes items) — an
// empty dequeue with pending > 0 is a stale read and is simply retried.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "svc/tenant_map.hpp"

namespace wfq::svc {

/// One serviced item: which tenant it came from plus the value.
template <typename T>
struct Serviced {
  int tenant = -1;
  T value{};
};

template <typename T>
class DwrrScheduler {
 public:
  /// Cost of one item in deficit units. Message queues serve whole items,
  /// so the packet-length byte accounting of the network DWRR collapses to
  /// unit cost; quantum_base scales how many items a weight-1 tenant may
  /// drain per round.
  static constexpr int64_t kCostPerItem = 1;

  explicit DwrrScheduler(TenantMap<T>& map, int64_t quantum_base = 1)
      : map_(map),
        quantum_base_(quantum_base),
        act_next_(static_cast<size_t>(map.size())) {
    if (quantum_base < 1)
      throw std::invalid_argument(
          "svc::DwrrScheduler: quantum_base must be >= 1 (got " +
          std::to_string(quantum_base) + ")");
    for (auto& a : act_next_) a.store(kNone, std::memory_order_relaxed);
  }

  DwrrScheduler(const DwrrScheduler&) = delete;
  DwrrScheduler& operator=(const DwrrScheduler&) = delete;

  /// Producer side: called after the tenant's `enqueued` counter was bumped
  /// (which itself happens after the backing enqueue completed). Claims the
  /// active flag; the loser of the exchange does nothing — the tenant is
  /// already in the ring or on the activation stack.
  void notify_enqueue(int t) {
    TenantEntry<T>& e = map_.entry(t);
    // Producer half of the deactivation handshake (see header comment):
    // the caller's `enqueued` increment must be globally ordered before
    // this read of `active`, or this exchange could read a stale true
    // while the deactivating servicer's pending re-check misses the
    // increment — neither side activates and the item strands.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!e.active.exchange(true, std::memory_order_acq_rel))
      push_activation(t);
  }

  /// Servicer side (single thread): the next item under DWRR order, or
  /// nullopt when no tenant has serviceable backlog. `pid` is the process
  /// slot the servicing thread binds on each backing queue.
  std::optional<Serviced<T>> service_next(int pid) {
    drain_activations();
    while (!ring_.empty()) {
      int t = ring_.front();
      TenantEntry<T>& e = map_.entry(t);
      if (!front_visited_) begin_visit(t, e);
      // serviced/deficit are single-writer (this thread): relaxed RMWs are
      // plain load/op/store pairs, atomic only for stats snapshots.
      if (e.deficit.load(std::memory_order_relaxed) >= kCostPerItem) {
        std::optional<T> v = dequeue_retry(e, pid);
        if (v.has_value()) {
          e.deficit.fetch_sub(kCostPerItem, std::memory_order_relaxed);
          e.serviced.fetch_add(1, std::memory_order_relaxed);
          ++serviced_this_round_;
          // End the visit eagerly: drain to empty deactivates, a spent
          // quantum rotates NOW (not lazily on the next call) so tenants
          // activated between calls join the ring behind the rotation —
          // ring order stays activation order, the property the sequential
          // differential vs the reference round-robin model pins down.
          if (pending(e) == 0)
            deactivate_front(t, e);
          else if (e.deficit.load(std::memory_order_relaxed) < kCostPerItem)
            rotate_front();
          return Serviced<T>{t, std::move(*v)};
        }
        deactivate_front(t, e);  // observably empty: deficit must not bank
        continue;
      }
      rotate_front();  // quantum spent; remaining deficit carries over
    }
    return std::nullopt;
  }

  /// Completed ring rotations (a round ends when the marker tenant — the
  /// ring front when the round began — is granted its next quantum).
  uint64_t rounds() const { return rounds_; }

  /// EWMA (alpha = 0.75, the MQ-ECN estimate_round_alpha_ idiom) of items
  /// serviced per completed round — the service layer's round-time
  /// estimate, in item units rather than the switch's bytes.
  double round_service_estimate() const { return round_estimate_; }

 private:
  static constexpr int kNone = -1;

  int64_t quantum(const TenantEntry<T>& e) const {
    return quantum_base_ *
           static_cast<int64_t>(e.weight.load(std::memory_order_relaxed));
  }

  /// Completed-but-unserviced items. `enqueued` is incremented after its
  /// enqueue returned; `serviced` is this thread's own field.
  uint64_t pending(const TenantEntry<T>& e) const {
    return e.enqueued.load(std::memory_order_acquire) -
           e.serviced.load(std::memory_order_relaxed);
  }

  /// Dequeue that distinguishes "observably empty" from "a producer's
  /// completed enqueue raced past my attempt": with pending > 0 the item is
  /// committed and only this thread dequeues, so one retry finds it.
  std::optional<T> dequeue_retry(TenantEntry<T>& e, int pid) {
    e.queue.bind_thread(pid);
    for (;;) {
      std::optional<T> v = e.queue.dequeue();
      if (v.has_value() || pending(e) == 0) return v;
    }
  }

  void begin_visit(int t, TenantEntry<T>& e) {
    front_visited_ = true;
    e.deficit.fetch_add(quantum(e), std::memory_order_relaxed);
    if (t == round_marker_) {
      // The round marker came back around: one full rotation completed.
      round_estimate_ = rounds_ == 0
                            ? static_cast<double>(serviced_this_round_)
                            : 0.75 * round_estimate_ +
                                  0.25 * static_cast<double>(
                                             serviced_this_round_);
      serviced_this_round_ = 0;
      ++rounds_;
    } else if (round_marker_ == kNone) {
      round_marker_ = t;  // ring was empty (or marker deactivated): new round
    }
  }

  void rotate_front() {
    int t = ring_.front();
    ring_.pop_front();
    ring_.push_back(t);
    front_visited_ = false;
  }

  void deactivate_front(int t, TenantEntry<T>& e) {
    ring_.pop_front();
    front_visited_ = false;
    e.deficit.store(0, std::memory_order_relaxed);
    if (t == round_marker_) round_marker_ = kNone;
    e.active.store(false, std::memory_order_release);
    // Servicer half of the deactivation handshake: the fence orders the
    // store above before the pending re-check below against the producer's
    // increment-then-fence-then-exchange in notify_enqueue, forbidding the
    // SB outcome where both sides read stale values. A producer that
    // completed an enqueue between our empty observation and the store
    // above saw active==true and skipped its push; whoever wins this
    // exchange re-activates.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (pending(e) != 0 && !e.active.exchange(true, std::memory_order_acq_rel))
      push_activation(t);
  }

  // --- activation stack (multi-producer Treiber, whole-stack drain) -------
  // A tenant id is on the stack at most once (guarded by its active flag),
  // so intrusive next-links per tenant suffice and nothing allocates.

  void push_activation(int t) {
    int head = act_head_.load(std::memory_order_relaxed);
    do {
      act_next_[static_cast<size_t>(t)].store(head,
                                              std::memory_order_relaxed);
    } while (!act_head_.compare_exchange_weak(head, t,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed));
  }

  void drain_activations() {
    int head = act_head_.exchange(kNone, std::memory_order_acq_rel);
    if (head == kNone) return;
    // Pushes are LIFO; reverse so tenants join the ring in activation
    // (enqueue) order — what makes single-threaded histories match the
    // reference round-robin model exactly.
    int rev = kNone;
    while (head != kNone) {
      int nxt = act_next_[static_cast<size_t>(head)].load(
          std::memory_order_relaxed);
      act_next_[static_cast<size_t>(head)].store(rev,
                                                 std::memory_order_relaxed);
      rev = head;
      head = nxt;
    }
    while (rev != kNone) {
      ring_.push_back(rev);
      rev = act_next_[static_cast<size_t>(rev)].load(
          std::memory_order_relaxed);
    }
  }

  TenantMap<T>& map_;
  int64_t quantum_base_;

  // Servicer-owned DWRR state.
  std::deque<int> ring_;        // active tenants, service order
  bool front_visited_ = false;  // has the current front received its quantum
  int round_marker_ = kNone;    // ring front when the current round began
  uint64_t rounds_ = 0;
  uint64_t serviced_this_round_ = 0;
  double round_estimate_ = 0;

  // Producer-shared activation stack.
  std::atomic<int> act_head_{kNone};
  std::vector<std::atomic<int>> act_next_;
};

}  // namespace wfq::svc
