// ServiceFacade: the one object E13 and user code talk to — owns the
// TenantMap and the DwrrScheduler, exposes enqueue(tenant, v) /
// service_next() plus per-tenant counters. Producers and the servicer
// first bind_thread(pid) like on any registry object; the facade re-binds
// the backing queues lazily on each call because one logical tenant queue
// is touched by many threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "svc/dwrr.hpp"
#include "svc/tenant_map.hpp"

namespace wfq::svc {

template <typename T>
class ServiceFacade {
 public:
  ServiceFacade(int ntenants, const std::string& backing_key,
                const api::QueueConfig& cfg, int64_t quantum_base = 1)
      : map_(std::make_unique<TenantMap<T>>(ntenants, backing_key, cfg)),
        sched_(std::make_unique<DwrrScheduler<T>>(*map_, quantum_base)) {}

  // Movable (unique_ptr members keep the scheduler's reference into the
  // map valid across moves), not copyable.
  ServiceFacade(ServiceFacade&&) noexcept = default;
  ServiceFacade& operator=(ServiceFacade&&) noexcept = default;

  /// Bind the calling thread to a process slot, like AnyQueue::bind_thread;
  /// the slot is forwarded to every backing-queue op this thread performs.
  void bind_thread(int pid) { bound_pid() = pid; }

  /// Producer op: enqueue v for `tenant`. The order here is the whole
  /// correctness story — backing enqueue, then the completed-enqueue
  /// counter, then activation (see dwrr.hpp's header comment).
  void enqueue(int tenant, T v) {
    TenantEntry<T>& e = map_->entry(tenant);
    e.queue.bind_thread(bound_pid());
    e.queue.enqueue(std::move(v));
    e.enqueued.fetch_add(1, std::memory_order_release);
    sched_->notify_enqueue(tenant);
  }

  /// Servicer op (single thread): next item in DWRR order.
  std::optional<Serviced<T>> service_next() {
    return sched_->service_next(bound_pid());
  }

  void set_weight(int tenant, uint32_t w) { map_->set_weight(tenant, w); }

  int tenants() const { return map_->size(); }
  const std::string& backing() const { return map_->backing(); }

  struct TenantStats {
    uint32_t weight = 1;
    uint64_t enqueued = 0;
    uint64_t serviced = 0;
    int64_t deficit = 0;
    bool active = false;
  };

  /// Snapshot of one tenant's counters. Exact when the servicer is quiesced
  /// (how the tests read it); a race-free monotone under-estimate mid-flight
  /// (serviced/deficit are relaxed atomics, single-writer on the servicer).
  TenantStats tenant_stats(int tenant) const {
    const TenantEntry<T>& e = map_->entry(tenant);
    return TenantStats{e.weight.load(std::memory_order_relaxed),
                       e.enqueued.load(std::memory_order_acquire),
                       e.serviced.load(std::memory_order_relaxed),
                       e.deficit.load(std::memory_order_relaxed),
                       e.active.load(std::memory_order_acquire)};
  }

  uint64_t total_serviced() const {
    uint64_t total = 0;
    for (int t = 0; t < map_->size(); ++t)
      total += map_->entry(t).serviced.load(std::memory_order_relaxed);
    return total;
  }

  /// One tenant's backing-queue block-space snapshot (AnyQueue::space_stats
  /// contract: quiescent-only; `known == false` for baselines without a
  /// space debug surface).
  api::SpaceStats tenant_space_stats(int tenant) const {
    return map_->entry(tenant).queue.space_stats();
  }

  /// Aggregate over every tenant's backing queue: summed live blocks and
  /// EBR backlog. `known` only when every backing reports — a mixed or
  /// baseline-backed facade must read "-", not a partial sum that looks
  /// total. This is the surface the broker's STAT opcode and --report
  /// expose, so E6-style space gates can be read from a live process.
  api::SpaceStats space_stats() const {
    api::SpaceStats total;
    total.known = true;
    for (int t = 0; t < map_->size(); ++t) {
      api::SpaceStats s = map_->entry(t).queue.space_stats();
      total.live_blocks += s.live_blocks;
      total.ebr_retired += s.ebr_retired;
      total.known = total.known && s.known;
    }
    return total;
  }

  uint64_t rounds() const { return sched_->rounds(); }
  double round_service_estimate() const {
    return sched_->round_service_estimate();
  }

 private:
  /// Per-(facade, thread) binding: each facade gets a never-reused id and
  /// each thread keeps its own {id -> pid} list, so a thread that binds
  /// different pids on two facades does not clobber one binding with the
  /// other (a single static thread_local would). Ids survive moves (the
  /// moved-from facade keeps the value but its map_ is null, so it is
  /// unusable anyway) and are never recycled, so a new facade can't
  /// inherit a stale binding. Entries for destroyed facades linger — a few
  /// bytes per facade a thread ever bound, scanned linearly.
  static uint64_t next_bind_id() {
    static std::atomic<uint64_t> n{0};
    return n.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  int& bound_pid() const {
    static thread_local std::vector<std::pair<uint64_t, int>> binds;
    for (auto& [id, pid] : binds)
      if (id == bind_id_) return pid;
    binds.emplace_back(bind_id_, 0);
    return binds.back().second;
  }

  std::unique_ptr<TenantMap<T>> map_;
  std::unique_ptr<DwrrScheduler<T>> sched_;
  uint64_t bind_id_ = next_bind_id();
};

}  // namespace wfq::svc
