// Tenant table for the multi-tenant QoS service layer (ISSUE 7): maps a
// tenant id to its backing queue (any registry key — `ubq`, `bounded:g=8`,
// `faaq`, ... — built through api::make_queue, so the service layer rides
// the same seam as every experiment) plus the per-tenant weight and the
// producer/servicer counters the DWRR scheduler's activation protocol
// needs. Also home of ZipfTraffic, the deterministic Zipf-skew (optionally
// bursty) tenant-arrival generator the E13 experiment family drives its
// workloads with.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/concurrent_queue.hpp"
#include "api/queue_registry.hpp"
#include "core/hash.hpp"

namespace wfq::svc {

/// Per-tenant state. The queue, `weight`, `enqueued` and `active` are
/// written from producer threads; `serviced` and `deficit` are written only
/// by the (single) servicing thread — see DwrrScheduler for the
/// single-servicer contract — but are atomic (relaxed) so stats readers can
/// snapshot them mid-flight without a data race.
template <typename T>
struct TenantEntry {
  explicit TenantEntry(api::AnyQueue<T> q) : queue(std::move(q)) {}

  api::AnyQueue<T> queue;
  /// DWRR weight: the tenant's quantum is weight * quantum_base items per
  /// round. Relaxed atomic so experiments can retune between phases without
  /// a lock; the servicer re-reads it at each round start.
  std::atomic<uint32_t> weight{1};
  /// Completed enqueues, incremented AFTER the backing enqueue returns —
  /// the ordering the scheduler's empty-vs-pending disambiguation relies on.
  std::atomic<uint64_t> enqueued{0};
  /// True while the tenant is in the active ring or queued for activation;
  /// the exchange on this flag is what keeps ring entries unique.
  std::atomic<bool> active{false};
  /// Items handed out by service_next; single-writer (servicer), relaxed
  /// atomic only so concurrent stats snapshots are race-free.
  std::atomic<uint64_t> serviced{0};
  /// DWRR deficit counter (in item-cost units); servicer-written, same
  /// single-writer/relaxed-snapshot contract as `serviced`.
  std::atomic<int64_t> deficit{0};
};

/// Tenant id -> {backing queue, weight, counters}. Entries live in a deque
/// so they never relocate (they hold atomics and the type-erased queue);
/// the tenant count is fixed at construction — "adding a tenant" at this
/// layer means building a wider map, exactly like growing an ordering tree.
template <typename T>
class TenantMap {
 public:
  TenantMap(int ntenants, const std::string& backing_key,
            const api::QueueConfig& cfg)
      : backing_(backing_key) {
    if (ntenants < 1)
      throw std::invalid_argument(
          "svc::TenantMap: tenant count must be >= 1 (got " +
          std::to_string(ntenants) + ")");
    for (int t = 0; t < ntenants; ++t)
      entries_.emplace_back(api::make_queue<T>(backing_key, cfg));
  }

  int size() const { return static_cast<int>(entries_.size()); }
  const std::string& backing() const { return backing_; }

  TenantEntry<T>& entry(int t) {
    if (t < 0 || t >= size())
      throw std::invalid_argument("svc::TenantMap: tenant id " +
                                  std::to_string(t) + " out of range [0, " +
                                  std::to_string(size()) + ")");
    return entries_[static_cast<size_t>(t)];
  }
  const TenantEntry<T>& entry(int t) const {
    return const_cast<TenantMap*>(this)->entry(t);
  }

  /// Weights must stay >= 1: a zero-weight tenant would receive no quantum
  /// and its backlog would sit in the ring forever (DWRR has no concept of
  /// a starved-but-active queue).
  void set_weight(int t, uint32_t w) {
    if (w < 1)
      throw std::invalid_argument(
          "svc::TenantMap: weight must be >= 1 (got " + std::to_string(w) +
          " for tenant " + std::to_string(t) + ")");
    entry(t).weight.store(w, std::memory_order_relaxed);
  }

 private:
  std::string backing_;
  std::deque<TenantEntry<T>> entries_;  // stable addresses, non-movable entries
};

/// Deterministic Zipf-skew tenant-arrival generator: next() returns a
/// tenant id with P(t) proportional to 1/(t+1)^skew (skew 0 = uniform), in
/// bursts of `burst` consecutive arrivals to the same tenant — the bursty
/// arrival pattern E13b's latency runs and E13a's skewed-traffic rows are
/// driven by. xorshift64* over a splitmix64-mixed seed, so any seed
/// (including 0) is valid and the sequence is bit-reproducible.
class ZipfTraffic {
 public:
  ZipfTraffic(int ntenants, double skew, uint64_t seed, int burst = 1)
      : burst_(burst) {
    if (ntenants < 1)
      throw std::invalid_argument(
          "svc::ZipfTraffic: tenant count must be >= 1");
    if (skew < 0)
      throw std::invalid_argument("svc::ZipfTraffic: skew must be >= 0");
    if (burst < 1)
      throw std::invalid_argument("svc::ZipfTraffic: burst must be >= 1");
    // splitmix64 pass (shared finisher, core/hash.hpp): maps every seed
    // (0 included) to a full-period xorshift64* state, unlike feeding the
    // raw seed in (0 is its fixed point — the trap RandomPolicy rejects
    // loudly; here we can mix instead because the seed is never replayed
    // by spec string).
    state_ = core::splitmix64(seed);
    if (state_ == 0) state_ = 0x9e3779b97f4a7c15ULL;
    cdf_.reserve(static_cast<size_t>(ntenants));
    double total = 0;
    for (int t = 0; t < ntenants; ++t) {
      total += 1.0 / std::pow(static_cast<double>(t + 1), skew);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  /// Next arriving tenant id (resampled every `burst` calls).
  int next() {
    if (left_ == 0) {
      double u = u01();
      int lo = 0, hi = static_cast<int>(cdf_.size()) - 1;
      while (lo < hi) {
        int mid = (lo + hi) / 2;
        if (cdf_[static_cast<size_t>(mid)] < u)
          lo = mid + 1;
        else
          hi = mid;
      }
      cur_ = lo;
      left_ = burst_;
    }
    --left_;
    return cur_;
  }

 private:
  double u01() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    uint64_t x = state_ * 0x2545f4914f6cdd1dULL;
    return static_cast<double>(x >> 11) * 0x1.0p-53;
  }

  std::vector<double> cdf_;
  uint64_t state_;
  int burst_;
  int left_ = 0;
  int cur_ = 0;
};

}  // namespace wfq::svc
