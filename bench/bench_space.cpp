// E6 — Theorem 31: the bounded-space queue keeps reachable memory at
// O(p·q_max + p³ log p) words, while the unbounded version's block count
// grows linearly with the number of operations ever performed.
//
// Harness (real platform, 2 threads): run N enqueue+dequeue pairs with the
// queue size held ~q; sample live block counts as N grows. Expected shape:
// unbounded ∝ N; bounded plateaus at a level that scales with q, not N.
#include <atomic>
#include <iostream>
#include <thread>

#include "bench/common.hpp"
#include "core/bounded_queue.hpp"
#include "core/unbounded_queue.hpp"



int main() {
  std::cout << "E6: live blocks vs operations performed (Theorem 31)\n"
            << "    2 threads, queue size held ~q; GC period G=64 (paper\n"
            << "    default is p^2 log p; scaled down so the plateau is\n"
            << "    visible in a short run)\n\n";
  wfq::stats::Table table({"ops (pairs)", "q", "unbounded blocks",
                           "bounded live blocks", "bounded EBR backlog"});
  for (uint64_t q_target : {16u, 256u}) {
    for (uint64_t pairs : {2'000u, 8'000u, 32'000u}) {
      wfq::core::UnboundedQueue<uint64_t> uq(2);
      wfq::benchutil::run_gated_pairs(uq, pairs, q_target);
      wfq::core::BoundedQueue<uint64_t> bq(2, /*gc_period=*/64);
      wfq::benchutil::run_gated_pairs(bq, pairs, q_target);
      table.add_row({wfq::stats::fmt(static_cast<uint64_t>(pairs)),
                     wfq::stats::fmt(static_cast<uint64_t>(q_target)),
                     wfq::stats::fmt(static_cast<uint64_t>(uq.debug_total_blocks())),
                     wfq::stats::fmt(static_cast<uint64_t>(bq.debug_live_blocks())),
                     wfq::stats::fmt(bq.debug_ebr().retired_count())});
    }
  }
  table.print(std::cout);
  std::cout << "\n  paper expectation: unbounded grows ~ 2*(log p + 1)*ops;\n"
            << "  bounded stays flat as ops grow (plateau scales with q and\n"
            << "  G, not with ops). EBR backlog is transient garbage, also\n"
            << "  bounded.\n";
  return 0;
}
