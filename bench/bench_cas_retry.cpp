// E4 — Proposition 19 vs the CAS retry problem: our queue performs O(log p)
// CAS instructions per operation, worst case; the MS-queue performs Θ(p)
// CAS attempts per operation under the round-robin adversary (each
// successful head/tail CAS fails the other p-1 lock-step attempts).
//
// Harness: p processes each perform K enqueues in lock-step on (a) the
// wait-free queue, (b) the MS-queue. Reported: CAS attempts and failures
// per operation. Expected shape: ours ≲ 5·ceil(log2 p) and flat-ish; MS
// grows linearly in p.
#include <cmath>
#include <iostream>

#include "baselines/ms_queue.hpp"
#include "bench/common.hpp"
#include "core/unbounded_queue.hpp"
#include "platform/platform.hpp"

using wfq::benchutil::OpSamples;
using wfq::benchutil::run_round_robin;
using Sim = wfq::platform::SimPlatform;

template <typename Queue>
OpSamples measure(Queue& q, int p, int ops) {
  return run_round_robin(p, [&](int pid, OpSamples& out) {
    q.bind_thread(pid);
    for (int k = 0; k < ops; ++k) {
      wfq::platform::StepScope scope;
      q.enqueue((static_cast<uint64_t>(pid) << 32) | static_cast<uint64_t>(k));
      out.add(scope.delta());
    }
  });
}

int main() {
  std::cout
      << "E4: CAS attempts per enqueue vs p  (Proposition 19: ours O(log p);\n"
      << "    MS-queue suffers the CAS retry problem: Theta(p))\n"
      << "    simulator, round-robin adversary, K=25 enqueues/process\n\n";
  constexpr int kOps = 25;
  wfq::stats::Table table({"p", "wfq cas/op", "wfq casfail/op", "5ceil(log2 p)",
                           "ms cas/op", "ms casfail/op"});
  std::vector<double> ps, ours_cas, ms_cas;
  for (int p : {2, 4, 8, 16, 32, 64}) {
    wfq::core::UnboundedQueue<uint64_t, Sim> wq(p);
    OpSamples ws = measure(wq, p, kOps);
    wfq::baselines::MsQueue<uint64_t, Sim> mq(p);
    OpSamples ms = measure(mq, p, kOps);
    auto wc = wfq::stats::summarize(ws.cas_attempts);
    auto wf = wfq::stats::summarize(ws.cas_failures);
    auto mc = wfq::stats::summarize(ms.cas_attempts);
    auto mf = wfq::stats::summarize(ms.cas_failures);
    table.add_row(
        {wfq::stats::fmt(p), wfq::stats::fmt(wc.mean), wfq::stats::fmt(wf.mean),
         wfq::stats::fmt(5 * static_cast<int>(std::ceil(std::log2(p)))),
         wfq::stats::fmt(mc.mean), wfq::stats::fmt(mf.mean)});
    ps.push_back(p);
    ours_cas.push_back(wc.mean);
    ms_cas.push_back(mc.mean);
  }
  table.print(std::cout);
  std::cout << '\n';
  wfq::benchutil::report_shape(std::cout, "wfq cas/op", ps, ours_cas);
  wfq::benchutil::report_shape(std::cout, "ms  cas/op", ps, ms_cas);
  std::cout << "  paper expectation: wfq stays within the 5*ceil(log2 p)\n"
            << "  budget with few failures; MS-queue CAS/op grows ~ p.\n";
  return 0;
}
