// E3 — Theorem 22 (dequeue): a non-null Dequeue takes
// O(log p · log c + log q_e + log q_d) steps; a null Dequeue O(log p).
//
// Two sweeps under the round-robin adversary:
//   (a) steps vs p at (roughly) fixed queue size;
//   (b) steps vs q at fixed p = 8 (prefill phase enqueues q/p per process,
//       then a dequeue phase is measured).
// Expected shape: (a) polylog in p (log or log^2, not linear);
// (b) grows ~ log q with small constant.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "core/unbounded_queue.hpp"
#include "platform/platform.hpp"

using wfq::benchutil::OpSamples;
using wfq::benchutil::run_round_robin;
using Queue =
    wfq::core::UnboundedQueue<uint64_t, wfq::platform::SimPlatform>;

// Phase 1: each process enqueues `prefill` items. Phase 2: each process
// dequeues `ops` items, measured. One sim run (phases separated by local
// op-count, not barriers; lock-step keeps them roughly aligned).
OpSamples measure_dequeues(Queue& q, int p, int prefill, int ops) {
  return run_round_robin(p, [&](int pid, OpSamples& out) {
    q.bind_thread(pid);
    for (int k = 0; k < prefill; ++k)
      q.enqueue((static_cast<uint64_t>(pid) << 32) | static_cast<uint64_t>(k));
    for (int k = 0; k < ops; ++k) {
      wfq::platform::StepScope scope;
      auto r = q.dequeue();
      auto d = scope.delta();
      if (r.has_value()) out.add(d);  // non-null dequeues only
    }
  });
}

int main() {
  std::cout << "E3a: non-null dequeue steps vs p  (Theorem 22: O(log p log c + "
               "log q))\n"
            << "     round-robin adversary, prefill 16/process, 16 "
               "dequeues/process\n\n";
  {
    wfq::stats::Table table({"p", "q0", "deqs", "steps/op mean", "steps/op p99",
                             "steps/op max", "max/log2^2(p)"});
    std::vector<double> ps, maxima;
    for (int p : {2, 4, 8, 16, 32, 64}) {
      Queue q(p);
      OpSamples s = measure_dequeues(q, p, 16, 16);
      auto sum = wfq::stats::summarize(s.steps);
      double l = std::log2(p);
      table.add_row({wfq::stats::fmt(p), wfq::stats::fmt(16 * p),
                     wfq::stats::fmt(static_cast<uint64_t>(sum.n)),
                     wfq::stats::fmt(sum.mean), wfq::stats::fmt(sum.p99),
                     wfq::stats::fmt(sum.max, 0),
                     wfq::stats::fmt(sum.max / (l * l))});
      ps.push_back(p);
      maxima.push_back(sum.max);
    }
    table.print(std::cout);
    wfq::benchutil::report_shape(std::cout, "dequeue max steps vs p", ps,
                                 maxima);
    std::cout << "  paper expectation: polylog fit (log or log^2), not p.\n\n";
  }

  std::cout << "E3b: non-null dequeue steps vs queue size q at p=8\n\n";
  {
    wfq::stats::Table table({"q (prefill)", "steps/op mean", "steps/op max",
                             "max/log2(q)"});
    std::vector<double> qs, means;
    for (int per_proc : {4, 16, 64, 256, 1024}) {
      Queue q(8);
      int total_q = 8 * per_proc;
      OpSamples s = measure_dequeues(q, 8, per_proc, 8);
      auto sum = wfq::stats::summarize(s.steps);
      table.add_row({wfq::stats::fmt(total_q), wfq::stats::fmt(sum.mean),
                     wfq::stats::fmt(sum.max, 0),
                     wfq::stats::fmt(sum.max / std::log2(total_q))});
      qs.push_back(total_q);
      means.push_back(sum.mean);
    }
    table.print(std::cout);
    // Fit vs log q.
    std::vector<double> logq;
    for (double v : qs) logq.push_back(std::log2(v));
    std::cout << "  R^2[steps ~ log q] = "
              << wfq::stats::fmt(wfq::stats::fit_r2(logq, means), 3)
              << "   R^2[steps ~ q] = "
              << wfq::stats::fmt(wfq::stats::fit_r2(qs, means), 3) << "\n"
            << "  paper expectation: log-q fit wins by a wide margin.\n";
  }

  std::cout << "\nE3c: null dequeue steps vs p  (Theorem 22: O(log p))\n\n";
  {
    wfq::stats::Table table({"p", "steps/op mean", "steps/op max"});
    for (int p : {2, 8, 32, 64}) {
      Queue q(p);
      OpSamples s = run_round_robin(p, [&](int pid, OpSamples& out) {
        q.bind_thread(pid);
        for (int k = 0; k < 12; ++k) {
          wfq::platform::StepScope scope;
          auto r = q.dequeue();  // queue stays empty: all null
          auto d = scope.delta();
          if (!r.has_value()) out.add(d);
        }
      });
      auto sum = wfq::stats::summarize(s.steps);
      table.add_row({wfq::stats::fmt(p), wfq::stats::fmt(sum.mean),
                     wfq::stats::fmt(sum.max, 0)});
    }
    table.print(std::cout);
    std::cout << "  paper expectation: same O(log p) scale as enqueues (E2).\n";
  }
  return 0;
}
