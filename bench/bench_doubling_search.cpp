// E10 — Lemma 20: FindResponse's doubling search for the block containing
// the e-th enqueue costs O(log(size_be + size_{b-1})) steps, so a dequeue's
// search cost scales with the logarithm of the queue size, not with the
// number of blocks ever appended.
//
// Harness (single process, real platform): enqueue q items, then measure
// per-dequeue step counts while draining. Because the queue was built by
// one process, every root block holds one operation and b - b_e ≈ q, making
// the doubling search the dominant term. Expected: steps/dequeue ~ a +
// b·log2(q), i.e. the log-q fit wins decisively over linear q.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "core/unbounded_queue.hpp"

int main() {
  std::cout << "E10: dequeue search cost vs queue size (Lemma 20)\n"
            << "     single process; drain steps measured at head of a\n"
            << "     q-element queue\n\n";
  wfq::stats::Table table({"q", "first-deq steps", "mean drain steps/op",
                           "first/log2(q)"});
  std::vector<double> qs, firsts;
  for (uint64_t q_size : {8u, 64u, 512u, 4096u, 32768u}) {
    wfq::core::UnboundedQueue<uint64_t> q(1);
    for (uint64_t i = 0; i < q_size; ++i) q.enqueue(i);
    // First dequeue: worst case, value lives q blocks back.
    wfq::platform::StepScope first_scope;
    (void)q.dequeue();
    double first = static_cast<double>(first_scope.delta().total());
    wfq::platform::StepScope drain_scope;
    uint64_t drained = 1;
    while (q.dequeue().has_value()) ++drained;
    double mean = static_cast<double>(drain_scope.delta().total()) /
                  static_cast<double>(drained - 1);
    table.add_row({wfq::stats::fmt(q_size), wfq::stats::fmt(first, 0),
                   wfq::stats::fmt(mean),
                   wfq::stats::fmt(first / std::log2(static_cast<double>(q_size)))});
    qs.push_back(static_cast<double>(q_size));
    firsts.push_back(first);
  }
  table.print(std::cout);
  std::vector<double> logq;
  for (double v : qs) logq.push_back(std::log2(v));
  std::cout << "\n  R^2[first-deq steps ~ log q] = "
            << wfq::stats::fmt(wfq::stats::fit_r2(logq, firsts), 3)
            << "   R^2[~ q] = "
            << wfq::stats::fmt(wfq::stats::fit_r2(qs, firsts), 3) << "\n"
            << "  paper expectation: log fit ~1.0, linear fit clearly worse;\n"
            << "  first/log2(q) roughly constant.\n";
  return 0;
}
