// The single entry point for the whole evaluation (ISSUE 3): every
// experiment in bench/experiments/ registers itself with the api registry;
// this main just hands argv to the shared CLI. `bench_runner --list` shows
// the index; `bench_runner --experiment all --format json` regenerates the
// machine-readable evaluation in one run.
#include "api/cli.hpp"

int main(int argc, char** argv) { return wfq::api::run_main(argc, argv); }
