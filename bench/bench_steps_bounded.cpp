// E7 — Theorem 32: the bounded-space queue has amortized step complexity
// O(log p · log(p + q_max)) per operation, including GC phases.
//
// Step accounting: shared atomic accesses (version pointers, last[],
// responses) are counted by the platform layer; every RBT node visited or
// created is charged one step (pbt::tls_rbt_touches), mirroring the paper's
// model where each RBT operation costs O(log(p+q)) shared reads.
//
// Sweeps amortized steps/op vs p (fixed small q) and vs q (fixed p), with
// GC period scaled down so collections actually occur within the run.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "core/bounded_queue.hpp"
#include "pbt/persistent_rbt.hpp"
#include "platform/platform.hpp"

using wfq::benchutil::OpSamples;
using wfq::benchutil::run_round_robin;
using Queue = wfq::core::BoundedQueue<uint64_t, wfq::platform::SimPlatform>;

// Amortized (atomic steps + RBT touches) per op over a mixed workload,
// GC phases included. Prefill ops count toward the denominator.
double amortized(Queue& q, int p, int prefill, int ops) {
  OpSamples s = run_round_robin(p, [&](int pid, OpSamples& out) {
    q.bind_thread(pid);
    uint64_t t0 = wfq::pbt::tls_rbt_touches();
    wfq::platform::StepScope scope;
    for (int k = 0; k < prefill; ++k)
      q.enqueue((static_cast<uint64_t>(pid) << 32) | static_cast<uint64_t>(k));
    for (int k = 0; k < ops; ++k) {
      if (k % 2 == 0)
        q.enqueue((static_cast<uint64_t>(pid) << 40) |
                  static_cast<uint64_t>(k));
      else
        (void)q.dequeue();
    }
    out.add(scope.delta());  // one sample = this process's total atomics
    out.rbt_touches = wfq::pbt::tls_rbt_touches() - t0;
  });
  double total_ops = static_cast<double>(p) * (prefill + ops);
  double total_steps = static_cast<double>(s.rbt_touches);
  for (double v : s.steps) total_steps += v;
  return total_steps / total_ops;
}

int main() {
  std::cout << "E7: bounded queue amortized RBT-steps/op  (Theorem 32:\n"
            << "    O(log p log(p+q)) amortized, GC included)\n"
            << "    round-robin adversary; E7a uses the paper-default G, E7b G=32\n\n";
  {
    std::cout << "E7a: vs p (prefill 8/process, 16 mixed ops/process)\n";
    wfq::stats::Table table({"p", "steps/op", "steps/op / (log2 p * log2(p+q))"});
    std::vector<double> ps, ys;
    for (int p : {2, 4, 8, 16, 32}) {
      Queue q(p, /*gc_period=*/0);  // paper default p^2 ceil(log2 p)
      double a = amortized(q, p, 8, 16);
      double denom = std::log2(p) * std::log2(p + 8.0 * p);
      table.add_row({wfq::stats::fmt(p), wfq::stats::fmt(a),
                     wfq::stats::fmt(a / denom)});
      ps.push_back(p);
      ys.push_back(a);
    }
    table.print(std::cout);
    wfq::benchutil::report_shape(std::cout, "bounded steps/op vs p", ps, ys);
  }
  {
    std::cout << "\nE7b: vs q at p=4 (prefill q/4 per process)\n";
    wfq::stats::Table table({"q", "steps/op", "steps/op / log2(p+q)"});
    std::vector<double> qs, ys;
    for (int per : {8, 32, 128, 512}) {
      Queue q(4, /*gc_period=*/32);
      double a = amortized(q, 4, per, 16);
      double total_q = 4.0 * per;
      table.add_row({wfq::stats::fmt(static_cast<int>(total_q)),
                     wfq::stats::fmt(a),
                     wfq::stats::fmt(a / std::log2(4 + total_q))});
      qs.push_back(total_q);
      ys.push_back(a);
    }
    table.print(std::cout);
    std::vector<double> logq;
    for (double v : qs) logq.push_back(std::log2(v));
    std::cout << "  R^2[steps ~ log q] = "
              << wfq::stats::fmt(wfq::stats::fit_r2(logq, ys), 3)
              << "   R^2[steps ~ q] = "
              << wfq::stats::fmt(wfq::stats::fit_r2(qs, ys), 3) << "\n";
  }
  std::cout << "\n  paper expectation: growth ~ log p * log(p+q); the\n"
            << "  normalized columns stay roughly constant and the log-q\n"
            << "  fit beats the linear-q fit.\n";
  return 0;
}
