// E11 (extension) — Section 7's vector: append costs O(log p) steps (same
// propagation as an enqueue plus the position walk), get costs
// O(log^2 p + log n). Sweeps under the selected adversary, mirroring
// E2/E3 so the "easily adapt our routines" claim is checked quantitatively.
// (The vector is still the flat-FAA stub, so the shape columns carry
// stub-grade numbers until its tentpole lands.)
#include <algorithm>
#include <cmath>

#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "core/wait_free_vector.hpp"

namespace {

using namespace wfq;
using Vec = core::WaitFreeVector<uint64_t, platform::SimPlatform>;

api::Report run(const api::RunOptions& opts) {
  api::Report r = api::make_report("vector");
  const std::string adversary = opts.adversary_or("round-robin");
  r.preamble = {"E11: wait-free vector (Section 7 extension)"};
  const int64_t appends = opts.ops_or(30);
  {
    auto& sec = r.section("E11a");
    sec.pre("E11a: append steps vs p (K=" + std::to_string(appends) +
            " appends/process)");
    sec.cols({"p", "steps/op mean", "steps/op max", "max/log2(p)"});
    std::vector<double> ps, maxima;
    for (int p : opts.procs_or({2, 4, 8, 16, 32, 64})) {
      // The flat-array stub aborts when its cell array fills; size it for
      // the requested workload (never below its default capacity).
      Vec v(p, std::max(size_t{1} << 16,
                        static_cast<size_t>(appends) * p * 2));
      api::OpSamples s =
          api::run_sim(p, adversary, [&](int pid, api::OpSamples& out) {
            v.bind_thread(pid);
            for (int64_t k = 0; k < appends; ++k) {
              platform::StepScope scope;
              (void)v.append((static_cast<uint64_t>(pid) << 32) |
                             static_cast<uint64_t>(k));
              out.add(scope.delta());
            }
          });
      auto sum = stats::summarize(s.steps);
      sec.row(p, api::cell(sum.mean), api::cell(sum.max, 0),
              api::cell_ratio(sum.max, std::log2(p)));
      ps.push_back(p);
      maxima.push_back(sum.max);
    }
    sec.shape("vector append max", ps, maxima);
  }
  {
    auto& sec = r.section("E11b");
    sec.pre("");
    sec.pre("E11b: get(i) steps vs length n (single process)");
    sec.cols({"n", "get steps mean", "get steps max", "max/log2(n)"});
    std::vector<double> ns, maxima;
    for (int64_t n : {64, 512, 4096, 32768}) {
      core::WaitFreeVector<uint64_t> v(1);
      for (int64_t i = 0; i < n; ++i) (void)v.append(static_cast<uint64_t>(i));
      std::vector<double> steps;
      for (int64_t i = 0; i < n; i += n / 64) {
        platform::StepScope scope;
        (void)v.get(i);
        steps.push_back(static_cast<double>(scope.delta().total()));
      }
      auto sum = stats::summarize(steps);
      sec.row(n, api::cell(sum.mean), api::cell(sum.max, 0),
              api::cell(sum.max / std::log2(static_cast<double>(n))));
      ns.push_back(static_cast<double>(n));
      maxima.push_back(sum.max);
    }
    std::vector<double> logn;
    for (double v2 : ns) logn.push_back(std::log2(v2));
    double r2_logn = stats::fit_r2(logn, maxima);
    double r2_n = stats::fit_r2(ns, maxima);
    sec.metric("r2_get_max_logn", r2_logn).metric("r2_get_max_n", r2_n);
    sec.note("  R^2[get max ~ log n] = " + stats::fmt(r2_logn, 3) +
             "   R^2[~ n] = " + stats::fmt(r2_n, 3));
    sec.note("  expectation: append ~ c*log p (like E2); get ~ log n.");
  }
  return r;
}

const api::ExperimentRegistrar reg{
    {"vector", "e11", "wait-free vector append/get step shapes (Section 7)",
     11, run}};

}  // namespace
