// E11 (extension) — Section 7's vector on the shared ordering-tree core:
// append costs O(log p) steps (the same leaf-Append + double-Refresh
// propagation as an enqueue, plus the index walk), get costs
// O(log^2 p + log n) (index-directed binary search over root blocks + the
// dequeue's root-to-leaf descent). Sweeps every registered vector by
// registry key under the selected adversary, so the "easily adapt our
// routines" claim is checked quantitatively against the flat-FAA baseline:
//
//   E11a  append steps vs p (sim, per vector key): wfvec fits log p,
//         faavec is O(1) (constant series);
//   E11b  get steps vs p at fixed appends/process (gets measured after the
//         sim run, outside the scheduler): the descent's log^2 p term;
//   E11c  get steps vs length n at p=1: the root search's log n term in
//         isolation (the descent is trivial at one leaf).
#include <algorithm>
#include <cmath>

#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "api/queue_registry.hpp"

namespace {

using namespace wfq;

api::Report run(const api::RunOptions& opts) {
  api::Report r = api::make_report("vector");
  const std::string adversary = opts.adversary_or("round-robin");
  const auto vectors = api::vector_keys_or(opts.queues, api::vector_names());
  const int64_t appends = opts.ops_or(30);
  const auto procs = opts.procs_or({2, 4, 8, 16, 32, 64});
  r.preamble = {"E11: wait-free vector (Section 7, on the shared ordering "
                "tree)",
                "    simulator, " + adversary + " adversary, K=" +
                    std::to_string(appends) + " appends/process"};

  for (const std::string& vname : vectors) {
    auto& sec = r.section("E11a:" + vname);
    sec.pre("E11a: append steps vs p (vector: " + vname + ")");
    sec.cols({"p", "steps/op mean", "steps/op max", "max/log2(p)"});
    std::vector<double> ps, maxima;
    for (int p : procs) {
      api::AnyVector<uint64_t> v = api::make_vector<uint64_t>(
          vname, api::sized_config(p, api::Backend::sim, appends));
      api::OpSamples s =
          api::run_sim(p, adversary, [&](int pid, api::OpSamples& out) {
            v.bind_thread(pid);
            for (int64_t k = 0; k < appends; ++k) {
              platform::StepScope scope;
              (void)v.append((static_cast<uint64_t>(pid) << 32) |
                             static_cast<uint64_t>(k));
              out.add(scope.delta());
            }
          });
      auto sum = stats::summarize(s.steps);
      sec.row(p, api::cell(sum.mean), api::cell(sum.max, 0),
              api::cell_ratio(sum.max, std::log2(p)));
      ps.push_back(p);
      maxima.push_back(sum.max);
    }
    sec.shape("append max (" + vname + ")", ps, maxima);
  }

  {
    auto& sec = r.section("E11b");
    sec.pre("");
    sec.pre("E11b: get(i) steps vs p (wfvec, n = K*p appends first; gets "
            "measured post-run)");
    sec.cols({"p", "n", "get steps mean", "get steps max", "max/log2^2(p)"});
    std::vector<double> ps, maxima;
    for (int p : procs) {
      api::AnyVector<uint64_t> v = api::make_vector<uint64_t>(
          "wfvec", api::sized_config(p, api::Backend::sim, appends));
      (void)api::run_sim(p, adversary, [&](int pid, api::OpSamples& out) {
        v.bind_thread(pid);
        for (int64_t k = 0; k < appends; ++k)
          (void)v.append((static_cast<uint64_t>(pid) << 32) |
                         static_cast<uint64_t>(k));
        (void)out;
      });
      // The sim run is over; gets run on this thread (yield points no-op)
      // with their exact step deltas still counted.
      int64_t n = v.size();
      std::vector<double> steps;
      int64_t stride = std::max<int64_t>(1, n / 64);
      for (int64_t i = 0; i < n; i += stride) {
        platform::StepScope scope;
        (void)v.get(i);
        steps.push_back(static_cast<double>(scope.delta().total()));
      }
      auto sum = stats::summarize(steps);
      double l = std::log2(p);
      sec.row(p, n, api::cell(sum.mean), api::cell(sum.max, 0),
              api::cell_ratio(sum.max, l * l));
      ps.push_back(p);
      maxima.push_back(sum.max);
    }
    sec.shape("get max (wfvec)", ps, maxima);
    std::vector<double> log2p;
    for (double p : ps) {
      double l = stats::log2_clamped(p);
      log2p.push_back(l * l);
    }
    double r2 = stats::fit_r2(log2p, maxima);
    sec.metric("r2_get_max_log2p", r2);
    sec.note("  R^2[get max ~ log^2 p] = " + stats::fmt(r2, 3) +
             "  (expectation: the descent's log^2 p term dominates; n also "
             "grows with p, adding its log n share)");
  }

  {
    auto& sec = r.section("E11c");
    sec.pre("");
    sec.pre("E11c: get(i) steps vs length n (wfvec, p=1: root search only)");
    sec.cols({"n", "get steps mean", "get steps max", "max/log2(n)"});
    std::vector<double> ns, maxima;
    for (int64_t n : {64, 512, 4096, 32768}) {
      api::AnyVector<uint64_t> v = api::make_vector<uint64_t>(
          "wfvec", api::QueueConfig{.procs = 1, .backend = api::Backend::real});
      v.bind_thread(0);
      for (int64_t i = 0; i < n; ++i) (void)v.append(static_cast<uint64_t>(i));
      std::vector<double> steps;
      for (int64_t i = 0; i < n; i += n / 64) {
        platform::StepScope scope;
        (void)v.get(i);
        steps.push_back(static_cast<double>(scope.delta().total()));
      }
      auto sum = stats::summarize(steps);
      sec.row(n, api::cell(sum.mean), api::cell(sum.max, 0),
              api::cell(sum.max / std::log2(static_cast<double>(n))));
      ns.push_back(static_cast<double>(n));
      maxima.push_back(sum.max);
    }
    std::vector<double> logn;
    for (double v2 : ns) logn.push_back(std::log2(v2));
    double r2_logn = stats::fit_r2(logn, maxima);
    double r2_n = stats::fit_r2(ns, maxima);
    sec.metric("r2_get_max_logn", r2_logn).metric("r2_get_max_n", r2_n);
    sec.note("  R^2[get max ~ log n] = " + stats::fmt(r2_logn, 3) +
             "   R^2[~ n] = " + stats::fmt(r2_n, 3));
    sec.note("  expectation: append ~ c*log p (like E2); get ~ log^2 p + "
             "log n.");
  }
  return r;
}

const api::ExperimentRegistrar reg{
    {"vector", "e11",
     "wait-free vector append/get step shapes over every registered vector "
     "(Section 7)",
     11, run}};

}  // namespace
