// E3 — Theorem 22 (dequeue): a non-null Dequeue takes
// O(log p * log c + log q_e + log q_d) steps; a null Dequeue O(log p).
//
// Three sweeps under the selected adversary (default round-robin):
//   (a) steps vs p at (roughly) fixed queue size;
//   (b) steps vs q at fixed p = 8 (prefill phase enqueues q/p per process,
//       then a dequeue phase is measured);
//   (c) null dequeues on an empty queue vs p.
// Expected shape: (a) polylog in p (log or log^2, not linear);
// (b) grows ~ log q with small constant; (c) same O(log p) scale as E2.
#include <cmath>

#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "api/queue_registry.hpp"

namespace {

using namespace wfq;

// Phase 1: each process enqueues `prefill` items. Phase 2: each process
// dequeues `ops` items, measured. One sim run (phases separated by local
// op-count, not barriers; lock-step keeps them roughly aligned).
api::OpSamples measure_dequeues(api::AnyQueue<uint64_t>& q, int p,
                                int64_t prefill, int64_t ops,
                                const std::string& adversary) {
  return api::run_sim(p, adversary, [&](int pid, api::OpSamples& out) {
    q.bind_thread(pid);
    for (int64_t k = 0; k < prefill; ++k)
      q.enqueue((static_cast<uint64_t>(pid) << 32) | static_cast<uint64_t>(k));
    for (int64_t k = 0; k < ops; ++k) {
      platform::StepScope scope;
      auto r = q.dequeue();
      auto d = scope.delta();
      if (r.has_value()) out.add(d);  // non-null dequeues only
    }
  });
}

void run_queue(api::Report& r, const api::RunOptions& opts,
               const std::string& qname, bool multi) {
  const std::string adversary = opts.adversary_or("round-robin");
  const auto procs = opts.procs_or({2, 4, 8, 16, 32, 64});
  // --ops sets both the per-process prefill and the measured dequeues in
  // E3a, and the measured dequeues in E3b/E3c (whose prefill grids are the
  // sweep variables themselves).
  const int64_t ops = opts.ops_or(16);
  const bool is_default = !multi && qname == "ubq";
  const std::string suffix = is_default ? "" : ":" + qname;

  auto make = [&](int p, int64_t ops_per_proc) {
    return api::make_queue<uint64_t>(
        qname, api::sized_config(p, api::Backend::sim, ops_per_proc));
  };

  const std::string step_warn =
      api::step_counted_warning(qname, api::queue_info(qname).step_counted);

  {
    auto& sec = r.section("E3a" + suffix);
    if (!is_default) sec.pre("queue: " + qname);
    if (!step_warn.empty()) sec.pre(step_warn);
    sec.pre("E3a: non-null dequeue steps vs p  (Theorem 22: O(log p log c + "
            "log q))");
    sec.pre("     " + adversary + " adversary, prefill " +
            std::to_string(ops) + "/process, " + std::to_string(ops) +
            " dequeues/process");
    sec.pre("");
    sec.cols({"p", "q0", "deqs", "steps/op mean", "steps/op p99",
              "steps/op max", "max/log2^2(p)"});
    std::vector<double> ps, maxima;
    for (int p : procs) {
      api::AnyQueue<uint64_t> q = make(p, 2 * ops);
      api::OpSamples s = measure_dequeues(q, p, ops, ops, adversary);
      auto sum = stats::summarize(s.steps);
      double l = std::log2(p);
      sec.row(p, ops * p, static_cast<uint64_t>(sum.n), api::cell(sum.mean),
              api::cell(sum.p99), api::cell(sum.max, 0),
              api::cell_ratio(sum.max, l * l));
      ps.push_back(p);
      maxima.push_back(sum.max);
    }
    sec.shape(is_default ? "dequeue max steps vs p"
                         : "dequeue max steps vs p (" + qname + ")",
              ps, maxima);
    sec.note("  paper expectation: polylog fit (log or log^2), not p.");
  }

  {
    auto& sec = r.section("E3b" + suffix);
    sec.pre("E3b: non-null dequeue steps vs queue size q at p=8" +
            (is_default ? "" : " (" + qname + ")"));
    sec.pre("");
    sec.cols({"q (prefill)", "steps/op mean", "steps/op max", "max/log2(q)"});
    std::vector<double> qs, means;
    const int64_t deqs_b = opts.ops_or(8);
    for (int per_proc : {4, 16, 64, 256, 1024}) {
      api::AnyQueue<uint64_t> q = make(8, per_proc + deqs_b);
      int total_q = 8 * per_proc;
      api::OpSamples s = measure_dequeues(q, 8, per_proc, deqs_b, adversary);
      auto sum = stats::summarize(s.steps);
      sec.row(total_q, api::cell(sum.mean), api::cell(sum.max, 0),
              api::cell(sum.max / std::log2(total_q)));
      qs.push_back(total_q);
      means.push_back(sum.mean);
    }
    std::vector<double> logq;
    for (double v : qs) logq.push_back(std::log2(v));
    double r2_logq = stats::fit_r2(logq, means);
    double r2_q = stats::fit_r2(qs, means);
    sec.metric("r2_steps_logq", r2_logq).metric("r2_steps_q", r2_q);
    sec.note("  R^2[steps ~ log q] = " + stats::fmt(r2_logq, 3) +
             "   R^2[steps ~ q] = " + stats::fmt(r2_q, 3));
    sec.note("  paper expectation: log-q fit wins by a wide margin.");
  }

  {
    auto& sec = r.section("E3c" + suffix);
    sec.pre("E3c: null dequeue steps vs p  (Theorem 22: O(log p))" +
            (is_default ? "" : " (" + qname + ")"));
    sec.pre("");
    sec.cols({"p", "steps/op mean", "steps/op max"});
    const int64_t deqs_c = opts.ops_or(12);
    for (int p : opts.procs_or({2, 8, 32, 64})) {
      api::AnyQueue<uint64_t> q = make(p, deqs_c);
      api::OpSamples s =
          api::run_sim(p, adversary, [&](int pid, api::OpSamples& out) {
            q.bind_thread(pid);
            for (int64_t k = 0; k < deqs_c; ++k) {
              platform::StepScope scope;
              auto got = q.dequeue();  // queue stays empty: all null
              auto d = scope.delta();
              if (!got.has_value()) out.add(d);
            }
          });
      auto sum = stats::summarize(s.steps);
      sec.row(p, api::cell(sum.mean), api::cell(sum.max, 0));
    }
    sec.note("  paper expectation: same O(log p) scale as enqueues (E2).");
  }
}

api::Report run(const api::RunOptions& opts) {
  api::Report r = api::make_report("steps_dequeue");
  const auto queues = api::queue_keys_or(opts.queues, {"ubq"});
  for (const std::string& qname : queues)
    run_queue(r, opts, qname, queues.size() > 1);
  return r;
}

const api::ExperimentRegistrar reg{
    {"steps_dequeue", "e3",
     "dequeue steps vs p and queue size (Theorem 22, Lemma 20)", 3, run}};

}  // namespace
