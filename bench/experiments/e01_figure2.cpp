// E1 — regenerates Figure 2 of the paper: the implicit representation of
// the ordering tree after the worked 14-operation example.
//
// The figure's exact block boundaries depend on the adversary's schedule;
// here the operations run one at a time in the figure's linearization
// order, so every block holds one operation and the implicit fields
// (sumenq / sumdeq / endleft / endright / size / element) can be printed —
// and checked — deterministically. tests/core/figure_example_test.cpp
// asserts the response and size sequences; this experiment renders the
// tree as one row per (node, field).
#include <sstream>
#include <string>
#include <thread>

#include "api/experiment.hpp"
#include "core/unbounded_queue.hpp"

namespace {

using wfq::api::Experiment;
using wfq::api::Report;
using wfq::api::RunOptions;
using Queue = wfq::core::UnboundedQueue<uint64_t>;

struct Op {
  int pid;
  bool is_enq;
  uint64_t arg;
};

// Figure 1's operations in linearization order; per-process program order
// matches the figure (P0: a,b,d,Deq1; P1: Deq2,c,Deq3; P2: e,Deq4,Deq5,f,h;
// P3: g,Deq6).
const Op kOps[] = {
    {0, true, 'a'}, {2, true, 'e'}, {1, false, 0}, {0, true, 'b'},
    {2, false, 0},  {2, false, 0},  {0, true, 'd'}, {2, true, 'f'},
    {2, true, 'h'}, {0, false, 0},  {1, true, 'c'}, {1, false, 0},
    {3, true, 'g'}, {3, false, 0},
};

void run_as(Queue& q, const Op& op) {
  std::thread t([&] {
    q.bind_thread(op.pid);
    if (op.is_enq)
      q.enqueue(op.arg);
    else
      (void)q.dequeue();
  });
  t.join();
}

void add_node(wfq::api::Section& sec, const Queue::Node* v,
              const std::string& name) {
  int64_t head = v->head.unsafe_peek();
  auto row = [&](const char* field, auto get) {
    std::ostringstream vals;
    for (int64_t b = 0; b < head; ++b) {
      const auto* blk = v->blocks.load(b);
      if (b) vals << " ";
      vals << get(blk);
    }
    sec.row(name, field, vals.str());
  };
  if (v->is_leaf) {
    row("element", [](const Queue::Block* b) -> std::string {
      if (!b->element.has_value()) return "null";
      return std::string(1, static_cast<char>(*b->element));
    });
  }
  row("sumenq", [](const Queue::Block* b) { return std::to_string(b->sumenq); });
  row("sumdeq", [](const Queue::Block* b) { return std::to_string(b->sumdeq); });
  if (!v->is_leaf) {
    row("endleft",
        [](const Queue::Block* b) { return std::to_string(b->endleft); });
    row("endright",
        [](const Queue::Block* b) { return std::to_string(b->endright); });
  }
  if (v->is_root) {
    row("size", [](const Queue::Block* b) { return std::to_string(b->size); });
  }
}

Report run(const RunOptions& opts) {
  Report r = wfq::api::make_report("figure2");
  (void)opts;  // fixed worked example: no sweep parameters apply
  r.preamble = {
      "E1: Figure 2 — implicit representation of the ordering tree",
      "    after Enq(a) Enq(e) Deq2 | Enq(b) Deq4 Deq5 | Enq(d)",
      "    Enq(f) Enq(h) Deq1 | Enq(c) Deq3 | Enq(g) (+ Deq6),",
      "    driven one operation at a time (each root block = 1 op;",
      "    the figure's multi-op blocks arise under concurrency —",
      "    see tests/core/sim_linearizability_test.cpp)."};

  Queue q(4);
  for (const Op& op : kOps) run_as(q, op);

  // Column 3 spans blocks 0..head-1: block 0 is the zeroed sentinel every
  // node array starts with, matching the paper's 1-based block indexing.
  auto& sec = r.section("E1").cols({"node", "field", "blocks 0..head-1"});
  add_node(sec, q.debug_root(), "root");
  add_node(sec, q.debug_root()->left, "internal L");
  add_node(sec, q.debug_root()->right, "internal R");
  for (int i = 0; i < 4; ++i)
    add_node(sec, q.debug_leaf(i), "leaf P" + std::to_string(i));
  sec.note("  expected responses (paper): Deq2=a Deq4=e Deq5=b Deq1=d "
           "Deq3=f; queue left with {c,g} after Deq6=h.");
  return r;
}

const wfq::api::ExperimentRegistrar reg{
    {"figure2", "e1",
     "implicit ordering-tree representation after the worked example "
     "(Figures 1-2)",
     1, run}};

}  // namespace
