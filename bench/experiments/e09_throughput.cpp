// E9 — real-thread wall-clock throughput over EVERY registered queue:
// enqueue+dequeue pairs per second vs thread count. Previously a
// google-benchmark binary with one hand-written fixture per queue class;
// now a registry sweep — a new queue shows up here by being registered,
// with zero bench-code changes. All queues pay the same AnyQueue virtual
// hop, so relative ordering is preserved.
//
// Caveat recorded since the seed: CI-class machines may have ONE physical
// core, so multi-threaded rows measure the oversubscribed (preemption)
// regime, not cache-contention scaling. The paper itself predicts the
// shape seen here: "our queue has a higher cost than the MS-queue in the
// best case (when an operation runs by itself)" (Section 7) — the polylog
// advantage is a worst-case-adversary property (see E4/E5), not a
// single-thread win.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "api/queue_registry.hpp"

namespace {

using namespace wfq;

/// Runs `iters` enqueue+dequeue pairs on each of `threads` real threads,
/// all hammering one queue; returns ns per operation (2 ops per pair).
/// A countdown barrier lines the threads up before the clock starts.
double pairs_ns_per_op(api::AnyQueue<uint64_t>& q, int threads,
                       uint64_t iters) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> ts;
  ts.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      q.bind_thread(t);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (uint64_t i = 0; i < iters; ++i) {
        q.enqueue((static_cast<uint64_t>(t) << 32) | i);
        (void)q.dequeue();
      }
    });
  }
  // Clock starts only once every thread is spawned, bound and spinning at
  // the barrier — thread-creation cost must not leak into ns/op.
  while (ready.load(std::memory_order_acquire) < threads)
    std::this_thread::yield();
  auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : ts) t.join();
  auto elapsed = std::chrono::steady_clock::now() - start;
  double total_ops = 2.0 * static_cast<double>(iters) * threads;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         total_ops;
}

api::Report run(const api::RunOptions& opts) {
  api::Report r = api::make_report("throughput");
  const uint64_t iters = static_cast<uint64_t>(opts.ops_or(20'000));
  const auto thread_counts = opts.procs_or({1, 2, 4});
  const auto queues = api::queue_keys_or(opts.queues, api::queue_names());
  r.preamble = {
      "E9: wall-clock throughput, enqueue+dequeue pairs (real threads,",
      "    " + std::to_string(iters) + " pairs/thread; all registered "
      "queues via AnyQueue)"};
  auto& sec = r.section("E9");
  std::vector<std::string> cols = {"queue"};
  for (int t : thread_counts) cols.push_back("ns/op @" + std::to_string(t));
  cols.push_back("Mops/s @" + std::to_string(thread_counts.back()));
  sec.cols(cols);
  int max_threads = 1;
  for (int t : thread_counts) max_threads = std::max(max_threads, t);
  for (const std::string& qname : queues) {
    std::vector<api::Cell> row = {api::cell(qname)};
    double last_ns = 0;
    for (int t : thread_counts) {
      // iters enqueue+dequeue pairs per thread = 2*iters claims per thread
      // on the FAA queue; sized_config keeps the cell array ahead of them.
      api::AnyQueue<uint64_t> q = api::make_queue<uint64_t>(
          qname, api::sized_config(max_threads, api::Backend::real,
                                   static_cast<int64_t>(2 * iters)));
      last_ns = pairs_ns_per_op(q, t, iters);
      row.push_back(api::cell(last_ns, 0));
    }
    row.push_back(api::cell(last_ns > 0 ? 1000.0 / last_ns : 0.0));
    sec.rows.push_back(std::move(row));
  }
  sec.note("  expectation (Section 7): baselines win uncontended — the");
  sec.note("  polylog advantage is a worst-case-adversary property (E4/");
  sec.note("  E5), not a single-thread wall-clock win. Single-core hosts");
  sec.note("  measure the oversubscribed regime at >1 thread.");
  return r;
}

const api::ExperimentRegistrar reg{
    {"throughput", "e9",
     "wall-clock enqueue+dequeue throughput over all registered queues", 9,
     run}};

}  // namespace
