// E7 — Theorem 32: the bounded-space queue has amortized step complexity
// O(log p * log(p + q_max)) per operation, including GC phases.
//
// Step accounting: shared atomic accesses (version pointers, last[],
// responses) are counted by the platform layer; every RBT node visited or
// created is charged one step (pbt::tls_rbt_touches), mirroring the paper's
// model where each RBT operation costs O(log(p+q)) shared reads.
//
// Sweeps amortized steps/op vs p (fixed small q) and vs q (fixed p), with
// GC period scaled down so collections actually occur within the run.
#include <cmath>

#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "core/bounded_queue.hpp"
#include "pbt/persistent_rbt.hpp"

namespace {

using namespace wfq;
using Queue = core::BoundedQueue<uint64_t, platform::SimPlatform>;

// Amortized (atomic steps + RBT touches) per op over a mixed workload,
// GC phases included. Prefill ops count toward the denominator.
double amortized(Queue& q, int p, int64_t prefill, int64_t ops,
                 const std::string& adversary) {
  api::OpSamples s =
      api::run_sim(p, adversary, [&](int pid, api::OpSamples& out) {
        q.bind_thread(pid);
        uint64_t t0 = pbt::tls_rbt_touches();
        platform::StepScope scope;
        for (int64_t k = 0; k < prefill; ++k)
          q.enqueue((static_cast<uint64_t>(pid) << 32) |
                    static_cast<uint64_t>(k));
        for (int64_t k = 0; k < ops; ++k) {
          if (k % 2 == 0)
            q.enqueue((static_cast<uint64_t>(pid) << 40) |
                      static_cast<uint64_t>(k));
          else
            (void)q.dequeue();
        }
        out.add(scope.delta());  // one sample = this process's total atomics
        out.rbt_touches = pbt::tls_rbt_touches() - t0;
      });
  double total_ops = static_cast<double>(p) * static_cast<double>(prefill + ops);
  double total_steps = static_cast<double>(s.rbt_touches);
  for (double v : s.steps) total_steps += v;
  return total_steps / total_ops;
}

api::Report run(const api::RunOptions& opts) {
  api::Report r = api::make_report("steps_bounded");
  const std::string adversary = opts.adversary_or("round-robin");
  const int64_t mixed_ops = opts.ops_or(16);
  r.preamble = {"E7: bounded queue amortized RBT-steps/op  (Theorem 32:",
                "    O(log p log(p+q)) amortized, GC included)",
                "    " + adversary +
                    " adversary; E7a uses the paper-default G, E7b G=32"};
  {
    auto& sec = r.section("E7a");
    sec.pre("E7a: vs p (prefill 8/process, " + std::to_string(mixed_ops) +
            " mixed ops/process)");
    sec.cols({"p", "steps/op", "steps/op / (log2 p * log2(p+q))"});
    std::vector<double> ps, ys;
    for (int p : opts.procs_or({2, 4, 8, 16, 32})) {
      Queue q(p, /*gc_period=*/0);  // paper default p^2 ceil(log2 p)
      double a = amortized(q, p, 8, mixed_ops, adversary);
      double denom = std::log2(p) * std::log2(p + 8.0 * p);
      sec.row(p, api::cell(a), api::cell_ratio(a, denom));
      ps.push_back(p);
      ys.push_back(a);
    }
    sec.shape("bounded steps/op vs p", ps, ys);
  }
  {
    auto& sec = r.section("E7b");
    sec.pre("");
    sec.pre("E7b: vs q at p=4 (prefill q/4 per process)");
    sec.cols({"q", "steps/op", "steps/op / log2(p+q)"});
    std::vector<double> qs, ys;
    for (int per : {8, 32, 128, 512}) {
      Queue q(4, /*gc_period=*/32);
      double a = amortized(q, 4, per, mixed_ops, adversary);
      double total_q = 4.0 * per;
      sec.row(static_cast<int>(total_q), api::cell(a),
              api::cell(a / std::log2(4 + total_q)));
      qs.push_back(total_q);
      ys.push_back(a);
    }
    std::vector<double> logq;
    for (double v : qs) logq.push_back(std::log2(v));
    double r2_logq = stats::fit_r2(logq, ys);
    double r2_q = stats::fit_r2(qs, ys);
    sec.metric("r2_steps_logq", r2_logq).metric("r2_steps_q", r2_q);
    sec.note("  R^2[steps ~ log q] = " + stats::fmt(r2_logq, 3) +
             "   R^2[steps ~ q] = " + stats::fmt(r2_q, 3));
    sec.note("  paper expectation: growth ~ log p * log(p+q); the");
    sec.note("  normalized columns stay roughly constant and the log-q");
    sec.note("  fit beats the linear-q fit.");
  }
  return r;
}

const api::ExperimentRegistrar reg{
    {"steps_bounded", "e7",
     "bounded-queue amortized steps incl. RBT touches (Theorem 32)", 7,
     run}};

}  // namespace
