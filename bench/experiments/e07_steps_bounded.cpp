// E7 — Theorem 32: the bounded-space queue has amortized step complexity
// O(log p * log(p + q_max)) per operation, including GC phases.
//
// Step accounting: shared atomic accesses (block arrays, heads, floors,
// EBR epochs, archive version pointers) are counted by the platform layer;
// every persistent-RBT node visited or created — in GC-phase copies AND in
// dequeues' archive lookups — is charged one step (pbt::tls_rbt_touches),
// mirroring the paper's model where each RBT operation costs O(log(p+q)).
//
// Sweeps amortized steps/op vs p (fixed small q) and vs q (fixed p), with
// the GC period scaled down to G=32 (override with --gc) so collections
// actually occur within the run at every p — the paper default
// p^2 ceil(log2 p) outgrows a short run past p=8, which would mix
// GC-bearing and GC-free regimes into one fit. The "rbt/op" column shows
// the tree's share of the amortized cost (GC-phase copies + archive
// lookups).
#include <cmath>

#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "core/bounded_queue.hpp"
#include "pbt/persistent_rbt.hpp"

namespace {

using namespace wfq;
using Queue = core::BoundedQueue<uint64_t, platform::SimPlatform>;

struct Amortized {
  double steps_per_op;  // atomics + RBT touches, GC phases included
  double rbt_per_op;    // the RBT touches alone
  uint64_t gc_phases;
};

// Amortized (atomic steps + RBT touches) per op over a mixed workload,
// GC phases included. Prefill ops count toward the denominator.
Amortized amortized(Queue& q, int p, int64_t prefill, int64_t ops,
                    const std::string& adversary) {
  api::OpSamples s =
      api::run_sim(p, adversary, [&](int pid, api::OpSamples& out) {
        q.bind_thread(pid);
        uint64_t t0 = pbt::tls_rbt_touches();
        platform::StepScope scope;
        for (int64_t k = 0; k < prefill; ++k)
          q.enqueue((static_cast<uint64_t>(pid) << 32) |
                    static_cast<uint64_t>(k));
        for (int64_t k = 0; k < ops; ++k) {
          if (k % 2 == 0)
            q.enqueue((static_cast<uint64_t>(pid) << 40) |
                      static_cast<uint64_t>(k));
          else
            (void)q.dequeue();
        }
        out.add(scope.delta());  // one sample = this process's total atomics
        out.rbt_touches = pbt::tls_rbt_touches() - t0;
      });
  double total_ops =
      static_cast<double>(p) * static_cast<double>(prefill + ops);
  double rbt = static_cast<double>(s.rbt_touches);
  double total_steps = rbt;
  for (double v : s.steps) total_steps += v;
  return {total_steps / total_ops, rbt / total_ops, q.debug_gc_phases()};
}

api::Report run(const api::RunOptions& opts) {
  api::Report r = api::make_report("steps_bounded");
  const std::string adversary = opts.adversary_or("round-robin");
  const int64_t mixed_ops = opts.ops_or(16);
  const int64_t gc = opts.gc_or(32);
  r.preamble = {"E7: bounded queue amortized RBT-steps/op  (Theorem 32:",
                "    O(log p log(p+q)) amortized, GC included)",
                "    " + adversary + " adversary; G=" + std::to_string(gc) +
                    " (--gc; paper default p^2 log p outgrows short runs)"};
  {
    auto& sec = r.section("E7a");
    sec.pre("E7a: vs p (prefill 8/process, " + std::to_string(mixed_ops) +
            " mixed ops/process)");
    sec.cols({"p", "steps/op", "rbt/op", "GCs",
              "steps/op / (log2 p * log2(p+q))"});
    std::vector<double> ps, ys;
    for (int p : opts.procs_or({2, 4, 8, 16, 32})) {
      Queue q(p, gc);
      Amortized a = amortized(q, p, 8, mixed_ops, adversary);
      double denom = std::log2(p) * std::log2(p + 8.0 * p);
      sec.row(p, api::cell(a.steps_per_op), api::cell(a.rbt_per_op),
              a.gc_phases, api::cell_ratio(a.steps_per_op, denom));
      ps.push_back(p);
      ys.push_back(a.steps_per_op);
    }
    sec.shape("bounded steps/op vs p", ps, ys);
  }
  {
    auto& sec = r.section("E7b");
    sec.pre("");
    sec.pre("E7b: vs q at p=4 (prefill q/4 per process)");
    sec.cols({"q", "steps/op", "rbt/op", "GCs", "steps/op / log2(p+q)"});
    std::vector<double> qs, ys;
    double rbt_total = 0;
    for (int per : {8, 32, 128, 512}) {
      Queue q(4, gc);
      Amortized a = amortized(q, 4, per, mixed_ops, adversary);
      double total_q = 4.0 * per;
      sec.row(static_cast<int>(total_q), api::cell(a.steps_per_op),
              api::cell(a.rbt_per_op), a.gc_phases,
              api::cell(a.steps_per_op / std::log2(4 + total_q)));
      qs.push_back(total_q);
      ys.push_back(a.steps_per_op);
      rbt_total += a.rbt_per_op;
    }
    std::vector<double> logq;
    for (double v : qs) logq.push_back(std::log2(v));
    double r2_logq = stats::fit_r2(logq, ys);
    double r2_q = stats::fit_r2(qs, ys);
    sec.metric("r2_steps_logq", r2_logq).metric("r2_steps_q", r2_q);
    sec.metric("rbt_per_op_total", rbt_total);
    sec.note("  R^2[steps ~ log q] = " + stats::fmt(r2_logq, 3) +
             "   R^2[steps ~ q] = " + stats::fmt(r2_q, 3));
    sec.note("  paper expectation: growth ~ log p * log(p+q); the");
    sec.note("  normalized columns stay roughly constant, the log-q fit");
    sec.note("  beats the linear-q fit, and rbt/op is nonzero (GC phases");
    sec.note("  and archive lookups really run through the RBT).");
  }
  return r;
}

const api::ExperimentRegistrar reg{
    {"steps_bounded", "e7",
     "bounded-queue amortized steps incl. RBT touches (Theorem 32)", 7,
     run}};

}  // namespace
