// E13 — the multi-tenant QoS experiment family (ISSUE 7): the DWRR service
// layer (src/svc/) measured on fairness, latency and aggregate throughput,
// swept over multiple backing queue keys.
//
// E13a (fairness vs skew): N tenants behind dwrr:<N>:<backing> receive
// Zipf-skewed bursty traffic; a fixed service budget is drained and Jain's
// index of the per-tenant service counts is reported next to a naive
// FIFO-over-one-shared-queue control fed the identical arrival sequence.
// Expected: DWRR holds Jain ~ 1.0 across the whole skew sweep (an active
// tenant's share is its weight share, independent of its arrival share)
// while the FIFO control's index decays toward the arrival skew. A second
// table gives each tenant a weight (1 + t%3) and checks the measured
// service shares against the weight-proportional targets — the acceptance
// gate: DWRR within 10%, FIFO not.
//
// E13b (per-tenant latency under bursty arrivals): run in the sim under the
// bursty:<on>:<off> adversary so enqueue->service latency is measured in
// exact shared steps. Producer pids each flood one tenant; one servicer pid
// drains in DWRR order. Expected: weight-2 tenants see lower p99 than
// weight-1 tenants — weight buys latency, under identical arrivals.
//
// E13c (aggregate throughput vs tenant count): wall-clock cost of the
// service layer itself — prefill N tenant queues, drain through
// service_next, report ns/op and Mops/s vs N per backing, plus the
// scheduler's round count and per-round service estimate.
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "api/queue_registry.hpp"
#include "api/service_registry.hpp"
#include "platform/affinity.hpp"
#include "sim/adversary.hpp"
#include "sim/scheduler.hpp"
#include "stats/qos.hpp"

namespace {

using namespace wfq;

/// Per-tenant service counts after draining `budget` items from a freshly
/// built dwrr:<n>:<backing> facade fed `arrivals` (one enqueue per entry).
std::vector<double> dwrr_service_counts(const std::string& backing,
                                        int ntenants,
                                        const std::vector<int>& arrivals,
                                        int64_t budget,
                                        const std::vector<uint32_t>& weights) {
  api::QueueConfig cfg = api::sized_config(
      1, api::Backend::real, static_cast<int64_t>(arrivals.size()));
  svc::ServiceFacade<uint64_t> s = api::make_service<uint64_t>(
      "dwrr:" + std::to_string(ntenants) + ":" + backing, cfg);
  s.bind_thread(0);
  for (size_t t = 0; t < weights.size(); ++t)
    s.set_weight(static_cast<int>(t), weights[t]);
  std::vector<uint64_t> seq(static_cast<size_t>(ntenants), 0);
  for (int t : arrivals)
    s.enqueue(t, (static_cast<uint64_t>(t) << 32) | seq[static_cast<size_t>(t)]++);
  std::vector<double> counts(static_cast<size_t>(ntenants), 0);
  for (int64_t k = 0; k < budget; ++k) {
    auto got = s.service_next();
    if (!got) break;
    counts[static_cast<size_t>(got->tenant)] += 1;
  }
  return counts;
}

/// The naive control: ONE shared queue of key `backing`, the identical
/// arrival sequence, FIFO drain — service order is arrival order, so the
/// service shares mirror the traffic mix instead of the configured weights.
std::vector<double> fifo_service_counts(const std::string& backing,
                                        int ntenants,
                                        const std::vector<int>& arrivals,
                                        int64_t budget) {
  api::QueueConfig cfg = api::sized_config(
      1, api::Backend::real, static_cast<int64_t>(arrivals.size()));
  api::AnyQueue<uint64_t> q = api::make_queue<uint64_t>(backing, cfg);
  q.bind_thread(0);
  std::vector<uint64_t> seq(static_cast<size_t>(ntenants), 0);
  for (int t : arrivals)
    q.enqueue((static_cast<uint64_t>(t) << 32) | seq[static_cast<size_t>(t)]++);
  std::vector<double> counts(static_cast<size_t>(ntenants), 0);
  for (int64_t k = 0; k < budget; ++k) {
    auto got = q.dequeue();
    if (!got) break;
    counts[static_cast<size_t>(*got >> 32)] += 1;
  }
  return counts;
}

/// Max relative deviation of measured service shares from the
/// weight-proportional targets: max_t |share_t - w_t/W| / (w_t/W).
double max_weight_deviation(const std::vector<double>& counts,
                            const std::vector<uint32_t>& weights) {
  double total = 0, wtotal = 0;
  for (double c : counts) total += c;
  for (uint32_t w : weights) wtotal += w;
  if (total == 0 || wtotal == 0) return 0;
  double dev = 0;
  for (size_t t = 0; t < counts.size(); ++t) {
    double target = static_cast<double>(weights[t]) / wtotal;
    double share = counts[t] / total;
    double d = (share - target) / target;
    if (d < 0) d = -d;
    if (d > dev) dev = d;
  }
  return dev;
}

api::Report run_fairness(const api::RunOptions& opts) {
  api::Report r = api::make_report("qos_fairness");
  const int ntenants = 8;
  const int64_t arrivals_n = opts.ops_or(20'000);
  const int64_t budget = arrivals_n / 10;
  const auto backings = api::queue_keys_or(opts.queues, {"ubq", "faaq"});
  const uint64_t seed = opts.seed;
  r.preamble = {
      "E13a: Jain's fairness index vs Zipf skew, dwrr:" +
          std::to_string(ntenants) + ":<backing> vs FIFO-shared-queue "
          "control",
      "      " + std::to_string(arrivals_n) + " arrivals (burst 16), " +
          std::to_string(budget) + " services, seed " + std::to_string(seed)};

  const std::vector<uint32_t> equal(static_cast<size_t>(ntenants), 1);
  {
    auto& sec = r.section("E13a");
    std::vector<std::string> cols = {"zipf skew"};
    for (const std::string& b : backings) {
      cols.push_back("jain dwrr " + b);
      cols.push_back("jain fifo " + b);
    }
    sec.cols(cols);
    for (double skew : {0.0, 0.6, 1.2, 1.8}) {
      // One arrival sequence per (skew) row, replayed for every backing and
      // for the FIFO control — the comparison must see identical traffic.
      svc::ZipfTraffic traffic(ntenants, skew, seed, /*burst=*/16);
      std::vector<int> arrivals;
      arrivals.reserve(static_cast<size_t>(arrivals_n));
      for (int64_t i = 0; i < arrivals_n; ++i) arrivals.push_back(traffic.next());
      std::vector<api::Cell> row = {api::cell(skew, 1)};
      for (const std::string& b : backings) {
        double jd = stats::jain_index(
            dwrr_service_counts(b, ntenants, arrivals, budget, equal));
        double jf = stats::jain_index(
            fifo_service_counts(b, ntenants, arrivals, budget));
        row.push_back(api::cell(jd, 4));
        row.push_back(api::cell(jf, 4));
        if (skew == 0.0) sec.metric("jain_uniform_dwrr_" + b, jd);
        if (skew == 1.8) sec.metric("jain_zipf18_fifo_" + b, jf);
      }
      sec.rows.push_back(std::move(row));
    }
    sec.note("  gate: jain dwrr >= 0.99 on the skew-0 (uniform) row for");
    sec.note("  every backing; the fifo columns decay with skew because a");
    sec.note("  shared queue serves the traffic mix, not the tenants.");
  }

  {
    auto& sec = r.section("E13a-w");
    sec.pre("");
    sec.pre("E13a-w: weighted shares under Zipf-skewed bursty traffic");
    sec.pre("        (skew 1.2, burst 16), weights 1 + t%3: max relative");
    sec.pre("        deviation of service shares from weight targets");
    sec.pre("");
    std::vector<uint32_t> weights(static_cast<size_t>(ntenants));
    for (int t = 0; t < ntenants; ++t)
      weights[static_cast<size_t>(t)] = 1 + static_cast<uint32_t>(t % 3);
    svc::ZipfTraffic traffic(ntenants, 1.2, seed, /*burst=*/16);
    std::vector<int> arrivals;
    arrivals.reserve(static_cast<size_t>(arrivals_n));
    for (int64_t i = 0; i < arrivals_n; ++i) arrivals.push_back(traffic.next());
    sec.cols({"backing", "maxdev dwrr", "maxdev fifo"});
    for (const std::string& b : backings) {
      double dd = max_weight_deviation(
          dwrr_service_counts(b, ntenants, arrivals, budget, weights),
          weights);
      double df = max_weight_deviation(
          fifo_service_counts(b, ntenants, arrivals, budget), weights);
      sec.row(b, api::cell(dd, 4), api::cell(df, 4));
      sec.metric("maxdev_dwrr_" + b, dd);
      sec.metric("maxdev_fifo_" + b, df);
    }
    sec.note("  gate: maxdev dwrr <= 0.10 (shares track weights within 10%)");
    sec.note("  while maxdev fifo does not — the control serves the Zipf");
    sec.note("  head far beyond its weight share.");
  }
  return r;
}

api::Report run_latency(const api::RunOptions& opts) {
  api::Report r = api::make_report("qos_latency");
  const int ntenants = 4;  // one producer pid per tenant + one servicer pid
  const int procs = ntenants + 1;
  const int64_t K = opts.ops_or(64);
  const std::string adversary = opts.adversary_or("bursty:12:36");
  const auto backings = api::queue_keys_or(opts.queues, {"ubq", "faaq"});
  r.preamble = {
      "E13b: enqueue->service latency in exact shared steps (sim), " +
          std::to_string(ntenants) + " producer pids + 1 servicer pid",
      "      adversary " + adversary + ", K=" + std::to_string(K) +
          " items/tenant, weights 1 + t%2"};

  for (const std::string& b : backings) {
    auto& sec = r.section("E13b:" + b);
    sec.pre("");
    sec.pre("E13b [" + b + "]");
    sec.cols({"tenant", "weight", "p50 steps", "p99 steps"});
    api::QueueConfig cfg;
    cfg.procs = procs;
    cfg.backend = api::Backend::sim;
    svc::ServiceFacade<uint64_t> s = api::make_service<uint64_t>(
        "dwrr:" + std::to_string(ntenants) + ":" + b, cfg);
    for (int t = 0; t < ntenants; ++t)
      s.set_weight(t, 1 + static_cast<uint32_t>(t % 2));

    // arrival_step[t][k], service_step[t][k]: plain memory is fine — the
    // sim baton serializes all bodies, and sched.steps() may be read by
    // whichever body currently holds it.
    std::vector<std::vector<double>> arrival(
        static_cast<size_t>(ntenants),
        std::vector<double>(static_cast<size_t>(K), 0));
    std::vector<std::vector<double>> latency(static_cast<size_t>(ntenants));

    sim::Scheduler sched(sim::make_policy(adversary));
    std::vector<std::function<void()>> bodies;
    for (int t = 0; t < ntenants; ++t) {
      bodies.emplace_back([&, t] {
        s.bind_thread(t);
        for (int64_t k = 0; k < K; ++k) {
          // Arrival stamp BEFORE the enqueue: the servicer may drain the
          // item before this producer runs again.
          arrival[static_cast<size_t>(t)][static_cast<size_t>(k)] =
              static_cast<double>(sched.steps());
          s.enqueue(t, static_cast<uint64_t>(k));
        }
      });
    }
    bodies.emplace_back([&] {
      s.bind_thread(ntenants);
      int64_t total = static_cast<int64_t>(ntenants) * K;
      int64_t got = 0;
      while (got < total) {
        auto item = s.service_next();
        if (!item) {
          // Empty ring: the facade's control state is uncounted, so spin
          // through an explicit yield point or the baton never moves.
          sim::Scheduler::yield_point(sim::StepKind::load);
          continue;
        }
        ++got;
        double now = static_cast<double>(sched.steps());
        latency[static_cast<size_t>(item->tenant)].push_back(
            now - arrival[static_cast<size_t>(item->tenant)]
                         [static_cast<size_t>(item->value)]);
      }
    });
    sched.run(std::move(bodies));

    std::vector<double> w1_all, w2_all;
    for (int t = 0; t < ntenants; ++t) {
      const auto& lat = latency[static_cast<size_t>(t)];
      uint32_t w = 1 + static_cast<uint32_t>(t % 2);
      sec.row(t, w, api::cell(stats::percentile(lat, 50), 0),
              api::cell(stats::percentile(lat, 99), 0));
      auto& bucket = (w == 1) ? w1_all : w2_all;
      bucket.insert(bucket.end(), lat.begin(), lat.end());
    }
    sec.metric("p99_w1_" + b, stats::percentile(w1_all, 99));
    sec.metric("p99_w2_" + b, stats::percentile(w2_all, 99));
    sec.note("  expectation: the weight-2 tenants' p99 sits below the");
    sec.note("  weight-1 tenants' — under identical bursty arrivals, weight");
    sec.note("  buys tail latency.");
  }
  return r;
}

api::Report run_throughput(const api::RunOptions& opts) {
  api::Report r = api::make_report("qos_throughput");
  const auto tenant_counts = opts.procs_or({2, 4, 8, 16, 32});
  const int64_t total_ops = opts.ops_or(40'000);
  const auto backings = api::queue_keys_or(opts.queues, {"ubq", "faaq"});
  r.preamble = {
      "E13c: service-loop throughput vs tenant count (real platform, one",
      "      servicing thread; " + std::to_string(total_ops) +
          " items prefilled round-robin, drained via service_next)"};
  // Pin the servicing thread for the whole sweep: wall-clock ns/op rows
  // are not comparable if the scheduler migrates the thread mid-sweep
  // (best-effort; no-op where unsupported — see platform/affinity.hpp).
  platform::pin_thread_to_core(0);
  for (const std::string& b : backings) {
    auto& sec = r.section("E13c:" + b);
    sec.pre("");
    sec.pre("E13c [" + b + "]");
    sec.cols({"tenants", "ns/op", "Mops/s", "rounds", "est items/round"});
    for (int n : tenant_counts) {
      api::QueueConfig cfg = api::sized_config(1, api::Backend::real,
                                               total_ops);
      svc::ServiceFacade<uint64_t> s = api::make_service<uint64_t>(
          "dwrr:" + std::to_string(n) + ":" + b, cfg);
      s.bind_thread(0);
      for (int64_t i = 0; i < total_ops; ++i)
        s.enqueue(static_cast<int>(i % n), static_cast<uint64_t>(i));
      auto start = std::chrono::steady_clock::now();
      int64_t got = 0;
      while (got < total_ops && s.service_next()) ++got;
      auto elapsed = std::chrono::steady_clock::now() - start;
      double ns =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()) /
          static_cast<double>(got > 0 ? got : 1);
      sec.row(n, api::cell(ns, 0), api::cell(ns > 0 ? 1000.0 / ns : 0.0),
              api::cell(static_cast<int64_t>(s.rounds())),
              api::cell(s.round_service_estimate()));
      if (n == tenant_counts.back())
        sec.metric("ns_per_op_" + b + "_n" + std::to_string(n), ns);
    }
    sec.note("  expectation: ns/op stays near-flat in the tenant count —");
    sec.note("  the ring visit is O(1) per served item while every tenant");
    sec.note("  stays backlogged (deactivation never fires mid-drain).");
  }
  return r;
}

const api::ExperimentRegistrar reg_a{
    {"qos_fairness", "e13a",
     "DWRR fairness (Jain's index, weighted shares) vs Zipf skew over "
     "backing queues",
     13, run_fairness}};
const api::ExperimentRegistrar reg_b{
    {"qos_latency", "e13b",
     "per-tenant enqueue->service latency under bursty arrivals (sim steps)",
     13, run_latency}};
const api::ExperimentRegistrar reg_c{
    {"qos_throughput", "e13c",
     "aggregate service-loop throughput vs tenant count", 13,
     run_throughput}};

}  // namespace
