// E15 — the raft replication experiment family (ISSUE 10): REAL broker
// processes in --cluster mode on loopback TCP, spawned with fork/execv and
// killed with real signals. Nothing in-process: each data point covers the
// wfb-v1 raft band over sockets, the replicated-config bootstrap, leader
// election, and the ClusterClient redirect/retry path — the same binary and
// client path a deployment would run.
//
// E15a (replication-factor overhead): closed-loop ENQ/DEQ pairs through
// ClusterClient against RF = 1, 3, 5 replica groups. Only broker METADATA
// rides the raft log (see src/broker/broker.hpp); the ENQ/DEQ data path is
// served by the leader locally, so the expected overhead is heartbeat
// traffic plus the extra processes on the box — small. The acceptance
// metric is rf3_over_rf1 (gate >= 0.70, set from measurement on a 2-core
// CI box where five broker processes contend for cores; single-core runs
// measured ~0.85-1.0 since followers are nearly idle).
//
// E15b (failover-time distribution): a 3-replica group serving a prober of
// ENQ/DEQ pairs; SIGKILL the leader and time from the kill to the first
// post-kill DEQ_OK served by the new leader (client-observed failover:
// election + client rediscovery). Several trials, fresh cluster each (a
// crashed replica never rejoins — no stable storage). Gate: median below
// 10x the election timeout.
//
// E15c (election-timeout sensitivity): the E15b measurement swept over
// --election-ms. Expected and reported, not gated: failover time scales
// roughly linearly with the timeout — the randomized-timeout election is
// the dominant term, so timeout choice IS the availability knob (the
// paper-standard raft tradeoff: short timeouts recover faster but risk
// spurious elections on slow networks).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/experiment.hpp"
#include "broker/loadgen.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "stats/qos.hpp"

namespace {

using namespace wfq;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// The broker binary next to this bench_runner: WFQ_BROKER_BIN overrides;
/// otherwise bench_runner lives in <build>/bench/ and the broker target in
/// <build>/.
std::string broker_bin() {
  const char* env = std::getenv("WFQ_BROKER_BIN");
  if (env != nullptr && *env != '\0') return env;
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    std::string exe(buf);
    size_t slash = exe.rfind('/');
    if (slash != std::string::npos) {
      std::string dir = exe.substr(0, slash);
      size_t up = dir.rfind('/');
      for (const std::string& cand :
           {up != std::string::npos ? dir.substr(0, up) + "/broker"
                                    : std::string(),
            dir + "/broker"}) {
        if (!cand.empty() && ::access(cand.c_str(), X_OK) == 0) return cand;
      }
    }
  }
  return "broker";  // last resort: PATH lookup via execvp semantics
}

uint16_t pick_free_port() {
  net::FdHandle fd = net::listen_tcp(0);
  if (!fd.valid()) return 0;
  return net::bound_tcp_port(fd.get());
}

/// An RF-replica broker group as real child processes.
struct Cluster {
  std::vector<pid_t> pids;
  std::vector<uint16_t> ports;

  static Cluster spawn(int rf, uint64_t election_ms,
                       const std::string& backing) {
    Cluster c;
    for (int i = 0; i < rf; ++i) c.ports.push_back(pick_free_port());
    std::string peers;
    for (size_t i = 0; i < c.ports.size(); ++i)
      peers += (i ? "," : "") + std::to_string(c.ports[i]);
    const std::string bin = broker_bin();
    for (int i = 0; i < rf; ++i) {
      pid_t pid = ::fork();
      if (pid == 0) {
        // Children are quiet: banner + drain report would interleave with
        // the bench table.
        ::freopen("/dev/null", "w", stdout);
        ::freopen("/dev/null", "w", stderr);
        std::string cluster = std::to_string(i) + "/" + std::to_string(rf);
        std::string election = std::to_string(election_ms);
        const char* argv[] = {bin.c_str(),       "--cluster",
                              cluster.c_str(),   "--peers",
                              peers.c_str(),     "--backing",
                              backing.c_str(),   "--shards",
                              "2",               "--election-ms",
                              election.c_str(),  nullptr};
        ::execv(bin.c_str(), const_cast<char**>(argv));
        _exit(127);
      }
      c.pids.push_back(pid);
    }
    return c;
  }

  void kill_replica(size_t i, int sig) {
    if (pids[i] <= 0) return;
    ::kill(pids[i], sig);
    int status = 0;
    if (sig == SIGKILL) {
      ::waitpid(pids[i], &status, 0);
      pids[i] = -1;
    }
  }

  void teardown() {
    for (pid_t& pid : pids) {
      if (pid <= 0) continue;
      ::kill(pid, SIGTERM);
    }
    for (pid_t& pid : pids) {
      if (pid <= 0) continue;
      int status = 0;
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
  }
};

/// Blocks until the group serves: one ENQ round trip through the redirect
/// path. Returns false if no leader emerged within the budget.
bool wait_serving(const std::vector<uint16_t>& ports, uint64_t budget_ms) {
  broker::ClusterClient::Options o;
  o.ports = ports;
  o.give_up_ms = budget_ms;
  broker::ClusterClient cc(o);
  net::Frame enq;
  enq.op = net::Opcode::enq;
  enq.key = 0;
  enq.payload = net::encode_value(1);
  return cc.request(enq).has_value();
}

// ---- E15a -----------------------------------------------------------------

api::Report run_rf(const api::RunOptions& opts) {
  api::Report r = api::make_report("raft_rf");
  const int64_t total_msgs = opts.ops_or(20'000);
  const int conns = 2;
  std::vector<int> rfs = opts.procs_or({1, 3, 5});
  // Replica counts must be odd (majority quorum) and >= 1.
  rfs.erase(std::remove_if(rfs.begin(), rfs.end(),
                           [](int x) { return x < 1 || x % 2 == 0; }),
            rfs.end());
  if (rfs.empty()) rfs = {1, 3, 5};
  r.preamble = {
      "E15a: cluster throughput vs replication factor (real broker "
      "processes,",
      "      loopback TCP, closed-loop ENQ/DEQ pairs via the redirecting "
      "ClusterClient,",
      "      " + std::to_string(total_msgs) + " total msgs, " +
          std::to_string(conns) + " clients)"};

  auto& sec = r.section("E15a");
  sec.cols({"rf", "msgs/s", "redirects", "rtt p50 us", "rtt p99 us"});
  double rf1 = 0, rf3 = 0;
  for (int rf : rfs) {
    Cluster c = Cluster::spawn(rf, 150, "ubq");
    double tput = 0, p50 = 0, p99 = 0;
    uint64_t redirects = 0;
    if (wait_serving(c.ports, 20'000)) {
      broker::LoadgenConfig lcfg;
      lcfg.cluster_ports = c.ports;
      lcfg.connections = conns;
      lcfg.msgs_per_conn =
          std::max<int64_t>(2, (total_msgs / conns) & ~int64_t{1});
      lcfg.window = 1;
      broker::LoadgenResult lr = broker::run_loadgen(lcfg);
      tput = lr.msgs_per_s;
      redirects = lr.redirects;
      p50 = stats::percentile(lr.latencies_us, 50);
      p99 = stats::percentile(lr.latencies_us, 99);
    }
    c.teardown();
    if (rf == 1) rf1 = tput;
    if (rf == 3) rf3 = tput;
    sec.row(rf, api::cell(tput, 0), api::cell(redirects), api::cell(p50, 1),
            api::cell(p99, 1));
    sec.metric("msgs_per_s_rf" + std::to_string(rf), tput);
  }
  if (rf1 > 0 && rf3 > 0) sec.metric("rf3_over_rf1", rf3 / rf1);
  sec.note("  gate: rf3_over_rf1 >= 0.70 — only metadata rides the raft");
  sec.note("  log, so the ENQ/DEQ path pays heartbeats + process contention,");
  sec.note("  not per-op consensus. Gate set from measurement on a 2-core");
  sec.note("  box (observed ~0.85-1.0; 0.70 leaves headroom for CI noise).");
  return r;
}

// ---- E15b / E15c ----------------------------------------------------------

/// One failover measurement: fresh RF-3 group, prober traffic, SIGKILL the
/// leader, time to the first post-kill DEQ_OK. Returns <0 on setup failure.
double one_failover_ms(uint64_t election_ms) {
  Cluster c = Cluster::spawn(3, election_ms, "ubq");
  double result = -1;
  if (wait_serving(c.ports, 20'000)) {
    broker::ClusterClient::Options o;
    o.ports = c.ports;
    o.read_timeout_ms = std::max<uint64_t>(50, election_ms / 2);
    o.give_up_ms = 30'000;
    broker::ClusterClient cc(o);

    net::Frame enq;
    enq.op = net::Opcode::enq;
    enq.key = 7;
    enq.payload = net::encode_value(42);
    net::Frame deq;
    deq.op = net::Opcode::deq;
    deq.key = 7;

    // A couple of warm-up pairs pin the client to the leader.
    bool ok = true;
    for (int i = 0; i < 2 && ok; ++i)
      ok = cc.request(enq).has_value() && cc.request(deq).has_value();
    int leader = cc.current();
    if (ok && leader >= 0 && leader < 3) {
      auto t_kill = Clock::now();
      c.kill_replica(static_cast<size_t>(leader), SIGKILL);
      // First post-kill DEQ_OK: each request internally rides redirects
      // and reconnects until the new leader serves it.
      while (true) {
        auto e = cc.request(enq);
        if (!e) break;
        auto d = cc.request(deq);
        if (!d) break;
        if (d->op == net::Opcode::deq_ok) {
          result = ms_since(t_kill);
          break;
        }
      }
    }
  }
  c.teardown();
  return result;
}

api::Report run_failover(const api::RunOptions& opts) {
  api::Report r = api::make_report("raft_failover");
  const uint64_t election_ms = 150;
  const int trials = static_cast<int>(
      std::max<int64_t>(3, std::min<int64_t>(opts.ops_or(7), 25)));
  r.preamble = {
      "E15b: leader-failover time, 3-replica group, election timeout " +
          std::to_string(election_ms) + " ms, " + std::to_string(trials) +
          " trials",
      "      (SIGKILL the serving leader; time to the first DEQ_OK from "
      "the new one,",
      "      fresh cluster per trial — crashed replicas never rejoin)"};

  auto& sec = r.section("E15b");
  sec.cols({"trial", "failover ms"});
  std::vector<double> samples;
  for (int t = 0; t < trials; ++t) {
    double ms = one_failover_ms(election_ms);
    if (ms >= 0) {
      samples.push_back(ms);
      sec.row(t, api::cell(ms, 1));
    } else {
      sec.row(t, "setup failed");
    }
  }
  if (!samples.empty()) {
    double median = stats::percentile(samples, 50);
    sec.metric("failover_ms_median", median);
    sec.metric("failover_ms_p90", stats::percentile(samples, 90));
    sec.metric("failover_over_election", median / double(election_ms));
  }
  sec.note("  gate: failover_ms_median < 10x election timeout (" +
           std::to_string(10 * election_ms) +
           " ms) — election (1-2 timeouts");
  sec.note("  incl. randomized spread) + client rediscovery must not blow");
  sec.note("  past an order of magnitude of the configured timeout.");
  return r;
}

api::Report run_election_sweep(const api::RunOptions& opts) {
  api::Report r = api::make_report("raft_election_sweep");
  const int trials = static_cast<int>(
      std::max<int64_t>(2, std::min<int64_t>(opts.ops_or(3), 10)));
  const std::vector<uint64_t> timeouts = {60, 150, 400};
  r.preamble = {
      "E15c: failover time vs election timeout, 3-replica groups, " +
      std::to_string(trials) + " trials per point"};

  auto& sec = r.section("E15c");
  sec.cols({"election ms", "failover p50 ms", "failover max ms",
            "failover/election"});
  for (uint64_t t : timeouts) {
    std::vector<double> samples;
    for (int i = 0; i < trials; ++i) {
      double ms = one_failover_ms(t);
      if (ms >= 0) samples.push_back(ms);
    }
    double p50 = samples.empty() ? -1 : stats::percentile(samples, 50);
    double mx = samples.empty()
                    ? -1
                    : *std::max_element(samples.begin(), samples.end());
    sec.row(t, api::cell(p50, 1), api::cell(mx, 1),
            p50 >= 0 ? api::cell(p50 / double(t), 2) : api::cell("-"));
    sec.metric("failover_p50_ms_t" + std::to_string(t), p50);
  }
  sec.note("  expectation (no gate): failover scales roughly linearly with");
  sec.note("  the election timeout — the randomized timeout draw dominates,");
  sec.note("  so the timeout is the availability/stability tradeoff knob.");
  return r;
}

const api::ExperimentRegistrar reg_a{
    {"raft_rf", "e15a",
     "cluster throughput vs replication factor (real broker processes)", 15,
     run_rf}};
const api::ExperimentRegistrar reg_b{
    {"raft_failover", "e15b",
     "leader-failover time distribution under SIGKILL (3 replicas)", 15,
     run_failover}};
const api::ExperimentRegistrar reg_c{
    {"raft_election_sweep", "e15c",
     "failover time vs raft election timeout", 15, run_election_sweep}};

}  // namespace
