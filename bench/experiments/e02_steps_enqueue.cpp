// E2 — Theorem 22 (enqueue): an Enqueue takes O(log p) shared-memory steps,
// worst case, even under the round-robin adversary.
//
// Harness: p simulated processes each perform K enqueues under the selected
// adversary; every operation's exact step count is recorded. The paper's
// claim is on the MAX per-op cost (wait-freedom gives a per-operation
// bound, not just amortized). Expected shape for the wait-free queue: max
// and mean grow ~ c*log2(p), flat in K. `--queues` sweeps the same
// measurement over any registered step-counted queue.
#include <cmath>

#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "api/queue_registry.hpp"

namespace {

using namespace wfq;

api::Report run(const api::RunOptions& opts) {
  api::Report r = api::make_report("steps_enqueue");
  const int64_t ops = opts.ops_or(40);
  const std::string adversary = opts.adversary_or("round-robin");
  const auto procs = opts.procs_or({2, 4, 8, 16, 32, 64});
  const auto queues = api::queue_keys_or(opts.queues, {"ubq"});
  r.preamble = {"E2: enqueue step complexity vs p  (Theorem 22: O(log p))",
                "    simulator, " + adversary + " adversary, K=" +
                    std::to_string(ops) + " enqueues/process"};

  for (const std::string& qname : queues) {
    bool is_default = queues.size() == 1 && qname == "ubq";
    auto& sec = r.section(is_default ? "E2" : "E2:" + qname);
    if (!is_default) sec.pre("queue: " + qname);
    std::string warn =
        api::step_counted_warning(qname, api::queue_info(qname).step_counted);
    if (!warn.empty()) sec.pre(warn);
    sec.cols({"p", "ceil(log2 p)", "ops", "steps/op mean", "steps/op p99",
              "steps/op max", "max/log2(p)"});
    std::vector<double> ps, maxima;
    for (int p : procs) {
      api::AnyQueue<uint64_t> q = api::make_queue<uint64_t>(
          qname, api::sized_config(p, api::Backend::sim, ops));
      api::OpSamples samples = api::measure_ops(q, p, ops,
                                                api::OpKind::enqueue,
                                                adversary);
      auto s = stats::summarize(samples.steps);
      double logp = std::log2(p);
      sec.row(p, static_cast<int>(std::ceil(logp)),
              static_cast<uint64_t>(s.n), api::cell(s.mean),
              api::cell(s.p99), api::cell(s.max, 0),
              api::cell_ratio(s.max, logp));
      ps.push_back(p);
      maxima.push_back(s.max);
    }
    sec.shape(is_default ? "enqueue max steps"
                         : "enqueue max steps (" + qname + ")",
              ps, maxima);
    sec.note("  paper expectation: best fit log p or log^2 p, NOT p;");
    sec.note("  max/log2(p) column roughly constant.");
  }
  return r;
}

const api::ExperimentRegistrar reg{
    {"steps_enqueue", "e2",
     "enqueue shared-memory steps vs p (Theorem 22: O(log p))", 2, run}};

}  // namespace
