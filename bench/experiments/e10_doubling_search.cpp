// E10 — Lemma 20: FindResponse's doubling search for the block containing
// the e-th enqueue costs O(log(size_be + size_{b-1})) steps, so a dequeue's
// search cost scales with the logarithm of the queue size, not with the
// number of blocks ever appended.
//
// Harness (single process, real platform): enqueue q items, then measure
// per-dequeue step counts while draining. Because the queue was built by
// one process, every root block holds one operation and b - b_e ~ q, making
// the doubling search the dominant term. Expected: steps/dequeue ~ a +
// b*log2(q), i.e. the log-q fit wins decisively over linear q.
#include <cmath>

#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "core/unbounded_queue.hpp"

namespace {

using namespace wfq;

api::Report run(const api::RunOptions& opts) {
  api::Report r = api::make_report("doubling_search");
  (void)opts;
  r.preamble = {"E10: dequeue search cost vs queue size (Lemma 20)",
                "     single process; drain steps measured at head of a",
                "     q-element queue"};
  auto& sec = r.section("E10");
  sec.cols({"q", "first-deq steps", "mean drain steps/op", "first/log2(q)"});
  std::vector<double> qs, firsts;
  for (uint64_t q_size : {8u, 64u, 512u, 4096u, 32768u}) {
    core::UnboundedQueue<uint64_t> q(1);
    for (uint64_t i = 0; i < q_size; ++i) q.enqueue(i);
    // First dequeue: worst case, value lives q blocks back.
    platform::StepScope first_scope;
    (void)q.dequeue();
    double first = static_cast<double>(first_scope.delta().total());
    // Per-op scoping so the final null dequeue (which ends the drain) does
    // not leak its steps into the successful-dequeue mean.
    double drain_total = 0;
    uint64_t drained = 1;
    for (;;) {
      platform::StepScope op_scope;
      if (!q.dequeue().has_value()) break;
      drain_total += static_cast<double>(op_scope.delta().total());
      ++drained;
    }
    double mean = drain_total / static_cast<double>(drained - 1);
    sec.row(q_size, api::cell(first, 0), api::cell(mean),
            api::cell(first / std::log2(static_cast<double>(q_size))));
    qs.push_back(static_cast<double>(q_size));
    firsts.push_back(first);
  }
  std::vector<double> logq;
  for (double v : qs) logq.push_back(std::log2(v));
  double r2_logq = stats::fit_r2(logq, firsts);
  double r2_q = stats::fit_r2(qs, firsts);
  sec.metric("r2_first_deq_logq", r2_logq).metric("r2_first_deq_q", r2_q);
  sec.note("  R^2[first-deq steps ~ log q] = " + stats::fmt(r2_logq, 3) +
           "   R^2[~ q] = " + stats::fmt(r2_q, 3));
  sec.note("  paper expectation: log fit ~1.0, linear fit clearly worse;");
  sec.note("  first/log2(q) roughly constant.");
  return r;
}

const api::ExperimentRegistrar reg{
    {"doubling_search", "e10",
     "dequeue search cost vs queue size (Lemma 20 doubling search)", 10,
     run}};

}  // namespace
