// E12 (ablation) — why FindResponse uses a *doubling* search (Bentley-Yao)
// rather than a plain binary search over all root blocks (line 91 /
// Lemma 20): the doubling search costs O(log(b - b_e)) — distance to the
// answer — while a full binary search costs O(log b) — the entire history
// length — which would break Theorem 22's independence from the number of
// operations ever performed.
//
// Harness: build a root blocks array with H total blocks (single process:
// one op per block) where the dequeue frontier sits near the end; count
// loads for both strategies when resolving the next dequeue's enqueue
// block. Expected: doubling stays flat as H grows (distance is fixed by
// the queue size), full binary search grows with log H.
#include <cmath>

#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "core/unbounded_queue.hpp"

namespace {

using namespace wfq;
using Queue = core::UnboundedQueue<uint64_t>;
using Block = Queue::Block;
using Node = Queue::Node;

struct Cost {
  int doubling = 0;
  int full_binary = 0;
};

// Replicates the two search strategies over the real root blocks array,
// counting slot loads. `b` = dequeue's block, `e` = target enqueue rank.
Cost search_costs(const Node* root, int64_t b, int64_t e) {
  Cost c;
  {  // Doubling + binary (the implementation's strategy).
    int64_t lo = b, step = 1;
    while (lo > 0) {
      ++c.doubling;
      if (root->blocks.load(lo)->sumenq < e) break;
      lo = b - step > 0 ? b - step : 0;
      step <<= 1;
    }
    int64_t hi = b;
    while (lo + 1 < hi) {
      ++c.doubling;
      int64_t mid = lo + (hi - lo) / 2;
      if (root->blocks.load(mid)->sumenq >= e)
        hi = mid;
      else
        lo = mid;
    }
  }
  {  // Naive full binary search over [1..b].
    int64_t lo = 0, hi = b;
    while (lo + 1 < hi) {
      ++c.full_binary;
      int64_t mid = lo + (hi - lo) / 2;
      if (root->blocks.load(mid)->sumenq >= e)
        hi = mid;
      else
        lo = mid;
    }
  }
  return c;
}

api::Report run(const api::RunOptions& opts) {
  api::Report r = api::make_report("search_ablation");
  (void)opts;
  r.preamble = {"E12: doubling vs full binary search in FindResponse "
                "(Lemma 20 ablation)",
                "     queue size fixed at q=32; history length H grows"};
  auto& sec = r.section("E12");
  sec.cols({"history H (blocks)", "doubling loads", "full-binary loads"});
  std::vector<double> hs, dbl, fb;
  for (int64_t churn : {100, 1'000, 10'000, 100'000}) {
    Queue q(1);
    constexpr int64_t kQ = 32;
    for (int64_t i = 0; i < kQ; ++i) q.enqueue(static_cast<uint64_t>(i));
    for (int64_t i = 0; i < churn; ++i) {
      q.enqueue(static_cast<uint64_t>(kQ + i));
      (void)q.dequeue();
    }
    const Node* root = q.debug_root();
    int64_t head = root->head.unsafe_peek();
    int64_t b = head - 1;  // next dequeue would land right after the frontier
    const Block* prev = root->blocks.load(b - 1);
    int64_t e = 1 + prev->sumenq - prev->size;  // rank of the head element
    Cost c = search_costs(root, b, e);
    sec.row(head - 1, c.doubling, c.full_binary);
    hs.push_back(static_cast<double>(head - 1));
    dbl.push_back(c.doubling);
    fb.push_back(c.full_binary);
  }
  std::vector<double> logh;
  for (double h : hs) logh.push_back(std::log2(h));
  double slope_dbl = stats::fit_slope(logh, dbl);
  double slope_fb = stats::fit_slope(logh, fb);
  sec.metric("slope_doubling_logh", slope_dbl)
      .metric("slope_full_binary_logh", slope_fb);
  sec.note("  slope[doubling ~ log H] = " + stats::fmt(slope_dbl, 2) +
           " (flat);  slope[full-binary ~ log H] = " +
           stats::fmt(slope_fb, 2) + " (~1 load per doubling of H)");
  sec.note("  expectation: doubling cost is set by the queue size (fixed");
  sec.note("  here), so it stays constant while the naive search grows");
  sec.note("  with the total history — the design choice Lemma 20 needs.");
  return r;
}

const api::ExperimentRegistrar reg{
    {"search_ablation", "e12",
     "doubling vs full binary search over the root array (Lemma 20)", 12,
     run}};

}  // namespace
