// E4 — Proposition 19 vs the CAS retry problem: our queue performs O(log p)
// CAS instructions per operation, worst case; the MS-queue performs Theta(p)
// CAS attempts per operation under the round-robin adversary (each
// successful head/tail CAS fails the other p-1 lock-step attempts).
//
// Harness: p processes each perform K enqueues in lock-step on every queue
// in the set (default: the wait-free queue and the MS-queue). Reported: CAS
// attempts and failures per operation. Expected shape: ours <= ~5*ceil(log2
// p) and flat-ish; MS grows linearly in p.
#include <cmath>

#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "api/queue_registry.hpp"

namespace {

using namespace wfq;

api::Report run(const api::RunOptions& opts) {
  api::Report r = api::make_report("cas_retry");
  const int64_t ops = opts.ops_or(25);
  const std::string adversary = opts.adversary_or("round-robin");
  const auto procs = opts.procs_or({2, 4, 8, 16, 32, 64});
  const auto queues = api::queue_keys_or(opts.queues, {"ubq", "msq"});
  r.preamble = {
      "E4: CAS attempts per enqueue vs p  (Proposition 19: ours O(log p);",
      "    MS-queue suffers the CAS retry problem: Theta(p))",
      "    simulator, " + adversary + " adversary, K=" + std::to_string(ops) +
          " enqueues/process"};

  auto& sec = r.section("E4");
  for (const std::string& qname : queues) {
    std::string warn =
        api::step_counted_warning(qname, api::queue_info(qname).step_counted);
    if (!warn.empty()) sec.pre(warn);
  }
  std::vector<std::string> cols = {"p", "5ceil(log2 p)"};
  for (const std::string& qname : queues) {
    cols.push_back(qname + " cas/op");
    cols.push_back(qname + " casfail/op");
  }
  sec.cols(cols);

  std::vector<double> ps;
  std::vector<std::vector<double>> cas_series(queues.size());
  for (int p : procs) {
    std::vector<api::Cell> row = {
        api::cell(p),
        api::cell(5 * static_cast<int>(std::ceil(std::log2(p))))};
    for (size_t qi = 0; qi < queues.size(); ++qi) {
      api::AnyQueue<uint64_t> q = api::make_queue<uint64_t>(
          queues[qi], api::sized_config(p, api::Backend::sim, ops));
      api::OpSamples s =
          api::measure_ops(q, p, ops, api::OpKind::enqueue, adversary);
      auto attempts = stats::summarize(s.cas_attempts);
      auto failures = stats::summarize(s.cas_failures);
      row.push_back(api::cell(attempts.mean));
      row.push_back(api::cell(failures.mean));
      cas_series[qi].push_back(attempts.mean);
    }
    sec.rows.push_back(std::move(row));
    ps.push_back(p);
  }
  for (size_t qi = 0; qi < queues.size(); ++qi)
    sec.shape(queues[qi] + " cas/op", ps, cas_series[qi]);
  sec.note("  paper expectation: ubq stays within the 5*ceil(log2 p)");
  sec.note("  budget with few failures; MS-queue CAS/op grows ~ p.");
  return r;
}

const api::ExperimentRegistrar reg{
    {"cas_retry", "e4",
     "CAS attempts per op: O(log p) vs the MS-queue's Theta(p)", 4, run}};

}  // namespace
