// E14 — the broker experiment family (ISSUE 8): the sharded wfb-v1 broker
// (src/net/ + src/broker/) measured end to end over REAL sockets. Each run
// constructs an in-process Broker on a private temp UDS path (and a
// kernel-picked TCP port for E14b) and drives it with the same
// broker::run_loadgen the `loadgen` binary wraps — full codec, event loop,
// servicer and backpressure path, nothing mocked.
//
// E14a (throughput vs client count, UDS): closed-loop ENQ/DEQ pairs from C
// connections against 4 ubq shards, fixed TOTAL message budget. Expected:
// aggregate msgs/s is monotone non-decreasing from 1 to 4 clients — more
// in-flight requests per event-loop wakeup means the syscall and wakeup
// cost amortizes over bigger bursts (this holds on a single core, where it
// cannot come from parallelism). The acceptance metric is the min ratio of
// consecutive throughputs up to 4 clients (gate: >= 1.0).
//
// E14b (transport ablation): the identical workload at fixed client count
// over loopback TCP vs UDS. No gate — the table quantifies what the
// kernel's TCP stack (checksums, nagle-off small packets, loopback routing)
// costs relative to a UDS byte stream.
//
// E14c (shard-count scaling at fixed clients): topic-isolation goodput.
// Eight clients each consume their OWN topic (their routing key). wfb-v1
// DEQ pops the shard's FIFO head whatever topic enqueued it — there is no
// selective receive — so when topics share a shard a consumer mostly pops
// foreign items and must requeue them (ENQ back under the owner's key)
// before retrying. At S=1 that requeue churn costs ~2*topics wire frames
// per delivered item; at S=8 (a shard per topic, via salted keys) every
// DEQ is a delivery. Aggregate DELIVERED msgs/s is the metric (wire msgs/s
// is reported alongside: the broker itself is equally fast at every S —
// the win is goodput, which is why real brokers shard by topic/partition).
// Gate: >= 2x delivered/s from 1 to 8 shards; holds on a single core
// because the mechanism is wasted work, not parallelism (multicore adds
// servicer parallelism on top). Keys are salted (key_base search) so the C
// client keys spread across all S shards — modeling the balanced keyspace
// a real deployment routes, not splitmix collisions on 8 consecutive
// integers.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/experiment.hpp"
#include "broker/broker.hpp"
#include "broker/loadgen.hpp"
#include "platform/affinity.hpp"
#include "stats/qos.hpp"

namespace {

using namespace wfq;

/// Private per-run socket path: pid + counter so sequential brokers in one
/// bench_runner process never collide (listen_uds unlinks stale paths, but
/// two LIVE brokers must not share one).
std::string temp_uds_path() {
  static int counter = 0;
  return "/tmp/wfq-e14-" + std::to_string(::getpid()) + "-" +
         std::to_string(++counter) + ".sock";
}

/// Servicer-thread count for S shards: one per shard up to the core count.
/// On a 1-core box every sweep point gets ONE servicer, so E14c isolates
/// the data-structure effect (per-shard backlog) from thread-count effects.
int groups_for(int shards) {
  return std::max(1, std::min(shards, platform::hardware_cores()));
}

/// Smallest key base where the C consecutive keys kb..kb+C-1 spread over
/// min(C, S) distinct shards. Deterministic (mix_key is a pure function).
uint32_t pick_key_base(int conns, int shards) {
  int want = std::min(conns, shards);
  for (uint32_t kb = 0; kb < 1u << 16; ++kb) {
    std::set<int> hit;
    for (int c = 0; c < conns; ++c)
      hit.insert(static_cast<int>(
          broker::mix_key(kb + static_cast<uint32_t>(c)) %
          static_cast<uint64_t>(shards)));
    if (static_cast<int>(hit.size()) >= want) return kb;
  }
  return 0;  // unreachable for sane (conns, shards); fall back to 0
}

/// Distinct shards the C keys actually land on (table column).
int distinct_shards(uint32_t key_base, int conns, int shards) {
  std::set<int> hit;
  for (int c = 0; c < conns; ++c)
    hit.insert(static_cast<int>(
        broker::mix_key(key_base + static_cast<uint32_t>(c)) %
        static_cast<uint64_t>(shards)));
  return static_cast<int>(hit.size());
}

struct WorkloadResult {
  broker::LoadgenResult lg;
  broker::Broker::ShardCounters totals;
};

/// One broker lifetime: start, drive the loadgen workload(s), stop. The
/// optional prefill runs first and is NOT part of the timed result.
WorkloadResult run_workload(broker::BrokerConfig bcfg,
                            broker::LoadgenConfig lcfg,
                            const broker::LoadgenConfig* prefill = nullptr) {
  broker::Broker b(std::move(bcfg));
  b.start();
  if (prefill != nullptr) (void)broker::run_loadgen(*prefill);
  WorkloadResult r;
  r.lg = broker::run_loadgen(lcfg);
  b.stop();
  r.totals = b.totals();
  return r;
}

api::Report run_clients(const api::RunOptions& opts) {
  api::Report r = api::make_report("broker_clients");
  const int shards = 4;
  const int64_t total_msgs = opts.ops_or(40'000);
  const int trials = 2;  // best-of: damps scheduler noise on shared boxes
  const std::vector<int> client_counts = opts.procs_or({1, 2, 4, 8, 16});
  r.preamble = {
      "E14a: broker throughput + latency vs client count over UDS",
      "      " + std::to_string(shards) + " ubq shards, " +
          std::to_string(groups_for(shards)) + " servicer thread(s), " +
          std::to_string(total_msgs) +
          " total msgs (closed-loop ENQ/DEQ pairs, window 1), best of " +
          std::to_string(trials)};

  auto& sec = r.section("E14a");
  sec.cols({"clients", "msgs/s", "rtt p50 us", "rtt p99 us", "rtt p999 us"});
  std::vector<double> tput;
  for (int c : client_counts) {
    broker::LoadgenResult best;
    for (int t = 0; t < trials; ++t) {
      broker::BrokerConfig bcfg;
      bcfg.shards = shards;
      bcfg.groups = groups_for(shards);
      bcfg.backing = "ubq";
      bcfg.uds_path = temp_uds_path();
      bcfg.expected_ops = total_msgs + 4096;
      broker::LoadgenConfig lcfg;
      lcfg.uds_path = bcfg.uds_path;
      lcfg.connections = c;
      // Fixed total budget: per-connection share, kept even so every
      // connection's ENQ/DEQ pairs balance and the broker drains empty.
      lcfg.msgs_per_conn = std::max<int64_t>(2, (total_msgs / c) & ~int64_t{1});
      lcfg.window = 1;
      WorkloadResult w = run_workload(bcfg, lcfg);
      if (w.lg.msgs_per_s > best.msgs_per_s) best = std::move(w.lg);
    }
    tput.push_back(best.msgs_per_s);
    sec.row(c, api::cell(best.msgs_per_s, 0),
            api::cell(stats::percentile(best.latencies_us, 50), 1),
            api::cell(stats::percentile(best.latencies_us, 99), 1),
            api::cell(stats::percentile(best.latencies_us, 99.9), 1));
    sec.metric("msgs_per_s_c" + std::to_string(c), best.msgs_per_s);
  }
  // Gate: monotone non-decreasing 1 -> 4 clients. Computed over the sweep
  // points <= 4 actually run (the default sweep has 1, 2, 4).
  double min_ratio = 1e9;
  for (size_t i = 0; i + 1 < client_counts.size(); ++i) {
    if (client_counts[i + 1] > 4) break;
    if (tput[i] > 0) min_ratio = std::min(min_ratio, tput[i + 1] / tput[i]);
  }
  if (min_ratio < 1e9) sec.metric("monotone_min_ratio_1_to_4", min_ratio);
  sec.note("  gate: monotone_min_ratio_1_to_4 >= 1.0 — aggregate msgs/s");
  sec.note("  must not drop from 1 to 4 clients (bigger bursts per event-");
  sec.note("  loop wakeup amortize syscall cost, even on one core).");
  return r;
}

api::Report run_transport(const api::RunOptions& opts) {
  api::Report r = api::make_report("broker_transport");
  const int shards = 4;
  const int clients = 4;
  const int64_t total_msgs = opts.ops_or(40'000);
  r.preamble = {
      "E14b: UDS vs loopback-TCP ablation, " + std::to_string(clients) +
          " closed-loop clients, " + std::to_string(shards) + " ubq shards, " +
          std::to_string(total_msgs) + " total msgs"};

  auto& sec = r.section("E14b");
  sec.cols({"transport", "msgs/s", "rtt p50 us", "rtt p99 us"});
  double uds_tput = 0, tcp_tput = 0;
  for (const std::string& transport :
       {std::string("uds"), std::string("tcp")}) {
    broker::BrokerConfig bcfg;
    bcfg.shards = shards;
    bcfg.groups = groups_for(shards);
    bcfg.backing = "ubq";
    bcfg.uds_path = temp_uds_path();
    bcfg.tcp_port = 0;  // kernel-picked; read back below
    bcfg.expected_ops = total_msgs + 4096;
    const std::string uds = bcfg.uds_path;
    broker::Broker b(std::move(bcfg));
    b.start();
    broker::LoadgenConfig lcfg;
    lcfg.connections = clients;
    lcfg.msgs_per_conn =
        std::max<int64_t>(2, (total_msgs / clients) & ~int64_t{1});
    lcfg.window = 1;
    if (transport == "uds")
      lcfg.uds_path = uds;
    else
      lcfg.tcp_port = b.tcp_port();
    broker::LoadgenResult lr = broker::run_loadgen(lcfg);
    b.stop();
    (transport == "uds" ? uds_tput : tcp_tput) = lr.msgs_per_s;
    sec.row(transport, api::cell(lr.msgs_per_s, 0),
            api::cell(stats::percentile(lr.latencies_us, 50), 1),
            api::cell(stats::percentile(lr.latencies_us, 99), 1));
    sec.metric("msgs_per_s_" + transport, lr.msgs_per_s);
  }
  if (tcp_tput > 0) sec.metric("uds_over_tcp", uds_tput / tcp_tput);
  sec.note("  expectation (no gate): UDS at or above TCP — the identical");
  sec.note("  broker behind a cheaper byte stream; the ratio prices the");
  sec.note("  loopback TCP stack.");
  return r;
}

// ---- E14c topic-consumer client -------------------------------------------
//
// Each client owns one topic (its routing key); values are tagged
// (topic << 32) | seq. The client prefills its topic (untimed), then
// consumes exactly `target` of its OWN items through windowed pipelined
// DEQs. The broker has no selective receive — DEQ pops the shard's FIFO
// head, whatever topic enqueued it — so a foreign item must be requeued
// (ENQ back under its owner's key) before trying again. When topics share
// a shard this requeue churn is most of the wire traffic; a topic with its
// own shard never sees a foreign item.

struct TopicStats {
  int64_t delivered = 0;  // own-topic items consumed
  int64_t wire = 0;       // frames sent: DEQs + requeue ENQs
  std::vector<double> deq_rtt_us;
  std::chrono::steady_clock::time_point t_end;
  bool ok = true;
};

void topic_consumer(const std::string& uds, uint32_t key_base, uint32_t topic,
                    int64_t target, int window, std::atomic<int>* barrier,
                    TopicStats* out) {
  net::FdHandle fd = net::connect_uds(uds);
  if (!fd.valid()) {
    out->ok = false;
    barrier->fetch_sub(1);
    return;
  }
  const uint32_t own_key = key_base + topic;
  net::Decoder dec;
  char buf[65536];

  // Untimed prefill: `target` tagged items onto the own topic, in windowed
  // chunks so neither socket buffer fills.
  int64_t seq = 0;
  net::Frame resp;
  for (int64_t done = 0; done < target;) {
    int64_t chunk = std::min<int64_t>(256, target - done);
    std::string wirebuf;
    for (int64_t i = 0; i < chunk; ++i) {
      net::Frame f;
      f.op = net::Opcode::enq;
      f.key = own_key;
      f.payload = net::encode_value(
          (static_cast<uint64_t>(topic) << 32) |
          static_cast<uint64_t>(seq++));
      net::encode_frame(f, wirebuf);
    }
    if (!net::write_all(fd.get(), wirebuf)) {
      out->ok = false;
      barrier->fetch_sub(1);
      return;
    }
    for (int64_t i = 0; i < chunk; ++i) {
      while (dec.next(resp) != net::DecodeStatus::ok) {
        ssize_t n = ::read(fd.get(), buf, sizeof(buf));
        if (n <= 0) {
          out->ok = false;
          barrier->fetch_sub(1);
          return;
        }
        dec.feed(buf, static_cast<size_t>(n));
      }
      if (resp.op != net::Opcode::enq_ok) out->ok = false;
    }
    done += chunk;
  }

  // All clients start consuming together: the timed region measures the
  // steady multiplexed state, not a head start on a private queue.
  barrier->fetch_sub(1);
  while (barrier->load(std::memory_order_acquire) > 0) std::this_thread::yield();

  struct Sent {
    bool is_deq;
    std::chrono::steady_clock::time_point t;
  };
  std::deque<Sent> outstanding;
  int deqs_inflight = 0;
  std::string sendbuf;
  auto push_deq = [&] {
    net::Frame f;
    f.op = net::Opcode::deq;
    f.key = own_key;
    net::encode_frame(f, sendbuf);
    outstanding.push_back({true, std::chrono::steady_clock::now()});
    ++deqs_inflight;
    ++out->wire;
  };
  auto push_requeue = [&](uint64_t v) {
    net::Frame f;
    f.op = net::Opcode::enq;
    f.key = key_base + static_cast<uint32_t>(v >> 32);  // the owner's key
    f.payload = net::encode_value(v);
    net::encode_frame(f, sendbuf);
    outstanding.push_back({false, {}});
    ++out->wire;
  };
  // Foreign items are NOT requeued immediately: with every consumer running
  // the same deterministic pop→requeue loop, the shared FIFO settles into a
  // phase-locked rotation where each consumer keeps popping the same foreign
  // items forever (a merry-go-round livelock — with two consumers, queue
  // [b,a]: A pops b and requeues, B pops a and requeues, queue is [b,a]
  // again). Holding a popped item for a jittered number of turns slips the
  // phase so every item eventually surfaces in front of its owner.
  std::vector<uint64_t> stash;
  uint64_t rng = 0x9E3779B97F4A7C15ULL ^
                 (static_cast<uint64_t>(topic) * 0xBF58476D1CE4E5B9ULL);
  auto jitter7 = [&] {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<size_t>(rng >> 61);  // 0..7
  };
  auto flush_stash = [&] {
    for (uint64_t v : stash) push_requeue(v);
    stash.clear();
  };

  int backoff_us = 0;
  while (out->delivered < target || !outstanding.empty() || !stash.empty()) {
    // In-flight DEQs are capped at the items still needed: surplus DEQs
    // only manufacture deq_empty spin (every one an op on the backing).
    int64_t want = target - out->delivered;
    if (want == 0)
      flush_stash();  // done consuming: everything held goes back now
    else
      while (stash.size() > jitter7()) {  // requeue down to a jittered level
        push_requeue(stash.back());
        stash.pop_back();
      }
    // Requeues go out in their OWN write, and occasionally with a short
    // randomized pause before the DEQ burst follows. FIFO order makes a
    // consumer's own requeues the head of whatever it pops next, so a
    // requeue+DEQ pipeline that the servicer executes as one batch
    // atomically re-pops its own requeues — with every consumer doing
    // that, items never migrate to their owners and the phase is a stable
    // livelock (observed: stash == deficit for every consumer, millions
    // of wire frames, zero deliveries). The pause is the migration
    // channel: while this consumer holds back, a peer's DEQs harvest the
    // freshly requeued items.
    if (!sendbuf.empty()) {
      if (!net::write_all(fd.get(), sendbuf)) {
        out->ok = false;
        return;
      }
      sendbuf.clear();
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      if (((rng >> 29) & 7) == 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds((rng >> 33) % 400));
    }
    while (deqs_inflight < static_cast<int>(std::min<int64_t>(window, want)))
      push_deq();
    if (!sendbuf.empty()) {
      if (!net::write_all(fd.get(), sendbuf)) {
        out->ok = false;
        return;
      }
      sendbuf.clear();
    }
    if (outstanding.empty()) continue;  // nothing owed; refill rebuilds
    ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n <= 0) {
      out->ok = false;
      return;
    }
    dec.feed(buf, static_cast<size_t>(n));
    bool hit = false, empty = false;
    while (dec.next(resp) == net::DecodeStatus::ok) {
      if (outstanding.empty()) {
        out->ok = false;
        return;
      }
      Sent s = outstanding.front();
      outstanding.pop_front();
      switch (resp.op) {
        case net::Opcode::deq_ok: {
          --deqs_inflight;
          hit = true;
          out->deq_rtt_us.push_back(
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - s.t)
                  .count());
          uint64_t v = 0;
          if (!net::decode_value(resp.payload, v)) {
            out->ok = false;
            return;
          }
          if (static_cast<uint32_t>(v >> 32) == topic)
            ++out->delivered;
          else
            stash.push_back(v);  // not ours: held, requeued after jitter
          break;
        }
        case net::Opcode::deq_empty:
          --deqs_inflight;
          empty = true;
          break;
        case net::Opcode::enq_ok:
          break;
        default:
          out->ok = false;
          return;
      }
    }
    // An all-empty batch means the missing items are stashed or circulating
    // through other consumers: dump the whole stash (progress guarantee —
    // everyone holding back with an empty queue would deadlock). The
    // requeues must travel in their OWN write: bundled with the next DEQ
    // burst they would be one servicer batch and this consumer would
    // atomically re-pop its own requeues before anyone else could
    // interleave. A randomized escalating sleep after the flush gives the
    // items' owners a window to win the race for them.
    if (empty && !hit) {
      flush_stash();
      if (!sendbuf.empty()) {
        if (!net::write_all(fd.get(), sendbuf)) {
          out->ok = false;
          return;
        }
        sendbuf.clear();
      }
      backoff_us = std::min(backoff_us == 0 ? 50 : backoff_us * 2, 2000);
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      int sleep_us = backoff_us +
                     static_cast<int>((rng >> 33) %
                                      static_cast<uint64_t>(backoff_us));
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    } else if (hit) {
      backoff_us = 0;
    }
  }
  out->t_end = std::chrono::steady_clock::now();
}

api::Report run_shards(const api::RunOptions& opts) {
  api::Report r = api::make_report("broker_shards");
  const int clients = 8;
  const int window = 32;
  const int64_t per_topic = std::max<int64_t>(1, opts.ops_or(2'000));
  const std::string backing = "ubq";
  const std::vector<int> shard_counts = {1, 2, 4, 8};
  r.preamble = {
      "E14c: shard-count scaling at fixed " + std::to_string(clients) +
          " topic consumers, backing " + backing,
      "      each client consumes " + std::to_string(per_topic) +
          " items of ITS topic; foreign items popped off a shared shard "
          "are requeued (no selective receive)"};

  auto& sec = r.section("E14c");
  sec.cols({"shards", "keys hit", "delivered/s", "wire msgs/s",
            "wire/delivered", "deq p50 us", "deq p99 us"});
  double t1 = 0, t8 = 0;
  for (int s : shard_counts) {
    uint32_t kb = pick_key_base(clients, s);
    broker::BrokerConfig bcfg;
    bcfg.shards = s;
    bcfg.groups = groups_for(s);
    bcfg.backing = backing;
    bcfg.uds_path = temp_uds_path();
    // At S=1 every frame (incl. ~clients-fold requeue churn) lands on one
    // shard; size generously for fixed-segment backings.
    bcfg.expected_ops = 4 * clients * clients * per_topic + 4096;
    broker::Broker b(bcfg);
    b.start();

    std::vector<TopicStats> st(static_cast<size_t>(clients));
    std::atomic<int> barrier{clients};
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
      threads.emplace_back(topic_consumer, bcfg.uds_path, kb,
                           static_cast<uint32_t>(c), per_topic, window,
                           &barrier, &st[static_cast<size_t>(c)]);
    // The timed region starts when the last prefill finishes (barrier hits
    // zero) and ends when the slowest consumer has its target.
    while (barrier.load(std::memory_order_acquire) > 0)
      std::this_thread::yield();
    auto t_start = std::chrono::steady_clock::now();
    for (std::thread& t : threads) t.join();
    b.stop();

    bool all_ok = true;
    int64_t delivered = 0, wire = 0;
    std::vector<double> rtt;
    auto t_end = t_start;
    for (const TopicStats& ts : st) {
      all_ok = all_ok && ts.ok;
      delivered += ts.delivered;
      wire += ts.wire;
      rtt.insert(rtt.end(), ts.deq_rtt_us.begin(), ts.deq_rtt_us.end());
      if (ts.t_end > t_end) t_end = ts.t_end;
    }
    double secs = std::chrono::duration<double>(t_end - t_start).count();
    double dps = (all_ok && secs > 0) ? delivered / secs : 0;
    double wps = (all_ok && secs > 0) ? wire / secs : 0;
    if (s == 1) t1 = dps;
    if (s == 8) t8 = dps;
    sec.row(s, distinct_shards(kb, clients, s), api::cell(dps, 0),
            api::cell(wps, 0),
            api::cell(delivered > 0 ? double(wire) / delivered : 0, 2),
            api::cell(stats::percentile(rtt, 50), 1),
            api::cell(stats::percentile(rtt, 99), 1));
    sec.metric("delivered_per_s_s" + std::to_string(s), dps);
  }
  if (t1 > 0) sec.metric("speedup_1_to_8", t8 / t1);
  sec.note("  gate: speedup_1_to_8 >= 2.0 — with all topics multiplexed");
  sec.note("  into one shard a consumer mostly pops foreign items and pays");
  sec.note("  requeue churn (wire/delivered ~ topics-per-shard * 2); a");
  sec.note("  shard per topic makes every DEQ a delivery. This is the");
  sec.note("  selective-consumption win sharding exists for, and it holds");
  sec.note("  on a single core (plus servicer parallelism on multicore).");
  return r;
}

const api::ExperimentRegistrar reg_a{
    {"broker_clients", "e14a",
     "broker msgs/s + RTT percentiles vs client count over UDS (real "
     "sockets)",
     14, run_clients}};
const api::ExperimentRegistrar reg_b{
    {"broker_transport", "e14b",
     "UDS vs loopback-TCP transport ablation at fixed clients", 14,
     run_transport}};
const api::ExperimentRegistrar reg_c{
    {"broker_shards", "e14c",
     "shard-count scaling at fixed clients (topic-isolation goodput)", 14,
     run_shards}};

}  // namespace
