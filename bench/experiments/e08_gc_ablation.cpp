// E8 — design-choice ablation: the GC period G trades live space against
// per-operation time. The paper picks G = p^2 ceil(log2 p) so a GC phase's
// O(p^2 log p log(p+q)) cost amortizes to O(log p log(p+q)) per op.
//
// Harness (real platform, wall clock): 2 threads run enqueue+dequeue pairs
// with G swept from very aggressive to disabled. Expected shape: live
// blocks grow with G (unbounded when disabled); ns/op has a mild sweet
// spot — tiny G pays frequent GC phases, huge G pays deeper RBTs.
#include <chrono>

#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "core/bounded_queue.hpp"

namespace {

using namespace wfq;

struct Result {
  double ns_per_op;
  size_t live_blocks;
};

Result run_one(int64_t gc_period, uint64_t pairs) {
  core::BoundedQueue<uint64_t> q(2, gc_period);
  auto start = std::chrono::steady_clock::now();
  api::run_gated_pairs(q, pairs, /*target_q=*/32);
  auto elapsed = std::chrono::steady_clock::now() - start;
  double ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      static_cast<double>(2 * pairs);
  return {ns, q.debug_live_blocks()};
}

api::Report run(const api::RunOptions& opts) {
  api::Report r = api::make_report("gc_ablation");
  const uint64_t pairs = static_cast<uint64_t>(opts.ops_or(20'000));
  r.preamble = {"E8: GC-period ablation (bounded queue, 2 threads, " +
                    std::to_string(pairs) + " enqueue+dequeue pairs)",
                "    paper default for p=2 is G = p^2 ceil(log2 p) = 4"};
  auto& sec = r.section("E8");
  sec.cols({"G", "ns/op", "live blocks at end"});
  struct Cfg {
    const char* label;
    int64_t g;
  };
  for (Cfg cfg : {Cfg{"4 (paper p^2 log p)", 4}, Cfg{"16", 16}, Cfg{"64", 64},
                  Cfg{"256", 256}, Cfg{"1024", 1024}, Cfg{"disabled", -1}}) {
    Result res = run_one(cfg.g, pairs);
    sec.row(cfg.label, api::cell(res.ns_per_op, 0),
            static_cast<uint64_t>(res.live_blocks));
  }
  sec.note("  expectation: live blocks grow ~ G (unbounded when GC is");
  sec.note("  disabled: ~2*ops*(log p+1) blocks); ns/op worsens at the");
  sec.note("  aggressive end (GC every 4 blocks) and flattens once GC");
  sec.note("  is rare.");
  return r;
}

const api::ExperimentRegistrar reg{
    {"gc_ablation", "e8", "GC-period space/time trade-off (Section 6)", 8,
     run}};

}  // namespace
