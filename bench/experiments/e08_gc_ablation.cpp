// E8 — design-choice ablation: the GC period G trades live space against
// per-operation time. The paper picks G = p^2 ceil(log2 p) so a GC phase's
// O(p^2 log p log(p+q)) cost amortizes to O(log p log(p+q)) per op.
//
// Harness (real platform, wall clock): 2 threads run enqueue+dequeue pairs
// with G swept from very aggressive to disabled, each queue built through
// the registry factory's parameterized key (bounded:g=<G>; g=-1 disables
// collection entirely). Expected shape: live blocks grow monotonically
// with G and are unbounded when disabled; ns/op has a mild sweet spot —
// tiny G pays frequent GC phases, huge G pays deeper doubling searches.
#include <chrono>
#include <string>

#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "api/queue_registry.hpp"

namespace {

using namespace wfq;

struct Result {
  double ns_per_op;
  api::SpaceStats space;
};

api::AnyQueue<uint64_t> build(int64_t gc_period, uint64_t pairs) {
  return api::make_queue<uint64_t>(
      "bounded:g=" + std::to_string(gc_period),
      api::sized_config(2, api::Backend::real,
                        static_cast<int64_t>(pairs)));
}

Result run_one(int64_t gc_period, uint64_t pairs) {
  Result res;
  {  // Wall clock: the contended two-thread producer/consumer run.
    api::AnyQueue<uint64_t> q = build(gc_period, pairs);
    auto start = std::chrono::steady_clock::now();
    api::run_gated_pairs(q, pairs, /*target_q=*/32);
    auto elapsed = std::chrono::steady_clock::now() - start;
    res.ns_per_op =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()) /
        static_cast<double>(2 * pairs);
  }
  {  // Space: a deterministic single-thread replay of the same op count
    // (the raced run ends wherever the gating lands, so its final block
    // count wobbles by ~a GC window between invocations), sampled at the
    // middle of a GC window — the steady state, where half a window of
    // appends is awaiting the next collection. Sampling exactly on a
    // boundary instead would show every G the same post-collection
    // minimum and hide the G-proportional term of Theorem 31's bound.
    api::AnyQueue<uint64_t> q = build(gc_period, pairs);
    q.bind_thread(0);
    uint64_t total = 32 + 2 * pairs;
    if (gc_period > 0) {
      uint64_t g = static_cast<uint64_t>(gc_period);
      total = ((total + g - 1) / g) * g + g / 2;
    }
    uint64_t ops = 0, next = 0;
    for (; ops < 32; ++ops) q.enqueue(next++);  // hold the queue at ~32
    for (; ops < total; ++ops) {
      if (ops % 2 == 0) {
        q.enqueue(next++);
      } else {
        (void)q.dequeue();
      }
    }
    res.space = q.space_stats();
  }
  return res;
}

api::Report run(const api::RunOptions& opts) {
  api::Report r = api::make_report("gc_ablation");
  const uint64_t pairs = static_cast<uint64_t>(opts.ops_or(20'000));
  r.preamble = {"E8: GC-period ablation (bounded queue, 2 threads, " +
                    std::to_string(pairs) + " enqueue+dequeue pairs,",
                "    queues built as bounded:g=<G> through the registry)",
                "    paper default for p=2 is G = p^2 ceil(log2 p) = 4"};
  auto& sec = r.section("E8");
  sec.cols({"G", "ns/op", "live blocks at end", "EBR backlog"});
  struct Cfg {
    const char* label;
    int64_t g;
  };
  for (Cfg cfg : {Cfg{"4 (paper p^2 log p)", 4}, Cfg{"16", 16}, Cfg{"64", 64},
                  Cfg{"256", 256}, Cfg{"1024", 1024}, Cfg{"disabled", -1}}) {
    Result res = run_one(cfg.g, pairs);
    sec.row(cfg.label, api::cell(res.ns_per_op, 0),
            res.space.live_blocks, res.space.ebr_retired);
    sec.metric("live_g" + std::to_string(cfg.g),
               static_cast<double>(res.space.live_blocks));
  }
  sec.note("  expectation: live blocks grow monotonically with G and are");
  sec.note("  unbounded when GC is disabled (~2*ops*(log p+1) blocks);");
  sec.note("  ns/op worsens at the aggressive end (GC every 4 ops) and");
  sec.note("  flattens once GC is rare.");
  return r;
}

const api::ExperimentRegistrar reg{
    {"gc_ablation", "e8", "GC-period space/time trade-off (Section 6)", 8,
     run}};

}  // namespace
