// E6 — Theorem 31: the bounded-space queue keeps reachable memory at
// O(p*q_max + p^3 log p) words, while the unbounded version's block count
// grows linearly with the number of operations ever performed.
//
// Harness (real platform, 2 threads): run N enqueue+dequeue pairs with the
// queue size held ~q; sample live block counts as N grows. Expected shape:
// unbounded proportional to N; bounded plateaus at a level that scales with
// q and G, not N. Queues are built through the registry factory, so
// --queues can swap in any key (e.g. bounded:g=4,bounded:g=-1); --gc G
// rebuilds the default bounded key as bounded:g=<G>; --ops N sets the
// largest pair count of the swept grid {N/16, N/4, N}.
#include <algorithm>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "api/queue_registry.hpp"

namespace {

using namespace wfq;

api::Report run(const api::RunOptions& opts) {
  api::Report r = api::make_report("space");
  const int64_t gc = opts.gc_or(64);
  // --gc 0 means the paper default, which the registry spells "bounded"
  // (the parameterized key deliberately rejects g=0).
  const std::string bounded_key =
      gc == 0 ? "bounded" : "bounded:g=" + std::to_string(gc);
  const uint64_t max_pairs = static_cast<uint64_t>(opts.ops_or(32'000));
  const std::vector<std::string> queues =
      api::queue_keys_or(opts.queues, {"ubq", bounded_key});
  r.preamble = {
      "E6: live blocks vs operations performed (Theorem 31)",
      "    2 threads, queue size held ~q; pair grid {N/16, N/4, N} with",
      "    N=" + std::to_string(max_pairs) + " (--ops N); bounded queue is",
      "    " + bounded_key + " (--gc; default G=64 — the paper's p^2 log p",
      "    scaled down so the plateau is visible in a short run)"};
  auto& sec = r.section("E6");
  sec.cols({"queue", "ops (pairs)", "q", "live blocks", "EBR backlog",
            "blocks/pair"});
  const std::vector<uint64_t> grid = {std::max<uint64_t>(1, max_pairs / 16),
                                      std::max<uint64_t>(1, max_pairs / 4),
                                      max_pairs};
  for (const std::string& qname : queues) {
    for (uint64_t q_target : {16u, 256u}) {
      double first = 0, last = 0;
      bool known = true;
      for (uint64_t pairs : grid) {
        api::AnyQueue<uint64_t> q = api::make_queue<uint64_t>(
            qname, api::sized_config(2, api::Backend::real,
                                     static_cast<int64_t>(pairs)));
        api::run_gated_pairs(q, pairs, q_target);
        api::SpaceStats st = q.space_stats();
        sec.row(qname, pairs, q_target,
                st.known ? api::cell(st.live_blocks) : api::cell("-"),
                st.known ? api::cell(st.ebr_retired) : api::cell("-"),
                st.known ? api::cell(static_cast<double>(st.live_blocks) /
                                         static_cast<double>(pairs),
                                     3)
                         : api::cell("-"));
        known = known && st.known;
        if (pairs == grid.front()) first = static_cast<double>(st.live_blocks);
        if (pairs == grid.back()) last = static_cast<double>(st.live_blocks);
      }
      // Plateau headline: final/initial live blocks over a 16x op growth.
      // ~1 for the bounded queue (Theorem 31), ~16 for the unbounded one.
      // Queues with no space surface get no metric — a 0 would read as a
      // perfect plateau in the archived BENCH_space.json.
      if (known)
        sec.metric("growth_" + qname + "_q" + std::to_string(q_target),
                   first > 0 ? last / first : 0);
    }
  }
  sec.note("  paper expectation: unbounded grows ~ 2*(log p + 1)*ops;");
  sec.note("  bounded stays flat as ops grow 16x (the growth_* metrics:");
  sec.note("  ~16 unbounded, ~1 bounded; plateau scales with q and G, not");
  sec.note("  ops). EBR backlog is transient garbage, also bounded.");
  return r;
}

const api::ExperimentRegistrar reg{
    {"space", "e6",
     "live blocks vs operations: unbounded vs bounded queue (Theorem 31)",
     6, run}};

}  // namespace
