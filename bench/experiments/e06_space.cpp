// E6 — Theorem 31: the bounded-space queue keeps reachable memory at
// O(p*q_max + p^3 log p) words, while the unbounded version's block count
// grows linearly with the number of operations ever performed.
//
// Harness (real platform, 2 threads): run N enqueue+dequeue pairs with the
// queue size held ~q; sample live block counts as N grows. Expected shape:
// unbounded proportional to N; bounded plateaus at a level that scales with
// q, not N. (The bounded queue is still the forwarding stub, so its
// numbers track the unbounded queue's until its tentpole lands.)
#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "core/bounded_queue.hpp"
#include "core/unbounded_queue.hpp"

namespace {

using namespace wfq;

api::Report run(const api::RunOptions& opts) {
  api::Report r = api::make_report("space");
  r.preamble = {"E6: live blocks vs operations performed (Theorem 31)",
                "    2 threads, queue size held ~q; GC period G=64 (paper",
                "    default is p^2 log p; scaled down so the plateau is",
                "    visible in a short run)"};
  auto& sec = r.section("E6");
  sec.cols({"ops (pairs)", "q", "unbounded blocks", "bounded live blocks",
            "bounded EBR backlog"});
  // The pair count IS the sweep variable (growth vs ops is the claim), so
  // --ops does not apply here; the grid stays fixed.
  (void)opts;
  for (uint64_t q_target : {16u, 256u}) {
    for (uint64_t pairs : {2'000u, 8'000u, 32'000u}) {
      core::UnboundedQueue<uint64_t> uq(2);
      api::run_gated_pairs(uq, pairs, q_target);
      core::BoundedQueue<uint64_t> bq(2, /*gc_period=*/64);
      api::run_gated_pairs(bq, pairs, q_target);
      sec.row(pairs, q_target,
              static_cast<uint64_t>(uq.debug_total_blocks()),
              static_cast<uint64_t>(bq.debug_live_blocks()),
              bq.debug_ebr().retired_count());
    }
  }
  sec.note("  paper expectation: unbounded grows ~ 2*(log p + 1)*ops;");
  sec.note("  bounded stays flat as ops grow (plateau scales with q and");
  sec.note("  G, not with ops). EBR backlog is transient garbage, also");
  sec.note("  bounded.");
  return r;
}

const api::ExperimentRegistrar reg{
    {"space", "e6",
     "live blocks vs operations: unbounded vs bounded queue (Theorem 31)",
     6, run}};

}  // namespace
