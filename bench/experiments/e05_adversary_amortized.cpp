// E5 — the headline comparison (Section 1): amortized shared-memory steps
// per operation in worst-case executions, wait-free queue vs the wait-free
// Kogan-Petrank predecessor vs the SimQueue combining construction vs
// MS-queue vs FAA-array queue.
//
// E5a (the classic table): p processes alternate enqueue/dequeue in
// lock-step under the round-robin adversary — the canonical CAS-retry
// schedule for the MS-queue. Expected: baselines grow ~ p, ours polylog.
// The FAA queue stays flat HERE because round-robin lock-step is not its
// worst case…
//
// E5b (targeted adversary, ROADMAP item): …its Omega(p) executions need a
// schedule that races dequeuers past stalled enqueuers so every claimed
// cell must be poisoned. The registered "anti-faa" policy builds exactly
// that schedule (see sim/adversary.hpp): enqueuer pids < p/2 are stalled
// one shared step per round (between FAA claim and publish CAS) while one
// dequeuer races ahead. Expected: FAA steps/op flat under round-robin but
// best-fit p under anti-faa — the worst case the paper proves exists.
//
// E5c (combining amortization, PR 6): the two faithful helping baselines
// side by side, measured on the processes being HELPED. Under anti-faa the
// stalled pids get one shared step per round while a victim bursts; a
// stalled simq announcer completes in O(1) of its OWN steps (announce, one
// re-read) because the bursting combiner's Theta(p) round retires every
// announced op at once — but a stalled KP process still pays its own
// maxPhase scan and help() walk, Theta(p) own steps, before anyone can
// help it. Combining amortizes exactly where phase-ordered helping cannot,
// and only a per-role step split makes that visible: the OVERALL mean stays
// ~ p for both (the combiners' scans dominate it by construction).
#include <string>

#include "api/experiment.hpp"
#include "api/harness.hpp"
#include "api/queue_registry.hpp"

namespace {

using namespace wfq;

double amortized_steps(api::AnyQueue<uint64_t>& q, int p, int64_t ops,
                       const std::string& adversary) {
  api::OpSamples s =
      api::measure_ops(q, p, ops, api::OpKind::alternate, adversary);
  return stats::summarize(s.steps).mean;
}

/// E5b workload: enqueuer pids [0, p/2) each perform `ops` enqueues;
/// dequeuer pids [p/2, p) each perform 2*ops dequeue attempts. Returns
/// (mean, max) steps per dequeue operation.
stats::Summary role_split_dequeue_steps(api::AnyQueue<uint64_t>& q, int p,
                                        int64_t ops,
                                        const std::string& adversary) {
  int enqueuers = p / 2;
  api::OpSamples s =
      api::run_sim(p, adversary, [&](int pid, api::OpSamples& out) {
        q.bind_thread(pid);
        if (pid < enqueuers) {
          for (int64_t k = 0; k < ops; ++k)
            q.enqueue((static_cast<uint64_t>(pid) << 32) |
                      static_cast<uint64_t>(k));
        } else {
          for (int64_t k = 0; k < 2 * ops; ++k) {
            platform::StepScope scope;
            (void)q.dequeue();
            out.add(scope.delta());
          }
        }
      });
  return stats::summarize(s.steps);
}

/// E5c workload: stalled announcer pids [0, p/2) each perform `ops`
/// measured enqueues; pids [p/2, p) each perform 2*ops unmeasured dequeue
/// attempts (under anti-faa they are the bursting combiners/helpers).
/// Returns the announcers' own-step summary per enqueue.
stats::Summary role_split_enqueue_steps(api::AnyQueue<uint64_t>& q, int p,
                                        int64_t ops,
                                        const std::string& adversary) {
  int enqueuers = p / 2;
  api::OpSamples s =
      api::run_sim(p, adversary, [&](int pid, api::OpSamples& out) {
        q.bind_thread(pid);
        if (pid < enqueuers) {
          for (int64_t k = 0; k < ops; ++k) {
            platform::StepScope scope;
            q.enqueue((static_cast<uint64_t>(pid) << 32) |
                      static_cast<uint64_t>(k));
            out.add(scope.delta());
          }
        } else {
          for (int64_t k = 0; k < 2 * ops; ++k) (void)q.dequeue();
        }
      });
  return stats::summarize(s.steps);
}

api::Report run(const api::RunOptions& opts) {
  api::Report r =
      api::make_report("adversary_amortized");
  const int64_t ops = opts.ops_or(24);
  const std::string adversary = opts.adversary_or("round-robin");
  const auto procs = opts.procs_or({2, 4, 8, 16, 32, 64});
  const auto queues =
      api::queue_keys_or(opts.queues, {"ubq", "kp", "simq", "msq", "faaq"});
  r.preamble = {"E5: amortized steps/op under the " + adversary +
                    " adversary",
                "    50/50 enqueue-dequeue mix, K=" + std::to_string(ops) +
                    " ops/process"};

  {
    auto& sec = r.section("E5a");
    for (const std::string& qname : queues) {
      std::string warn = api::step_counted_warning(
          qname, api::queue_info(qname).step_counted);
      if (!warn.empty()) sec.pre(warn);
    }
    std::vector<std::string> cols = {"p"};
    for (const std::string& qname : queues) cols.push_back(qname);
    for (size_t qi = 1; qi < queues.size(); ++qi)
      cols.push_back(queues[qi] + "/" + queues[0]);
    sec.cols(cols);
    std::vector<double> ps;
    std::vector<std::vector<double>> series(queues.size());
    for (int p : procs) {
      std::vector<api::Cell> row = {api::cell(p)};
      std::vector<double> vals;
      for (size_t qi = 0; qi < queues.size(); ++qi) {
        api::AnyQueue<uint64_t> q = api::make_queue<uint64_t>(
            queues[qi], api::sized_config(p, api::Backend::sim, ops));
        double v = amortized_steps(q, p, ops, adversary);
        row.push_back(api::cell(v));
        vals.push_back(v);
        series[qi].push_back(v);
      }
      for (size_t qi = 1; qi < vals.size(); ++qi)
        row.push_back(api::cell_ratio(vals[qi], vals[0]));
      sec.rows.push_back(std::move(row));
      ps.push_back(p);
    }
    for (size_t qi = 0; qi < queues.size(); ++qi)
      sec.shape(queues[qi], ps, series[qi]);
    sec.note(
        "  paper expectation: baselines grow ~ p, ours polylog; the");
    sec.note(
        "  ratio columns increase with p (crossover where a ratio passes "
        "1).");
    sec.note(
        "  At small p the baselines' smaller constants win, exactly as");
    sec.note("  Section 7 concedes for the uncontended case.");
  }

  // E5b runs with its two fixed adversaries (the comparison IS the point),
  // so it is included whenever the resolved adversary is the default
  // round-robin — passing "--adversary round-robin" explicitly must not
  // change the emitted document. A non-default adversary skips it loudly.
  if (adversary != "round-robin" && adversary != "rr") {
    r.section("E5b").note(
        "  (E5b skipped: it compares its own fixed adversaries, round-robin"
        " vs anti-faa; drop --adversary " + adversary + " to include it)");
  } else {
    auto& sec = r.section("E5b");
    sec.pre("");
    sec.pre("E5b: FAA-queue worst case needs the targeted adversary "
            "(ROADMAP):");
    sec.pre("     steps per dequeue op, round-robin vs anti-faa "
            "(enqueuers");
    sec.pre("     stalled between slot claim and publish; p/2 each role)");
    sec.pre("");
    sec.cols({"p", "rr mean", "rr max", "anti-faa mean", "anti-faa max",
              "anti-faa max / p"});
    std::vector<double> ps, maxima;
    for (int p : procs) {
      if (p < 4) continue;  // needs at least 2 enqueuers + 2 dequeuers
      // Dequeuers run 2*ops attempts each and anti-faa poisoning forces
      // extra claims; sized_config's margin covers both.
      auto mk = [&] {
        return api::make_queue<uint64_t>(
            "faaq", api::sized_config(p, api::Backend::sim, 2 * ops));
      };
      api::AnyQueue<uint64_t> q_rr = mk();
      auto rr = role_split_dequeue_steps(q_rr, p, ops, "round-robin");
      api::AnyQueue<uint64_t> q_af = mk();
      auto af = role_split_dequeue_steps(q_af, p, ops, "anti-faa");
      sec.row(p, api::cell(rr.mean), api::cell(rr.max, 0),
              api::cell(af.mean), api::cell(af.max, 0),
              api::cell(af.max / p));
      ps.push_back(p);
      maxima.push_back(af.max);
    }
    // Only the max gets a shape fit: wait-freedom's per-op bound is the
    // claim under attack, and most anti-faa dequeues are cheap nulls, so
    // the mean stays flat by construction. Below 3 swept points fit_shape
    // reports "indeterminate" on its own; skip the line entirely when the
    // p<4 filter left nothing.
    if (!ps.empty())
      sec.shape("faaq anti-faa deq max", ps, maxima);
    else
      sec.note("  (shape fit skipped: no process counts >= 4 in the sweep)");
    sec.note(
        "  expectation: round-robin columns stay flat; anti-faa max grows");
    sec.note(
        "  ~ p (each dequeue poisons every stalled claim ahead of it) —");
    sec.note("  the Omega(p) worst case of fetch&add designs.");
  }

  // E5c compares its two fixed adversaries like E5b, so the same gate
  // applies: included under the default round-robin, skipped loudly (with
  // the reason) when a non-default adversary was requested.
  if (adversary != "round-robin" && adversary != "rr") {
    r.section("E5c").note(
        "  (E5c skipped: it compares its own fixed adversaries, round-robin"
        " vs anti-faa; drop --adversary " + adversary + " to include it)");
  } else {
    auto& sec = r.section("E5c");
    sec.pre("");
    sec.pre("E5c: helping-style amortization, phase-ordered (kp) vs "
            "combining (simq):");
    sec.pre("     OWN steps per enqueue of the stalled announcer pids "
            "[0, p/2)");
    sec.pre("     (one shared step per round under anti-faa; the other half");
    sec.pre("     bursts and helps/combines), round-robin for contrast");
    sec.pre("");
    sec.cols({"p", "kp rr", "kp anti-faa", "simq rr", "simq anti-faa",
              "simq/kp anti-faa"});
    std::vector<double> ps, kp_af, simq_af;
    for (int p : procs) {
      if (p < 4) continue;  // anti-faa needs both roles populated
      auto measure = [&](const char* key, const std::string& adv) {
        api::AnyQueue<uint64_t> q = api::make_queue<uint64_t>(
            key, api::sized_config(p, api::Backend::sim, 2 * ops));
        return role_split_enqueue_steps(q, p, ops, adv).mean;
      };
      double v_kp_rr = measure("kp", "round-robin");
      double v_kp_af = measure("kp", "anti-faa");
      double v_sq_rr = measure("simq", "round-robin");
      double v_sq_af = measure("simq", "anti-faa");
      sec.row(p, api::cell(v_kp_rr), api::cell(v_kp_af), api::cell(v_sq_rr),
              api::cell(v_sq_af), api::cell_ratio(v_sq_af, v_kp_af));
      ps.push_back(p);
      kp_af.push_back(v_kp_af);
      simq_af.push_back(v_sq_af);
    }
    if (!ps.empty()) {
      sec.shape("kp anti-faa enq", ps, kp_af);
      sec.shape("simq anti-faa enq", ps, simq_af);
    } else {
      sec.note("  (shape fits skipped: no process counts >= 4 in the sweep)");
    }
    sec.note(
        "  expectation: kp anti-faa grows ~ p (a stalled process still pays");
    sec.note(
        "  its own maxPhase + help scans before anyone can help it); simq");
    sec.note(
        "  anti-faa stays flat or sub-linear — the announce is O(1) and the");
    sec.note(
        "  bursting combiner's round retires it, so stalled announcers ride");
    sec.note("  the victim's scan instead of paying their own.");
  }
  return r;
}

const api::ExperimentRegistrar reg{
    {"adversary_amortized", "e5",
     "amortized steps/op vs baselines under worst-case adversaries", 5,
     run}};

}  // namespace
