// E8 — design-choice ablation: the GC period G trades live space against
// per-operation time. The paper picks G = p²⌈log₂ p⌉ so a GC phase's
// O(p² log p log(p+q)) cost amortizes to O(log p log(p+q)) per op.
//
// Harness (real platform, wall clock): 2 threads run enqueue+dequeue pairs
// with G swept from very aggressive to disabled. Expected shape: live
// blocks grow with G (unbounded when disabled); ns/op has a mild sweet
// spot — tiny G pays frequent GC phases, huge G pays deeper RBTs.
#include <chrono>
#include <iostream>

#include "bench/common.hpp"
#include "core/bounded_queue.hpp"

namespace {

struct Result {
  double ns_per_op;
  size_t live_blocks;
};

Result run(int64_t gc_period, uint64_t pairs) {
  wfq::core::BoundedQueue<uint64_t> q(2, gc_period);
  auto start = std::chrono::steady_clock::now();
  wfq::benchutil::run_gated_pairs(q, pairs, /*target_q=*/32);
  auto elapsed = std::chrono::steady_clock::now() - start;
  double ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      static_cast<double>(2 * pairs);
  return {ns, q.debug_live_blocks()};
}

}  // namespace

int main() {
  std::cout << "E8: GC-period ablation (bounded queue, 2 threads, 20k "
               "enqueue+dequeue pairs)\n"
            << "    paper default for p=2 is G = p^2 ceil(log2 p) = 4\n\n";
  constexpr uint64_t kPairs = 20'000;
  wfq::stats::Table table({"G", "ns/op", "live blocks at end"});
  struct Cfg {
    const char* label;
    int64_t g;
  };
  for (Cfg cfg : {Cfg{"4 (paper p^2 log p)", 4}, Cfg{"16", 16}, Cfg{"64", 64},
                  Cfg{"256", 256}, Cfg{"1024", 1024},
                  Cfg{"disabled", -1}}) {
    Result r = run(cfg.g, kPairs);
    table.add_row({cfg.label, wfq::stats::fmt(r.ns_per_op, 0),
                   wfq::stats::fmt(static_cast<uint64_t>(r.live_blocks))});
  }
  table.print(std::cout);
  std::cout << "\n  expectation: live blocks grow ~ G (unbounded when GC is\n"
            << "  disabled: ~2*ops*(log p+1) blocks); ns/op worsens at the\n"
            << "  aggressive end (GC every 4 blocks) and flattens once GC\n"
            << "  is rare.\n";
  return 0;
}
