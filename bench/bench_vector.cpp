// E11 (extension) — Section 7's vector: append costs O(log p) steps (same
// propagation as an enqueue plus the position walk), get costs
// O(log² p + log n). Sweeps under the round-robin adversary, mirroring
// E2/E3 so the "easily adapt our routines" claim is checked quantitatively.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "core/wait_free_vector.hpp"
#include "platform/platform.hpp"

using wfq::benchutil::OpSamples;
using wfq::benchutil::run_round_robin;
using Vec = wfq::core::WaitFreeVector<uint64_t, wfq::platform::SimPlatform>;

int main() {
  std::cout << "E11: wait-free vector (Section 7 extension)\n\n";
  {
    std::cout << "E11a: append steps vs p (K=30 appends/process)\n";
    wfq::stats::Table table({"p", "steps/op mean", "steps/op max",
                             "max/log2(p)"});
    std::vector<double> ps, maxima;
    for (int p : {2, 4, 8, 16, 32, 64}) {
      Vec v(p);
      OpSamples s = run_round_robin(p, [&](int pid, OpSamples& out) {
        v.bind_thread(pid);
        for (int k = 0; k < 30; ++k) {
          wfq::platform::StepScope scope;
          (void)v.append((static_cast<uint64_t>(pid) << 32) |
                         static_cast<uint64_t>(k));
          out.add(scope.delta());
        }
      });
      auto sum = wfq::stats::summarize(s.steps);
      table.add_row({wfq::stats::fmt(p), wfq::stats::fmt(sum.mean),
                     wfq::stats::fmt(sum.max, 0),
                     wfq::stats::fmt(sum.max / std::log2(p))});
      ps.push_back(p);
      maxima.push_back(sum.max);
    }
    table.print(std::cout);
    wfq::benchutil::report_shape(std::cout, "vector append max", ps, maxima);
  }
  {
    std::cout << "\nE11b: get(i) steps vs length n (single process)\n";
    wfq::stats::Table table({"n", "get steps mean", "get steps max",
                             "max/log2(n)"});
    std::vector<double> ns, maxima;
    for (int64_t n : {64, 512, 4096, 32768}) {
      wfq::core::WaitFreeVector<uint64_t> v(1);
      for (int64_t i = 0; i < n; ++i) (void)v.append(static_cast<uint64_t>(i));
      std::vector<double> steps;
      for (int64_t i = 0; i < n; i += n / 64) {
        wfq::platform::StepScope scope;
        (void)v.get(i);
        steps.push_back(static_cast<double>(scope.delta().total()));
      }
      auto sum = wfq::stats::summarize(steps);
      table.add_row({wfq::stats::fmt(static_cast<int64_t>(n)),
                     wfq::stats::fmt(sum.mean), wfq::stats::fmt(sum.max, 0),
                     wfq::stats::fmt(sum.max / std::log2(static_cast<double>(n)))});
      ns.push_back(static_cast<double>(n));
      maxima.push_back(sum.max);
    }
    table.print(std::cout);
    std::vector<double> logn;
    for (double v2 : ns) logn.push_back(std::log2(v2));
    std::cout << "  R^2[get max ~ log n] = "
              << wfq::stats::fmt(wfq::stats::fit_r2(logn, maxima), 3)
              << "   R^2[~ n] = "
              << wfq::stats::fmt(wfq::stats::fit_r2(ns, maxima), 3) << "\n"
              << "  expectation: append ~ c*log p (like E2); get ~ log n.\n";
  }
  return 0;
}
