// Shared helpers for the experiment benches (see DESIGN.md per-experiment
// index). Each bench binary prints an aligned table of the series it
// regenerates plus the paper-expected shape, so `for b in build/bench/*; do
// $b; done` reproduces the whole evaluation.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "platform/step_counter.hpp"
#include "sim/scheduler.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace wfq::benchutil {

/// Per-operation shared-memory step samples gathered from one sim run.
struct OpSamples {
  std::vector<double> steps;         // total shared steps per op
  std::vector<double> cas_attempts;  // CAS attempts per op
  std::vector<double> cas_failures;  // failed CAS per op
  uint64_t rbt_touches = 0;          // bounded queue: RBT nodes touched

  void add(const platform::StepCounts& d) {
    steps.push_back(static_cast<double>(d.total()));
    cas_attempts.push_back(static_cast<double>(d.cas_attempts));
    cas_failures.push_back(static_cast<double>(d.cas_failures));
  }
  void merge(const OpSamples& o) {
    steps.insert(steps.end(), o.steps.begin(), o.steps.end());
    cas_attempts.insert(cas_attempts.end(), o.cas_attempts.begin(),
                        o.cas_attempts.end());
    cas_failures.insert(cas_failures.end(), o.cas_failures.begin(),
                        o.cas_failures.end());
    rbt_touches += o.rbt_touches;
  }
};

/// Runs `body(pid, samples_for_pid)` on p simulated processes under the
/// round-robin adversary and returns the merged per-op samples.
template <typename Body>
OpSamples run_round_robin(int procs, Body&& body,
                          uint64_t max_steps = 200'000'000) {
  std::vector<OpSamples> per_proc(static_cast<size_t>(procs));
  sim::Scheduler sched(std::make_unique<sim::RoundRobinPolicy>(), max_steps);
  std::vector<std::function<void()>> bodies;
  for (int pid = 0; pid < procs; ++pid) {
    bodies.emplace_back(
        [&, pid] { body(pid, per_proc[static_cast<size_t>(pid)]); });
  }
  sched.run(std::move(bodies));
  OpSamples all;
  for (auto& s : per_proc) all.merge(s);
  return all;
}

inline double log2d(double x) { return std::log2(x < 1 ? 1 : x); }

/// Prints the fit quality of y against three growth models of p and names
/// the best — used to report "who wins / what shape" per experiment.
inline void report_shape(std::ostream& os, const std::string& series,
                         const std::vector<double>& ps,
                         const std::vector<double>& ys) {
  std::vector<double> logp, log2p, linp;
  for (double p : ps) {
    logp.push_back(log2d(p));
    log2p.push_back(log2d(p) * log2d(p));
    linp.push_back(p);
  }
  double r_log = stats::fit_r2(logp, ys);
  double r_log2 = stats::fit_r2(log2p, ys);
  double r_lin = stats::fit_r2(linp, ys);
  // Linear fits explain superlinear data too; prefer the smallest model
  // within 2% of the best R^2.
  std::string best = "log p";
  double bestr = r_log;
  if (r_log2 > bestr + 0.02) {
    best = "log^2 p";
    bestr = r_log2;
  }
  if (r_lin > bestr + 0.02) {
    best = "p";
    bestr = r_lin;
  }
  os << "  shape(" << series << "): R^2[log p]=" << stats::fmt(r_log, 3)
     << "  R^2[log^2 p]=" << stats::fmt(r_log2, 3)
     << "  R^2[p]=" << stats::fmt(r_lin, 3) << "  -> best: " << best << "\n";
}

/// Real-platform producer/consumer harness: runs `pairs` enqueue+dequeue
/// pairs on two threads with the queue size held at ~target_q. The
/// consumer gates on the producer's progress so every dequeue is non-null
/// (a spinning consumer would add millions of null-dequeue operations) and
/// the producer is throttled so q_max stays at the target (Theorem 31's
/// space bound is in terms of q_max).
template <typename Queue>
void run_gated_pairs(Queue& q, uint64_t pairs, uint64_t target_q) {
  std::atomic<uint64_t> produced{0}, consumed{0};
  std::thread producer([&] {
    q.bind_thread(0);
    for (uint64_t i = 0; i < pairs + target_q; ++i) {
      while (i > consumed.load(std::memory_order_acquire) + target_q)
        std::this_thread::yield();
      q.enqueue(i);
      produced.store(i + 1, std::memory_order_release);
    }
  });
  std::thread consumer([&] {
    q.bind_thread(1);
    for (uint64_t got = 0; got < pairs; ++got) {
      while (produced.load(std::memory_order_acquire) <= got)
        std::this_thread::yield();
      while (!q.dequeue().has_value()) {
      }
      consumed.store(got + 1, std::memory_order_release);
    }
  });
  producer.join();
  consumer.join();
}

}  // namespace wfq::benchutil
