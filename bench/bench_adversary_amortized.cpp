// E5 — the headline comparison (Section 1): amortized shared-memory steps
// per operation in worst-case executions, wait-free queue vs MS-queue vs
// FAA-array queue, under the round-robin adversary.
//
// The Kogan-Petrank wait-free queue is the key comparator: it is the
// wait-free predecessor the paper improves on, and its O(p) phase scan +
// helping loop makes EVERY operation pay Theta(p) — even uncontended.
//
// Workload: p processes alternate enqueue/dequeue in lock-step, so all p
// hit the same hot word simultaneously — the canonical CAS-retry adversary
// for the MS-queue. Reported: total steps / total ops. Expected shape:
// MS-queue grows ~ p; the wait-free queue grows polylogarithmically,
// overtaking it around p = 64 — the paper's existence claim that
// sublinear-in-p queues are possible, not a constant-factor race. The
// FAA queue stays flat here: round-robin lock-step is NOT its worst-case
// adversary (its Omega(p) executions need a targeted schedule that races
// dequeuers past stalled enqueuers to poison slots), which matches the
// paper's observation that fetch&add designs are fast in practice yet
// still Omega(p) in the worst case.
#include <iostream>

#include "baselines/faa_queue.hpp"
#include "baselines/kp_queue.hpp"
#include "baselines/ms_queue.hpp"
#include "bench/common.hpp"
#include "core/unbounded_queue.hpp"
#include "platform/platform.hpp"

using wfq::benchutil::OpSamples;
using wfq::benchutil::run_round_robin;
using Sim = wfq::platform::SimPlatform;

template <typename Queue>
double amortized_steps(Queue& q, int p, int ops_per_proc) {
  OpSamples s = run_round_robin(p, [&](int pid, OpSamples& out) {
    q.bind_thread(pid);
    for (int k = 0; k < ops_per_proc; ++k) {
      wfq::platform::StepScope scope;
      if (k % 2 == 0)
        q.enqueue((static_cast<uint64_t>(pid) << 32) |
                  static_cast<uint64_t>(k));
      else
        (void)q.dequeue();
      out.add(scope.delta());
    }
  });
  auto sum = wfq::stats::summarize(s.steps);
  return sum.mean;
}

int main() {
  std::cout << "E5: amortized steps/op under the round-robin adversary\n"
            << "    50/50 enqueue-dequeue mix, K=24 ops/process\n\n";
  constexpr int kOps = 24;
  wfq::stats::Table table({"p", "wait-free queue", "KP-queue", "MS-queue",
                           "FAA-queue", "kp/wfq", "ms/wfq"});
  std::vector<double> ps, wfqv, kpv, msv, faav;
  for (int p : {2, 4, 8, 16, 32, 64}) {
    wfq::core::UnboundedQueue<uint64_t, Sim> wq(p);
    double w = amortized_steps(wq, p, kOps);
    wfq::baselines::KpQueue<uint64_t, Sim> kq(p);
    double kp = amortized_steps(kq, p, kOps);
    wfq::baselines::MsQueue<uint64_t, Sim> mq(p);
    double m = amortized_steps(mq, p, kOps);
    wfq::baselines::FaaArrayQueue<uint64_t, Sim> fq(p);
    double f = amortized_steps(fq, p, kOps);
    table.add_row({wfq::stats::fmt(p), wfq::stats::fmt(w), wfq::stats::fmt(kp),
                   wfq::stats::fmt(m), wfq::stats::fmt(f),
                   wfq::stats::fmt(kp / w), wfq::stats::fmt(m / w)});
    ps.push_back(p);
    wfqv.push_back(w);
    kpv.push_back(kp);
    msv.push_back(m);
    faav.push_back(f);
  }
  table.print(std::cout);
  std::cout << '\n';
  wfq::benchutil::report_shape(std::cout, "wait-free", ps, wfqv);
  wfq::benchutil::report_shape(std::cout, "KP-queue ", ps, kpv);
  wfq::benchutil::report_shape(std::cout, "MS-queue ", ps, msv);
  wfq::benchutil::report_shape(std::cout, "FAA-queue", ps, faav);
  std::cout
      << "  paper expectation: baselines grow ~ p, ours polylog; the\n"
      << "  ms/wfq and faa/wfq ratios increase with p (crossover where the\n"
      << "  ratio passes 1). At small p the baselines' smaller constants\n"
      << "  win, exactly as Section 7 concedes for the uncontended case.\n";
  return 0;
}
