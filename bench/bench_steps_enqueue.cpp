// E2 — Theorem 22 (enqueue): an Enqueue takes O(log p) shared-memory steps,
// worst case, even under the round-robin adversary.
//
// Harness: p simulated processes each perform K enqueues in lock-step;
// every operation's exact step count is recorded. The paper's claim is on
// the MAX per-op cost (wait-freedom gives a per-operation bound, not just
// amortized). Expected shape: max and mean grow ~ c·log2(p), flat in K.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "core/unbounded_queue.hpp"
#include "platform/platform.hpp"

using wfq::benchutil::OpSamples;
using wfq::benchutil::run_round_robin;
using Queue =
    wfq::core::UnboundedQueue<uint64_t, wfq::platform::SimPlatform>;

int main() {
  std::cout << "E2: enqueue step complexity vs p  (Theorem 22: O(log p))\n"
            << "    simulator, round-robin adversary, K=40 enqueues/process\n\n";
  constexpr int kOps = 40;
  wfq::stats::Table table({"p", "ceil(log2 p)", "ops", "steps/op mean",
                           "steps/op p99", "steps/op max", "max/log2(p)"});
  std::vector<double> ps, maxima;
  for (int p : {2, 4, 8, 16, 32, 64}) {
    Queue q(p);
    OpSamples samples = run_round_robin(p, [&](int pid, OpSamples& out) {
      q.bind_thread(pid);
      for (int k = 0; k < kOps; ++k) {
        wfq::platform::StepScope scope;
        q.enqueue((static_cast<uint64_t>(pid) << 32) |
                  static_cast<uint64_t>(k));
        out.add(scope.delta());
      }
    });
    auto s = wfq::stats::summarize(samples.steps);
    double logp = std::log2(p);
    table.add_row({wfq::stats::fmt(p),
                   wfq::stats::fmt(static_cast<int>(std::ceil(logp))),
                   wfq::stats::fmt(static_cast<uint64_t>(s.n)),
                   wfq::stats::fmt(s.mean), wfq::stats::fmt(s.p99),
                   wfq::stats::fmt(s.max, 0), wfq::stats::fmt(s.max / logp)});
    ps.push_back(p);
    maxima.push_back(s.max);
  }
  table.print(std::cout);
  std::cout << '\n';
  wfq::benchutil::report_shape(std::cout, "enqueue max steps", ps, maxima);
  std::cout << "  paper expectation: best fit log p or log^2 p, NOT p;\n"
            << "  max/log2(p) column roughly constant.\n";
  return 0;
}
