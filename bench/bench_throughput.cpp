// E9 — real-thread wall-clock throughput (google-benchmark): wait-free
// queue (both variants) vs MS-queue vs FAA-queue vs the lock-based
// baselines, on enqueue+dequeue pairs.
//
// Caveat recorded in EXPERIMENTS.md: this machine has ONE physical core,
// so multi-threaded rows measure the oversubscribed (preemption) regime,
// not cache-contention scaling. The paper itself predicts the shape seen
// here: "our queue has a higher cost than the MS-queue in the best case
// (when an operation runs by itself)" (Section 7) — the polylog advantage
// is a worst-case-adversary property (see E4/E5), not a single-thread win.
#include <benchmark/benchmark.h>

#include "baselines/faa_queue.hpp"
#include "baselines/kp_queue.hpp"
#include "baselines/lock_queues.hpp"
#include "baselines/ms_queue.hpp"
#include "core/bounded_queue.hpp"
#include "core/unbounded_queue.hpp"

namespace {

constexpr int kMaxThreads = 4;

// Takes the shared-pointer slot, not the queue: thread 0 installs the queue
// before its loop, and `for (auto _ : state)` only starts after ALL threads
// reach google-benchmark's start barrier — so reading the slot (and binding)
// inside the loop is ordered after setup. Reading or dereferencing it before
// the loop would race thread 0's new/delete across benchmark runs.
template <typename Queue>
void run_pairs(Queue*& slot, benchmark::State& state) {
  Queue* q = nullptr;
  uint64_t i = 0;
  for (auto _ : state) {
    if (q == nullptr) {
      q = slot;
      q->bind_thread(state.thread_index());
    }
    q->enqueue(i++);
    benchmark::DoNotOptimize(q->dequeue());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

void BM_WaitFreeUnbounded(benchmark::State& state) {
  static wfq::core::UnboundedQueue<uint64_t>* q = nullptr;
  if (state.thread_index() == 0)
    q = new wfq::core::UnboundedQueue<uint64_t>(kMaxThreads);
  run_pairs(q, state);
  if (state.thread_index() == 0) delete q;
}

void BM_WaitFreeBounded(benchmark::State& state) {
  static wfq::core::BoundedQueue<uint64_t>* q = nullptr;
  if (state.thread_index() == 0)
    q = new wfq::core::BoundedQueue<uint64_t>(kMaxThreads);
  run_pairs(q, state);
  if (state.thread_index() == 0) delete q;
}

void BM_KpQueue(benchmark::State& state) {
  static wfq::baselines::KpQueue<uint64_t>* q = nullptr;
  if (state.thread_index() == 0)
    q = new wfq::baselines::KpQueue<uint64_t>(kMaxThreads);
  run_pairs(q, state);
  if (state.thread_index() == 0) delete q;
}

void BM_MsQueue(benchmark::State& state) {
  static wfq::baselines::MsQueue<uint64_t>* q = nullptr;
  if (state.thread_index() == 0)
    q = new wfq::baselines::MsQueue<uint64_t>(kMaxThreads);
  run_pairs(q, state);
  if (state.thread_index() == 0) delete q;
}

void BM_FaaQueue(benchmark::State& state) {
  static wfq::baselines::FaaArrayQueue<uint64_t>* q = nullptr;
  if (state.thread_index() == 0)
    q = new wfq::baselines::FaaArrayQueue<uint64_t>(kMaxThreads);
  run_pairs(q, state);
  if (state.thread_index() == 0) delete q;
}

void BM_TwoLockQueue(benchmark::State& state) {
  static wfq::baselines::TwoLockQueue<uint64_t>* q = nullptr;
  if (state.thread_index() == 0)
    q = new wfq::baselines::TwoLockQueue<uint64_t>();
  run_pairs(q, state);
  if (state.thread_index() == 0) delete q;
}

void BM_MutexQueue(benchmark::State& state) {
  static wfq::baselines::MutexQueue<uint64_t>* q = nullptr;
  if (state.thread_index() == 0)
    q = new wfq::baselines::MutexQueue<uint64_t>();
  run_pairs(q, state);
  if (state.thread_index() == 0) delete q;
}

}  // namespace

BENCHMARK(BM_WaitFreeUnbounded)->Threads(1)->Threads(2)->Threads(4)->Iterations(20000)->UseRealTime();
BENCHMARK(BM_WaitFreeBounded)->Threads(1)->Threads(2)->Threads(4)->Iterations(20000)->UseRealTime();
BENCHMARK(BM_KpQueue)->Threads(1)->Threads(2)->Threads(4)->Iterations(20000)->UseRealTime();
BENCHMARK(BM_MsQueue)->Threads(1)->Threads(2)->Threads(4)->Iterations(20000)->UseRealTime();
BENCHMARK(BM_FaaQueue)->Threads(1)->Threads(2)->Threads(4)->Iterations(20000)->UseRealTime();
BENCHMARK(BM_TwoLockQueue)->Threads(1)->Threads(2)->Threads(4)->Iterations(20000)->UseRealTime();
BENCHMARK(BM_MutexQueue)->Threads(1)->Threads(2)->Threads(4)->Iterations(20000)->UseRealTime();

BENCHMARK_MAIN();
