// Unit tests for the path-copying persistent red-black tree:
//  (a) RB + BST invariants hold after randomized insert/erase sequences
//      (validate() checks red-red, black-height and key order);
//  (b) differential agreement with std::map on find/size across the run;
//  (c) persistence: version roots snapshotted mid-run read back exactly
//      their historical contents after arbitrary later mutations;
//  (d) step accounting: every operation's tls_rbt_touches delta equals its
//      visited + created node counts (last_op_stats).
#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "pbt/persistent_rbt.hpp"
#include "test_util.hpp"

namespace {

using Rbt = wfq::pbt::PersistentRbt<uint64_t>;

/// One operation with the touches == visited + created assertion wrapped
/// around it.
template <typename F>
auto counted(F&& f) {
  uint64_t t0 = wfq::pbt::tls_rbt_touches();
  auto out = f();
  uint64_t delta = wfq::pbt::tls_rbt_touches() - t0;
  const wfq::pbt::RbtOpStats& st = wfq::pbt::last_op_stats();
  CHECK_EQ(delta, st.visited + st.created);
  return out;
}

void randomized_against_map(uint64_t seed, int ops, uint64_t key_range) {
  std::mt19937_64 rng(seed);
  Rbt::Ptr root = Rbt::empty();
  std::map<uint64_t, uint64_t> model;

  // Snapshots for the persistence check: (version root, model copy).
  std::vector<std::pair<Rbt::Ptr, std::map<uint64_t, uint64_t>>> snaps;

  for (int k = 0; k < ops; ++k) {
    uint64_t key = rng() % key_range;
    uint64_t action = rng() % 100;
    if (action < 55) {
      uint64_t val = rng();
      root = counted([&] { return Rbt::insert(root, key, val); });
      model[key] = val;
    } else if (action < 85) {
      root = counted([&] { return Rbt::erase(root, key); });
      model.erase(key);
    } else {
      const uint64_t* got = counted([&] { return Rbt::find(root, key); });
      auto it = model.find(key);
      CHECK_EQ(got != nullptr, it != model.end());
      if (got != nullptr && it != model.end()) CHECK_EQ(*got, it->second);
    }
    try {
      Rbt::validate(root);
    } catch (const std::exception& ex) {
      CHECK(false);
      std::cerr << "validate failed after op " << k << ": " << ex.what()
                << "\n";
      return;
    }
    if (k % (ops / 8 + 1) == 0) snaps.emplace_back(root, model);
  }
  CHECK_EQ(Rbt::size(root), model.size());

  // Persistence: every snapshot still reads exactly its historical state,
  // key set and values, even though the tree mutated arbitrarily since.
  for (const auto& [snap_root, snap_model] : snaps) {
    CHECK_EQ(Rbt::size(snap_root), snap_model.size());
    size_t seen = 0;
    auto it = snap_model.begin();
    bool order_ok = true;
    Rbt::for_each(snap_root, [&](uint64_t key, uint64_t val) {
      if (it == snap_model.end() || it->first != key || it->second != val)
        order_ok = false;
      else
        ++it;
      ++seen;
    });
    CHECK(order_ok);
    CHECK_EQ(seen, snap_model.size());
    Rbt::validate(snap_root);
  }
}

void erase_absent_is_noop() {
  Rbt::Ptr root = Rbt::empty();
  for (uint64_t k = 0; k < 20; ++k) root = Rbt::insert(root, k * 2, k);
  Rbt::Ptr same = counted([&] { return Rbt::erase(root, 11); });  // absent
  CHECK(same == root);  // identical version, not a copy
  CHECK_EQ(wfq::pbt::last_op_stats().created, uint64_t{0});
  Rbt::validate(root);
}

void touches_are_logarithmic() {
  // Sanity on the step model the paper charges for GC: an operation on an
  // n-key tree touches O(log n) nodes, not O(n).
  Rbt::Ptr root = Rbt::empty();
  constexpr uint64_t kN = 4096;
  for (uint64_t k = 0; k < kN; ++k) root = Rbt::insert(root, k, k);
  uint64_t t0 = wfq::pbt::tls_rbt_touches();
  (void)Rbt::find(root, kN / 2);
  uint64_t find_cost = wfq::pbt::tls_rbt_touches() - t0;
  CHECK(find_cost >= 1 && find_cost <= 2 * 13);  // 2*lg(4096)+slack

  t0 = wfq::pbt::tls_rbt_touches();
  root = Rbt::insert(root, kN + 1, 0);
  uint64_t ins_cost = wfq::pbt::tls_rbt_touches() - t0;
  CHECK(ins_cost >= 1 && ins_cost <= 8 * 13);  // visit+copy per level
}

}  // namespace

int main() {
  randomized_against_map(/*seed=*/0x5eed1, /*ops=*/4000, /*key_range=*/256);
  randomized_against_map(/*seed=*/0x5eed2, /*ops=*/4000, /*key_range=*/32);
  randomized_against_map(/*seed=*/0x5eed3, /*ops=*/1500,
                         /*key_range=*/1'000'000);
  erase_absent_is_noop();
  touches_are_logarithmic();
  return wfq::test::exit_code();
}
