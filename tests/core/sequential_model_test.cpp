// Randomized differential test against std::queue: single-threaded histories
// (p=1, and p=8 with ops issued from rotating leaves) must match the
// sequential FIFO model exactly, including null dequeues. Exercises the whole
// dequeue path — IndexDequeue's superblock walk, the Lemma-20 doubling
// search, and the root-to-leaf descent — over long mixed histories.
#include <cstdint>
#include <optional>
#include <queue>
#include <random>

#include "core/unbounded_queue.hpp"
#include "test_util.hpp"

namespace {

void run_history(int procs, uint64_t seed, int ops, int enq_permille) {
  wfq::core::UnboundedQueue<uint64_t> q(procs);
  std::queue<uint64_t> model;
  std::mt19937_64 rng(seed);
  uint64_t next_val = 1;
  for (int k = 0; k < ops; ++k) {
    q.bind_thread(static_cast<int>(rng() % static_cast<uint64_t>(procs)));
    bool enq = static_cast<int>(rng() % 1000) < enq_permille;
    if (enq) {
      q.enqueue(next_val);
      model.push(next_val);
      ++next_val;
    } else {
      std::optional<uint64_t> got = q.dequeue();
      if (model.empty()) {
        CHECK(!got.has_value());
      } else {
        CHECK(got.has_value());
        if (got.has_value()) CHECK_EQ(*got, model.front());
        model.pop();
      }
    }
  }
  // Drain and compare the tails.
  while (!model.empty()) {
    std::optional<uint64_t> got = q.dequeue();
    CHECK(got.has_value());
    if (got.has_value()) CHECK_EQ(*got, model.front());
    model.pop();
  }
  CHECK(!q.dequeue().has_value());
}

}  // namespace

int main() {
  run_history(/*procs=*/1, /*seed=*/1, /*ops=*/6000, /*enq_permille=*/550);
  run_history(/*procs=*/1, /*seed=*/2, /*ops=*/3000, /*enq_permille=*/800);
  run_history(/*procs=*/8, /*seed=*/3, /*ops=*/6000, /*enq_permille=*/550);
  run_history(/*procs=*/8, /*seed=*/4, /*ops=*/3000, /*enq_permille=*/300);
  run_history(/*procs=*/5, /*seed=*/5, /*ops=*/4000, /*enq_permille=*/500);
  return wfq::test::exit_code();
}
