// GC correctness + space regression for the bounded queue:
//  (a) FIFO correctness across many GC phases: a long single-threaded
//      mixed run at a tiny G against std::queue (deterministic, so every
//      archive lookup path is replayed exactly);
//  (b) Theorem 31 regression: the bounded queue's live blocks plateau as
//      ops grow 4x while the unbounded queue's grow ~4x, and disabling GC
//      (g=-1) makes the bounded queue grow like the unbounded one;
//  (c) the machinery demonstrably ran: GC phases fired, blocks were
//      archived into the persistent RBT, and EBR actually freed memory.
#include <cstdint>
#include <optional>
#include <queue>
#include <random>

#include "core/bounded_queue.hpp"
#include "core/unbounded_queue.hpp"
#include "test_util.hpp"

namespace {

using wfq::core::BoundedQueue;
using wfq::core::UnboundedQueue;

void fifo_across_gc_phases() {
  constexpr int kProcs = 2;
  BoundedQueue<uint64_t> q(kProcs, /*gc_period=*/3);
  std::queue<uint64_t> model;
  std::mt19937_64 rng(0xfeed);
  uint64_t next = 1;
  for (int k = 0; k < 6000; ++k) {
    q.bind_thread(static_cast<int>(rng() % kProcs));
    // Drift the mix so the queue repeatedly grows to ~100s and drains to
    // empty, crossing GC retention through both regimes.
    bool enq = (rng() % 100) < ((k / 1500) % 2 == 0 ? 65 : 35);
    if (enq) {
      q.enqueue(next);
      model.push(next);
      ++next;
    } else {
      std::optional<uint64_t> got = q.dequeue();
      if (model.empty()) {
        CHECK(!got.has_value());
      } else {
        CHECK(got.has_value());
        if (got.has_value()) CHECK_EQ(*got, model.front());
        model.pop();
      }
    }
  }
  while (!model.empty()) {
    std::optional<uint64_t> got = q.dequeue();
    CHECK(got.has_value());
    if (got.has_value()) CHECK_EQ(*got, model.front());
    model.pop();
  }
  CHECK(!q.dequeue().has_value());
  CHECK(q.debug_gc_phases() > 0);
  CHECK(q.debug_ebr().freed_count() > 0);
}

/// Live blocks after `pairs` enqueue+dequeue pairs with the queue held at
/// ~q_hold, single-threaded (deterministic). Reads whichever block-count
/// surface the queue exposes (bounded: live, unbounded: total).
template <typename Queue>
size_t live_after(Queue& q, uint64_t pairs, uint64_t q_hold) {
  q.bind_thread(0);
  for (uint64_t i = 0; i < q_hold; ++i) q.enqueue(i);
  for (uint64_t i = 0; i < pairs; ++i) {
    q.enqueue(q_hold + i);
    (void)q.dequeue();
  }
  if constexpr (requires { q.debug_live_blocks(); }) {
    return q.debug_live_blocks();
  } else {
    return q.debug_total_blocks();
  }
}

void space_plateau() {
  constexpr uint64_t kHold = 32;
  constexpr uint64_t kSmall = 2000, kBig = 8000;  // 4x op growth

  UnboundedQueue<uint64_t> u_small(2), u_big(2);
  size_t us = live_after(u_small, kSmall, kHold);
  size_t ub = live_after(u_big, kBig, kHold);
  double unbounded_ratio =
      static_cast<double>(ub) / static_cast<double>(us);

  BoundedQueue<uint64_t> b_small(2, /*gc_period=*/8), b_big(2, 8);
  size_t bs = live_after(b_small, kSmall, kHold);
  size_t bb = live_after(b_big, kBig, kHold);
  double bounded_ratio = static_cast<double>(bb) / static_cast<double>(bs);

  // Theorem 31's shape: 4x the ops leaves the bounded queue's reachable
  // blocks flat (ratio ~1) while the unbounded queue's scale with ops
  // (ratio ~4). The gates are loose on purpose — they assert the shape,
  // not the constants.
  CHECK(unbounded_ratio > 3.0);
  CHECK(bounded_ratio < 1.5);
  CHECK(bb * 20 < ub);  // and the absolute plateau is far below unbounded

  // The plateau really comes from collection: disabling GC (g=-1) makes
  // the bounded queue grow like the unbounded one.
  BoundedQueue<uint64_t> off_small(2, -1), off_big(2, -1);
  size_t os = live_after(off_small, kSmall, kHold);
  size_t ob = live_after(off_big, kBig, kHold);
  CHECK(static_cast<double>(ob) / static_cast<double>(os) > 3.0);
  CHECK_EQ(off_big.debug_gc_phases(), uint64_t{0});
  CHECK_EQ(off_big.debug_ebr().retired_count(), uint64_t{0});

  // The subsystem surfaces agree the machinery ran on the collected runs.
  CHECK(b_big.debug_gc_phases() > 0);
  CHECK(b_big.debug_archived_blocks() > 0);
  CHECK(b_big.debug_ebr().freed_count() > 0);
}

}  // namespace

int main() {
  fifo_across_gc_phases();
  space_plateau();
  return wfq::test::exit_code();
}
