// Simulator-driven linearizability checks for the concurrent queue. The
// deterministic scheduler interleaves p processes at shared-memory-step
// granularity (round-robin and seeded-random adversaries), and the observed
// responses must satisfy FIFO queue semantics:
//   (a) single-producer/single-consumer: the consumer's non-null responses
//       are exactly a prefix of the producer's enqueue order;
//   (b) many producers/consumers: no value dequeued twice, every dequeued
//       value was enqueued, per-(consumer, producer) sequence numbers strictly
//       increase (FIFO order is preserved through any one observer), and
//       enqueued = dequeued + leftover exactly as multisets;
//   (c) dequeues on an empty queue return null.
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "baselines/kp_queue.hpp"
#include "baselines/sim_queue.hpp"
#include "core/bounded_queue.hpp"
#include "core/unbounded_queue.hpp"
#include "platform/platform.hpp"
#include "sim/adversary.hpp"
#include "sim/scheduler.hpp"
#include "test_util.hpp"

namespace {

using Queue = wfq::core::UnboundedQueue<uint64_t, wfq::platform::SimPlatform>;
using BQueue = wfq::core::BoundedQueue<uint64_t, wfq::platform::SimPlatform>;
using KpQ = wfq::baselines::KpQueue<uint64_t, wfq::platform::SimPlatform>;
using SimQ = wfq::baselines::SimQueue<uint64_t, wfq::platform::SimPlatform>;

void spsc_exact_fifo(std::unique_ptr<wfq::sim::SchedulingPolicy> policy) {
  constexpr int kN = 60;       // values produced
  constexpr int kTries = 120;  // consumer dequeue attempts (some will be null)
  Queue q(2);
  std::vector<uint64_t> got;
  wfq::sim::Scheduler sched(std::move(policy));
  std::vector<std::function<void()>> bodies;
  bodies.emplace_back([&q] {
    q.bind_thread(0);
    for (uint64_t i = 0; i < kN; ++i) q.enqueue(i);
  });
  bodies.emplace_back([&q, &got] {
    q.bind_thread(1);
    for (int k = 0; k < kTries; ++k) {
      auto r = q.dequeue();
      if (r.has_value()) got.push_back(*r);
    }
  });
  sched.run(std::move(bodies));
  // One producer, one consumer: responses must be 0,1,2,... with no gaps.
  for (size_t i = 0; i < got.size(); ++i) CHECK_EQ(got[i], i);
}

/// The mpmc FIFO/conservation check, templated over the queue type so the
/// baseline queues (KP, simq) run the exact same oracle as the paper's
/// queue under any policy.
template <typename QueueT>
void mpmc_fifo_check(std::unique_ptr<wfq::sim::SchedulingPolicy> policy,
                     int procs, int per_proc) {
  QueueT q(procs);
  std::vector<std::vector<uint64_t>> got(static_cast<size_t>(procs));
  wfq::sim::Scheduler sched(std::move(policy));
  std::vector<std::function<void()>> bodies;
  for (int pid = 0; pid < procs; ++pid) {
    bodies.emplace_back([&q, &got, pid, per_proc] {
      q.bind_thread(pid);
      for (int k = 0; k < per_proc; ++k)
        q.enqueue((static_cast<uint64_t>(pid) << 32) |
                  static_cast<uint64_t>(k));
      for (int k = 0; k < per_proc; ++k) {
        auto r = q.dequeue();
        if (r.has_value()) got[static_cast<size_t>(pid)].push_back(*r);
      }
    });
  }
  sched.run(std::move(bodies));

  std::set<uint64_t> enqueued;
  for (int pid = 0; pid < procs; ++pid)
    for (int k = 0; k < per_proc; ++k)
      enqueued.insert((static_cast<uint64_t>(pid) << 32) |
                      static_cast<uint64_t>(k));

  std::set<uint64_t> dequeued;
  for (const auto& list : got) {
    // Per consumer, each producer's sequence numbers must strictly increase
    // (its dequeues are linearized in program order, and FIFO keeps any one
    // producer's values in enqueue order).
    std::map<uint64_t, int64_t> last_seq;
    for (uint64_t v : list) {
      CHECK(enqueued.count(v) == 1);
      CHECK(dequeued.insert(v).second);  // no duplicates across consumers
      uint64_t producer = v >> 32;
      auto seq = static_cast<int64_t>(v & 0xffffffffu);
      auto it = last_seq.find(producer);
      if (it != last_seq.end()) CHECK(seq > it->second);
      last_seq[producer] = seq;
    }
  }

  // Conservation: drain the leftovers single-threaded (outside the sim) and
  // the union must be exactly the enqueued set.
  q.bind_thread(0);
  for (;;) {
    auto r = q.dequeue();
    if (!r.has_value()) break;
    CHECK(dequeued.insert(*r).second);
  }
  CHECK_EQ(dequeued.size(), enqueued.size());
}

void mpmc_fifo(std::unique_ptr<wfq::sim::SchedulingPolicy> policy) {
  mpmc_fifo_check<Queue>(std::move(policy), /*procs=*/8, /*per_proc=*/24);
}

/// Adversary for the GC retention regression below: runs one process for a
/// burst of up to kMaxBurst consecutive shared steps before re-drawing, so
/// both halves of the race window occur — a collector stalled mid-scan
/// while churners complete whole operations, and an op stalled between its
/// slot being scanned and its start publication. Uniform random switching
/// almost never holds a process long enough for the root head to drift
/// past the floor's -2 slack; bursts routinely do.
class BurstPolicy : public wfq::sim::SchedulingPolicy {
 public:
  explicit BurstPolicy(uint64_t seed) : state_(seed * 2 + 1) {}
  int pick(const std::vector<char>& runnable, uint64_t /*step*/) override {
    int n = static_cast<int>(runnable.size());
    if (left_ == 0 || cur_ < 0 || !runnable[static_cast<size_t>(cur_)]) {
      for (int tries = 0; tries < 64; ++tries) {
        int c = static_cast<int>(next() % static_cast<uint64_t>(n));
        if (runnable[static_cast<size_t>(c)]) {
          cur_ = c;
          break;
        }
      }
      if (cur_ < 0 || !runnable[static_cast<size_t>(cur_)]) {
        for (int c = 0; c < n; ++c)
          if (runnable[static_cast<size_t>(c)]) cur_ = c;
      }
      left_ = 1 + static_cast<int>(next() % kMaxBurst);
    }
    --left_;
    return cur_;
  }

 private:
  static constexpr uint64_t kMaxBurst = 96;
  uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }
  uint64_t state_;
  int cur_ = -1;
  int left_ = 0;
};

/// Regression for the GC retention race: collect() must read the root's
/// last block index BEFORE scanning the per-process start slots. If it is
/// read after, an op whose slot was scanned while idle can pin mid-scan and
/// publish a start below the later-read `last`; the archive floor then
/// discards blocks that op's find_response/index_dequeue still needs, and
/// its doubling search converges on the wrong block (wrong element / lost
/// value). G=2 keeps a collection in flight almost constantly and the
/// enqueue/dequeue-pair workload holds the queue near-empty, so the floor
/// chases the head and any retention slip discards a block that is still
/// value-bearing. Swept over many burst schedules plus lock-step.
void bounded_gc_retention(std::unique_ptr<wfq::sim::SchedulingPolicy> policy) {
  constexpr int kProcs = 8;
  constexpr int kRounds = 24;
  BQueue q(kProcs, /*gc_period=*/2);
  std::vector<std::vector<uint64_t>> got(kProcs);
  wfq::sim::Scheduler sched(std::move(policy));
  std::vector<std::function<void()>> bodies;
  for (int pid = 0; pid < kProcs; ++pid) {
    bodies.emplace_back([&q, &got, pid] {
      q.bind_thread(pid);
      for (int k = 0; k < kRounds; ++k) {
        q.enqueue((static_cast<uint64_t>(pid) << 32) |
                  static_cast<uint64_t>(k));
        auto r = q.dequeue();
        if (r.has_value()) got[static_cast<size_t>(pid)].push_back(*r);
      }
    });
  }
  sched.run(std::move(bodies));

  std::set<uint64_t> enqueued;
  for (int pid = 0; pid < kProcs; ++pid)
    for (int k = 0; k < kRounds; ++k)
      enqueued.insert((static_cast<uint64_t>(pid) << 32) |
                      static_cast<uint64_t>(k));

  std::set<uint64_t> dequeued;
  for (const auto& list : got) {
    std::map<uint64_t, int64_t> last_seq;
    for (uint64_t v : list) {
      CHECK(enqueued.count(v) == 1);
      CHECK(dequeued.insert(v).second);  // no duplicates across consumers
      uint64_t producer = v >> 32;
      auto seq = static_cast<int64_t>(v & 0xffffffffu);
      auto it = last_seq.find(producer);
      if (it != last_seq.end()) CHECK(seq > it->second);
      last_seq[producer] = seq;
    }
  }
  q.bind_thread(0);
  for (;;) {
    auto r = q.dequeue();
    if (!r.has_value()) break;
    CHECK(dequeued.insert(*r).second);
  }
  CHECK_EQ(dequeued.size(), enqueued.size());
  CHECK(q.debug_gc_phases() > 0);  // the race window actually existed
}

/// Targeted adversary for the helping protocols (PR 6): parks a process
/// right before a CAS — in the KP queue that is the descriptor-completion /
/// node-append CAS, in simq the combiner's state-install CAS — while the
/// others run at seeded-random order, so completion almost always comes
/// from a HELPER (KP) or a competing combiner (simq), not the announcing
/// process. StallRefreshPolicy covers the deterministic variant of this
/// schedule; here the victim choice and stall length are randomized so a
/// seed sweep lands the park at many different protocol points. One
/// bounded park per pending CAS, and a victim that becomes the only
/// runnable process is released, so every workload terminates.
class HelpStallPolicy : public wfq::sim::SchedulingPolicy {
 public:
  explicit HelpStallPolicy(uint64_t seed) : state_(seed * 2 + 1) {}

  void before_step(int pid, wfq::sim::StepKind kind) override {
    reserve(static_cast<size_t>(pid) + 1);
    next_cas_[static_cast<size_t>(pid)] =
        (kind == wfq::sim::StepKind::cas) ? 1 : 0;
  }

  int pick(const std::vector<char>& runnable, uint64_t /*step*/) override {
    const int n = static_cast<int>(runnable.size());
    reserve(runnable.size());
    // Release the victim when its stall is spent or it already finished;
    // its pending CAS no longer counts for victimization (each pending CAS
    // earns at most one bounded park).
    if (victim_ >= 0 &&
        (stall_left_ == 0 || !runnable[static_cast<size_t>(victim_)])) {
      next_cas_[static_cast<size_t>(victim_)] = 0;
      victim_ = -1;
    }
    if (victim_ < 0) {
      // Reservoir-sample a CAS-pending runnable process as the new victim,
      // but only if someone else stays runnable to make progress past it.
      int cand = -1, seen = 0;
      for (int c = 0; c < n; ++c)
        if (runnable[static_cast<size_t>(c)] &&
            next_cas_[static_cast<size_t>(c)] != 0 &&
            next() % static_cast<uint64_t>(++seen) == 0)
          cand = c;
      if (cand >= 0) {
        bool other = false;
        for (int c = 0; c < n; ++c)
          if (c != cand && runnable[static_cast<size_t>(c)]) other = true;
        if (other) {
          victim_ = cand;
          stall_left_ = 1 + next() % (6 * static_cast<uint64_t>(n) + 10);
        }
      }
    }
    // Run a uniformly random runnable non-victim.
    int chosen = -1, seen = 0;
    for (int c = 0; c < n; ++c)
      if (runnable[static_cast<size_t>(c)] && c != victim_ &&
          next() % static_cast<uint64_t>(++seen) == 0)
        chosen = c;
    if (chosen < 0) {  // only the victim is left: release it
      chosen = victim_;
      victim_ = -1;
    }
    if (victim_ >= 0 && stall_left_ > 0) --stall_left_;
    if (chosen >= 0) next_cas_[static_cast<size_t>(chosen)] = 0;
    return chosen;
  }

 private:
  void reserve(size_t n) {
    if (next_cas_.size() < n) next_cas_.resize(n, 0);
  }
  uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }
  uint64_t state_;
  std::vector<char> next_cas_;
  int victim_ = -1;  // process parked at its pending CAS
  uint64_t stall_left_ = 0;
};

/// Helping-stall conformance for the PR-6 baselines, mirroring the
/// bounded_gc_retention sweep shape: one deterministic stall-refresh run
/// per queue plus a seeded HelpStallPolicy sweep. Any lost/duplicated value
/// or FIFO inversion while a CAS is parked mid-flight fails the oracle.
void helping_stall_sweep(uint64_t sweeps) {
  constexpr int kProcs = 6;
  constexpr int kPerProc = 10;
  mpmc_fifo_check<KpQ>(std::make_unique<wfq::sim::StallRefreshPolicy>(),
                       kProcs, kPerProc);
  mpmc_fifo_check<SimQ>(std::make_unique<wfq::sim::StallRefreshPolicy>(),
                        kProcs, kPerProc);
  for (uint64_t seed = 1; seed <= sweeps; ++seed) {
    mpmc_fifo_check<KpQ>(std::make_unique<HelpStallPolicy>(seed), kProcs,
                         kPerProc);
    mpmc_fifo_check<SimQ>(std::make_unique<HelpStallPolicy>(seed), kProcs,
                          kPerProc);
  }
}

void empty_always_null() {
  constexpr int kProcs = 4;
  Queue q(kProcs);
  int nonnull = 0;
  wfq::sim::Scheduler sched(std::make_unique<wfq::sim::RoundRobinPolicy>());
  std::vector<std::function<void()>> bodies;
  for (int pid = 0; pid < kProcs; ++pid) {
    bodies.emplace_back([&q, &nonnull, pid] {
      q.bind_thread(pid);
      for (int k = 0; k < 10; ++k)
        if (q.dequeue().has_value()) ++nonnull;
    });
  }
  sched.run(std::move(bodies));
  CHECK_EQ(nonnull, 0);
}

}  // namespace

int main(int argc, char** argv) {
  // argv[1] overrides the burst-schedule count of the GC retention sweep
  // (default 40 in the tier-1 suite); argv[2] the seed count of the
  // helping-stall sweep (default 200). The tree-extraction regression gate
  // (ISSUE 5) runs the standalone 400-schedule sweep:
  //   ./sim_linearizability_test 400
  // and the ASan helping-stall gate (ISSUE 6) widens the second sweep:
  //   ./sim_linearizability_test 40 400
  // A malformed count is a hard error — a silent fallback would let a typo
  // report success having swept nothing.
  uint64_t gc_sweeps = 40;
  uint64_t help_sweeps = 200;
  uint64_t* const counts[] = {&gc_sweeps, &help_sweeps};
  for (int i = 1; i < argc && i <= 2; ++i) {
    char* end = nullptr;
    *counts[i - 1] = std::strtoull(argv[i], &end, 10);
    if (end == argv[i] || *end != '\0' || *counts[i - 1] == 0) {
      std::cerr << "usage: sim_linearizability_test [gc_sweep_count >= 1] "
                << "[helping_stall_sweep_count >= 1]; got \"" << argv[i]
                << "\"\n";
      return 2;
    }
  }

  spsc_exact_fifo(std::make_unique<wfq::sim::RoundRobinPolicy>());
  spsc_exact_fifo(std::make_unique<wfq::sim::RandomPolicy>(12345));
  mpmc_fifo(std::make_unique<wfq::sim::RoundRobinPolicy>());
  for (uint64_t seed : {7u, 99u, 2026u})
    mpmc_fifo(std::make_unique<wfq::sim::RandomPolicy>(seed));
  empty_always_null();
  bounded_gc_retention(std::make_unique<wfq::sim::RoundRobinPolicy>());
  for (uint64_t seed = 1; seed <= gc_sweeps; ++seed)
    bounded_gc_retention(std::make_unique<BurstPolicy>(seed));
  helping_stall_sweep(help_sweeps);
  return wfq::test::exit_code();
}
