// Real-platform stress test for the bounded queue's reclamation paths,
// aimed at the CI ASan job: 4 OS threads hammer enqueue/dequeue across
// thousands of GC phases (tiny G), so truncated blocks, archive versions
// and EBR buckets are created, read concurrently, and freed under real
// contention. Any use-after-free (a block freed while a dequeue still
// navigates it), double free (BlockArray dtor vs EBR) or leak (archive
// versions, retired blocks) fails the suite under -DWFQ_SANITIZE=ON.
//
// Semantics are also checked: no duplicated or invented values, exact
// multiset conservation after a drain, and per-producer FIFO order at
// every consumer.
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "core/bounded_queue.hpp"
#include "test_util.hpp"

namespace {

constexpr int kProcs = 4;
constexpr uint64_t kOpsPerThread = 12'000;

void stress(int64_t gc_period) {
  wfq::core::BoundedQueue<uint64_t> q(kProcs, gc_period);
  std::vector<std::vector<uint64_t>> got(kProcs);
  std::vector<std::thread> threads;
  for (int pid = 0; pid < kProcs; ++pid) {
    threads.emplace_back([&q, &got, pid] {
      q.bind_thread(pid);
      got[static_cast<size_t>(pid)].reserve(kOpsPerThread);
      for (uint64_t k = 0; k < kOpsPerThread; ++k) {
        // 2 enqueues then 2 dequeues keeps the queue shallow but busy, so
        // GC retention repeatedly crosses the live front under contention.
        if (k % 4 < 2) {
          q.enqueue((static_cast<uint64_t>(pid) << 32) | k);
        } else {
          auto r = q.dequeue();
          if (r.has_value()) got[static_cast<size_t>(pid)].push_back(*r);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::set<uint64_t> enqueued;
  for (int pid = 0; pid < kProcs; ++pid)
    for (uint64_t k = 0; k < kOpsPerThread; ++k)
      if (k % 4 < 2) enqueued.insert((static_cast<uint64_t>(pid) << 32) | k);

  std::set<uint64_t> dequeued;
  for (const auto& list : got) {
    std::map<uint64_t, int64_t> last_seq;  // per-producer FIFO at a consumer
    for (uint64_t v : list) {
      CHECK(enqueued.count(v) == 1);
      CHECK(dequeued.insert(v).second);
      uint64_t producer = v >> 32;
      auto seq = static_cast<int64_t>(v & 0xffffffffu);
      auto it = last_seq.find(producer);
      if (it != last_seq.end()) CHECK(seq > it->second);
      last_seq[producer] = seq;
    }
  }

  q.bind_thread(0);
  for (;;) {
    auto r = q.dequeue();
    if (!r.has_value()) break;
    CHECK(dequeued.insert(*r).second);
  }
  CHECK_EQ(dequeued.size(), enqueued.size());
  CHECK(q.debug_gc_phases() > 0);
  CHECK(q.debug_ebr().freed_count() > 0);
}

}  // namespace

int main() {
  stress(/*gc_period=*/8);   // thousands of GC phases
  stress(/*gc_period=*/64);  // coarser windows, deeper archive churn
  return wfq::test::exit_code();
}
