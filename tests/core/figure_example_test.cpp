// Asserts the paper's Figure-2 worked example (the 14-operation history of
// Figure 1) when driven one operation at a time in the figure's linearization
// order: dequeue responses Deq2=a, Deq4=e, Deq5=b, Deq1=d, Deq3=f, Deq6=h,
// queue left holding {c, g}, and the root's implicit size/sum sequences.
#include <optional>
#include <thread>
#include <vector>

#include "core/unbounded_queue.hpp"
#include "test_util.hpp"

namespace {

using Queue = wfq::core::UnboundedQueue<uint64_t>;

struct Op {
  int pid;
  bool is_enq;
  uint64_t arg;
};

// Same schedule as bench/experiments/e01_figure2.cpp: per-process program order matches the
// figure (P0: a,b,d,Deq1; P1: Deq2,c,Deq3; P2: e,Deq4,Deq5,f,h; P3: g,Deq6).
const Op kOps[] = {
    {0, true, 'a'}, {2, true, 'e'}, {1, false, 0}, {0, true, 'b'},
    {2, false, 0},  {2, false, 0},  {0, true, 'd'}, {2, true, 'f'},
    {2, true, 'h'}, {0, false, 0},  {1, true, 'c'}, {1, false, 0},
    {3, true, 'g'}, {3, false, 0},
};

std::optional<uint64_t> run_as(Queue& q, const Op& op) {
  std::optional<uint64_t> resp;
  std::thread t([&] {
    q.bind_thread(op.pid);
    if (op.is_enq) {
      q.enqueue(op.arg);
    } else {
      resp = q.dequeue();
    }
  });
  t.join();
  return resp;
}

}  // namespace

int main() {
  Queue q(4);
  std::vector<std::optional<uint64_t>> deq_resps;
  for (const Op& op : kOps) {
    auto r = run_as(q, op);
    if (!op.is_enq) deq_resps.push_back(r);
  }

  // Dequeues in execution order: Deq2, Deq4, Deq5, Deq1, Deq3, Deq6.
  const char expected[] = {'a', 'e', 'b', 'd', 'f', 'h'};
  CHECK_EQ(deq_resps.size(), 6u);
  for (size_t i = 0; i < deq_resps.size(); ++i) {
    CHECK(deq_resps[i].has_value());
    if (deq_resps[i].has_value())
      CHECK_EQ(static_cast<char>(*deq_resps[i]), expected[i]);
  }

  // One op at a time => every root block holds exactly one operation.
  const Queue::Node* root = q.debug_root();
  CHECK_EQ(root->head.unsafe_peek(), 15);

  // Queue size after each operation of the figure's history.
  const int64_t sizes[] = {1, 2, 1, 2, 1, 0, 1, 2, 3, 2, 3, 2, 3, 2};
  for (int64_t b = 1; b <= 14; ++b) {
    const Queue::Block* blk = root->blocks.load(b);
    CHECK_EQ(blk->size, sizes[b - 1]);
    CHECK_EQ(blk->sumenq + blk->sumdeq, b);  // each block is one operation
  }
  CHECK_EQ(root->blocks.load(14)->sumenq, 8);
  CHECK_EQ(root->blocks.load(14)->sumdeq, 6);

  // The two survivors come out in FIFO order: c then g.
  q.bind_thread(0);
  auto c = q.dequeue();
  auto g = q.dequeue();
  auto none = q.dequeue();
  CHECK(c.has_value() && static_cast<char>(*c) == 'c');
  CHECK(g.has_value() && static_cast<char>(*g) == 'g');
  CHECK(!none.has_value());

  return wfq::test::exit_code();
}
