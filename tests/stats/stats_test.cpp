// Unit tests for the stats helpers the bench tables and shape reports use.
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "stats/qos.hpp"
#include "stats/shape.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "test_util.hpp"

namespace {

bool near(double a, double b, double eps = 1e-9) {
  return std::fabs(a - b) < eps;
}

void test_summarize() {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  auto s = wfq::stats::summarize(xs);
  CHECK_EQ(s.n, 100u);
  CHECK(near(s.mean, 50.5));
  CHECK(near(s.min, 1.0));
  CHECK(near(s.p50, 50.0));   // nearest-rank: ceil(0.50*100) = rank 50
  CHECK(near(s.p99, 99.0));   // nearest-rank: ceil(0.99*100) = rank 99
  CHECK(near(s.max, 100.0));

  auto one = wfq::stats::summarize({42.0});
  CHECK(near(one.mean, 42.0));
  CHECK(near(one.p99, 42.0));
  CHECK(near(one.max, 42.0));

  auto empty = wfq::stats::summarize({});
  CHECK_EQ(empty.n, 0u);
  CHECK(near(empty.mean, 0.0));
}

void test_fits() {
  // Perfect linear fit: R^2 exactly 1, slope exactly 2.
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {3, 5, 7, 9, 11};
  CHECK(near(wfq::stats::fit_r2(xs, ys), 1.0, 1e-12));
  CHECK(near(wfq::stats::fit_slope(xs, ys), 2.0, 1e-12));

  // Constant y: any model explains it perfectly (R^2 = 1, slope 0).
  std::vector<double> flat = {4, 4, 4, 4, 4};
  CHECK(near(wfq::stats::fit_r2(xs, flat), 1.0));
  CHECK(near(wfq::stats::fit_slope(xs, flat), 0.0));

  // Constant x with varying y: nothing explained (R^2 = 0, slope 0).
  std::vector<double> constx = {2, 2, 2, 2, 2};
  CHECK(near(wfq::stats::fit_r2(constx, ys), 0.0));
  CHECK(near(wfq::stats::fit_slope(constx, ys), 0.0));

  // Noisy data: 0 < R^2 < 1, and clearly better for the true model.
  std::vector<double> noisy = {3.1, 4.8, 7.2, 8.9, 11.1};
  double r = wfq::stats::fit_r2(xs, noisy);
  CHECK(r > 0.99 && r < 1.0);
}

// The growth-model selection rule (moved from bench/common.hpp into
// stats/shape.hpp): smallest model wins unless a larger one improves R^2 by
// more than the 2% margin. The margin cases were previously untested.
void test_pick_model_margin() {
  using wfq::stats::pick_model;
  // Clear winners.
  CHECK_EQ(pick_model(0.99, 0.80, 0.70), std::string("log p"));
  CHECK_EQ(pick_model(0.80, 0.99, 0.70), std::string("log^2 p"));
  CHECK_EQ(pick_model(0.50, 0.60, 0.99), std::string("p"));
  // Within-margin ties break toward the smaller model: log^2 p and p each
  // lead log p by <= 0.02, so log p keeps the crown.
  CHECK_EQ(pick_model(0.98, 1.00, 0.70), std::string("log p"));
  CHECK_EQ(pick_model(0.98, 0.70, 1.00), std::string("log p"));
  CHECK_EQ(pick_model(0.99, 1.00, 1.00), std::string("log p"));
  // Just past the margin flips the decision.
  CHECK_EQ(pick_model(0.97, 0.995, 0.70), std::string("log^2 p"));
  CHECK_EQ(pick_model(0.97, 0.70, 0.995), std::string("p"));
  // p must beat the *incumbent* (possibly log^2 p), not log p: here
  // log^2 p takes over from log p, and p's lead over log^2 p is within
  // the margin, so log^2 p stays.
  CHECK_EQ(pick_model(0.90, 0.99, 1.00), std::string("log^2 p"));
  // Chained upgrade: p clears both hurdles.
  CHECK_EQ(pick_model(0.90, 0.94, 0.99), std::string("p"));
}

void test_fit_shape() {
  std::vector<double> ps = {2, 4, 8, 16, 32, 64};
  // Exact logarithmic data: R^2[log p] = 1 and log p wins.
  std::vector<double> ylog, ylog2, ylin;
  for (double p : ps) {
    double l = std::log2(p);
    ylog.push_back(3 * l + 1);
    ylog2.push_back(2 * l * l + 5);
    ylin.push_back(4 * p + 7);
  }
  auto f = wfq::stats::fit_shape(ps, ylog);
  CHECK(near(f.r2_logp, 1.0, 1e-12));
  CHECK_EQ(f.best, std::string("log p"));
  CHECK_EQ(wfq::stats::fit_shape(ps, ylog2).best, std::string("log^2 p"));
  auto flin = wfq::stats::fit_shape(ps, ylin);
  CHECK(near(flin.r2_linp, 1.0, 1e-12));
  CHECK_EQ(flin.best, std::string("p"));
  // p-values below 1 are clamped to log2(1) = 0, not NaN.
  auto clamped = wfq::stats::fit_shape({0.5, 2, 4}, {1, 2, 3});
  CHECK(std::isfinite(clamped.r2_logp));
  // Two points fit every model exactly — no "best" verdict is fabricated.
  auto two = wfq::stats::fit_shape({8, 32}, {10, 40});
  CHECK_EQ(two.best, std::string("indeterminate (<3 points)"));
  CHECK_EQ(wfq::stats::fit_shape({}, {}).best,
           std::string("indeterminate (<3 points)"));
  // Same for constant series (e.g. an unmeasured all-zero step sweep):
  // every model "fits" a flat line, so no growth verdict is claimed.
  auto flat3 = wfq::stats::fit_shape({2, 8, 32}, {0, 0, 0});
  CHECK_EQ(flat3.best, std::string("indeterminate (constant series)"));
  // Degenerate grid (all-equal p, e.g. a single-p sweep with repeats): the
  // predictor has zero variance, so every R^2 is 0 and no model verdict is
  // fabricated out of the sxx==0 convention.
  auto degen = wfq::stats::fit_shape({8, 8, 8}, {1, 2, 3});
  CHECK_EQ(degen.best, std::string("indeterminate (degenerate grid)"));
  CHECK(near(degen.r2_logp, 0.0));
  CHECK(near(degen.r2_log2p, 0.0));
  CHECK(near(degen.r2_linp, 0.0));
  CHECK(std::isfinite(degen.r2_logp) && std::isfinite(degen.r2_linp));
  // Degenerate grid AND constant series: the grid verdict wins (the data
  // says nothing about growth in p either way, but the grid is the root
  // cause a user can fix by widening the sweep).
  CHECK_EQ(wfq::stats::fit_shape({4, 4, 4}, {5, 5, 5}).best,
           std::string("indeterminate (degenerate grid)"));
  // A two-point degenerate grid still reports the <3-points verdict first.
  CHECK_EQ(wfq::stats::fit_shape({8, 8}, {1, 2}).best,
           std::string("indeterminate (<3 points)"));
  // The rendered line keeps the historical format.
  std::string line = wfq::stats::shape_line("series-x", flin);
  CHECK(line.find("shape(series-x)") != std::string::npos);
  CHECK(line.find("-> best: p") != std::string::npos);
}

void test_fmt() {
  CHECK_EQ(wfq::stats::fmt(3.14159, 3), std::string("3.142"));
  CHECK_EQ(wfq::stats::fmt(2.5, 0), std::string("2"));  // banker's-free fixed
  CHECK_EQ(wfq::stats::fmt(42), std::string("42"));
  CHECK_EQ(wfq::stats::fmt(static_cast<uint64_t>(1) << 40),
           std::string("1099511627776"));
  CHECK_EQ(wfq::stats::fmt(-7), std::string("-7"));
  CHECK_EQ(wfq::stats::fmt(1.0), std::string("1.00"));  // default 2 decimals
}

void test_table_alignment() {
  wfq::stats::Table t({"p", "steps/op", "label"});
  t.add_row({"2", "10.25", "x"});
  t.add_row({"64", "7", "longer-label"});
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  CHECK_EQ(lines.size(), 4u);  // header + rule + 2 rows
  // Aligned columns => every line has identical width.
  for (const auto& l : lines) CHECK_EQ(l.size(), lines[0].size());
  // Right-alignment: cells end at the same offset, so "10.25" and the header
  // "steps/op" share their last character column.
  CHECK(lines[0].find("steps/op") != std::string::npos);
  CHECK_EQ(lines[0].find("steps/op") + 8, lines[2].find("10.25") + 5);
}

// QoS helpers for the E13 family (ISSUE 7 satellite): Jain's index and the
// nearest-rank percentile, including the degenerate inputs the experiment
// sweeps can produce.
void test_qos() {
  using wfq::stats::jain_index;
  using wfq::stats::percentile;
  // Jain: empty and single-tenant inputs read 1.0 (nothing to be unfair
  // about), as does any all-equal allocation.
  CHECK(near(jain_index({}), 1.0));
  CHECK(near(jain_index({5.0}), 1.0));
  CHECK(near(jain_index({3.0, 3.0, 3.0}), 1.0));
  CHECK(near(jain_index({0.0, 0.0}), 1.0));  // all-zero: no division blowup
  // One tenant hogging everything reads 1/n.
  CHECK(near(jain_index({1.0, 0.0, 0.0, 0.0}), 0.25));
  // Hand-computed mixed case: (1+2+3+4)^2 / (4 * 30) = 100/120.
  CHECK(near(jain_index({1.0, 2.0, 3.0, 4.0}), 100.0 / 120.0));

  // Percentile: empty reads 0, single sample is every percentile.
  CHECK(near(percentile({}, 99), 0.0));
  CHECK(near(percentile({7.0}, 0), 7.0));
  CHECK(near(percentile({7.0}, 100), 7.0));
  // Nearest-rank over 1..100 matches stats::summarize's convention, and the
  // input need not be sorted.
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(i);
  CHECK(near(percentile(xs, 50), 50.0));
  CHECK(near(percentile(xs, 99), 99.0));
  CHECK(near(percentile(xs, 100), 100.0));
  CHECK(near(percentile(xs, 0), 1.0));    // q=0 clamps to the minimum
  CHECK(near(percentile(xs, 150), 100.0));  // out-of-range q clamps
}

}  // namespace

int main() {
  test_summarize();
  test_fits();
  test_pick_model_margin();
  test_fit_shape();
  test_fmt();
  test_table_alignment();
  test_qos();
  return wfq::test::exit_code();
}
