// Unit tests for the stats helpers the bench tables and shape reports use.
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "test_util.hpp"

namespace {

bool near(double a, double b, double eps = 1e-9) {
  return std::fabs(a - b) < eps;
}

void test_summarize() {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  auto s = wfq::stats::summarize(xs);
  CHECK_EQ(s.n, 100u);
  CHECK(near(s.mean, 50.5));
  CHECK(near(s.min, 1.0));
  CHECK(near(s.p50, 50.0));   // nearest-rank: ceil(0.50*100) = rank 50
  CHECK(near(s.p99, 99.0));   // nearest-rank: ceil(0.99*100) = rank 99
  CHECK(near(s.max, 100.0));

  auto one = wfq::stats::summarize({42.0});
  CHECK(near(one.mean, 42.0));
  CHECK(near(one.p99, 42.0));
  CHECK(near(one.max, 42.0));

  auto empty = wfq::stats::summarize({});
  CHECK_EQ(empty.n, 0u);
  CHECK(near(empty.mean, 0.0));
}

void test_fits() {
  // Perfect linear fit: R^2 exactly 1, slope exactly 2.
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {3, 5, 7, 9, 11};
  CHECK(near(wfq::stats::fit_r2(xs, ys), 1.0, 1e-12));
  CHECK(near(wfq::stats::fit_slope(xs, ys), 2.0, 1e-12));

  // Constant y: any model explains it perfectly (R^2 = 1, slope 0).
  std::vector<double> flat = {4, 4, 4, 4, 4};
  CHECK(near(wfq::stats::fit_r2(xs, flat), 1.0));
  CHECK(near(wfq::stats::fit_slope(xs, flat), 0.0));

  // Constant x with varying y: nothing explained (R^2 = 0, slope 0).
  std::vector<double> constx = {2, 2, 2, 2, 2};
  CHECK(near(wfq::stats::fit_r2(constx, ys), 0.0));
  CHECK(near(wfq::stats::fit_slope(constx, ys), 0.0));

  // Noisy data: 0 < R^2 < 1, and clearly better for the true model.
  std::vector<double> noisy = {3.1, 4.8, 7.2, 8.9, 11.1};
  double r = wfq::stats::fit_r2(xs, noisy);
  CHECK(r > 0.99 && r < 1.0);
}

void test_fmt() {
  CHECK_EQ(wfq::stats::fmt(3.14159, 3), std::string("3.142"));
  CHECK_EQ(wfq::stats::fmt(2.5, 0), std::string("2"));  // banker's-free fixed
  CHECK_EQ(wfq::stats::fmt(42), std::string("42"));
  CHECK_EQ(wfq::stats::fmt(static_cast<uint64_t>(1) << 40),
           std::string("1099511627776"));
  CHECK_EQ(wfq::stats::fmt(-7), std::string("-7"));
  CHECK_EQ(wfq::stats::fmt(1.0), std::string("1.00"));  // default 2 decimals
}

void test_table_alignment() {
  wfq::stats::Table t({"p", "steps/op", "label"});
  t.add_row({"2", "10.25", "x"});
  t.add_row({"64", "7", "longer-label"});
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  CHECK_EQ(lines.size(), 4u);  // header + rule + 2 rows
  // Aligned columns => every line has identical width.
  for (const auto& l : lines) CHECK_EQ(l.size(), lines[0].size());
  // Right-alignment: cells end at the same offset, so "10.25" and the header
  // "steps/op" share their last character column.
  CHECK(lines[0].find("steps/op") != std::string::npos);
  CHECK_EQ(lines[0].find("steps/op") + 8, lines[2].find("10.25") + 5);
}

}  // namespace

int main() {
  test_summarize();
  test_fits();
  test_fmt();
  test_table_alignment();
  return wfq::test::exit_code();
}
