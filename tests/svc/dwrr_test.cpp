// Tier-1 tests for the multi-tenant QoS subsystem (ISSUE 7): DWRR
// quantum/deficit accounting, activation/deactivation, a sequential
// differential against a reference round-robin model, deterministic service
// order under the sim scheduler, service-key parsing, and the ZipfTraffic
// generator.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/service_registry.hpp"
#include "sim/adversary.hpp"
#include "sim/scheduler.hpp"
#include "svc/tenant_map.hpp"
#include "test_util.hpp"

namespace {

using namespace wfq;

svc::ServiceFacade<uint64_t> make(const std::string& key, int procs = 1) {
  api::QueueConfig cfg;
  cfg.procs = procs;
  return api::make_service<uint64_t>(key, cfg);
}

// --- quantum/deficit accounting ---------------------------------------------
// Two backlogged tenants, weights 1 and 2: each DWRR round serves one item
// from tenant 0 and two from tenant 1, so after any whole number of rounds
// the service counts split exactly 1:2 — and the per-round service ORDER is
// 0,1,1 (tenant 0 activated first).
void test_weighted_accounting() {
  auto s = make("dwrr:2:ubq");
  s.bind_thread(0);
  s.set_weight(1, 2);
  for (uint64_t i = 0; i < 300; ++i) {
    s.enqueue(0, i);
    s.enqueue(1, 1000 + i);
  }
  std::vector<int> order;
  for (int k = 0; k < 90; ++k) {
    auto got = s.service_next();
    CHECK(got.has_value());
    order.push_back(got->tenant);
  }
  CHECK_EQ(s.tenant_stats(0).serviced, 30u);
  CHECK_EQ(s.tenant_stats(1).serviced, 60u);
  const int expect[9] = {0, 1, 1, 0, 1, 1, 0, 1, 1};
  for (int k = 0; k < 9; ++k) CHECK_EQ(order[static_cast<size_t>(k)], expect[k]);
  // FIFO within a tenant: values come back in enqueue order.
  // (spot-check via another 3 services: values continue 30.., 1060..)
  auto a = s.service_next();
  CHECK(a.has_value() && a->tenant == 0 && a->value == 30);
  // Round bookkeeping: 30 completed rounds of ~3 items each.
  CHECK(s.rounds() >= 29 && s.rounds() <= 31);
  CHECK(s.round_service_estimate() > 2.5 && s.round_service_estimate() < 3.5);
}

// --- empty-queue deactivation and reactivation ------------------------------
void test_deactivation_reactivation() {
  auto s = make("dwrr:3:ubq");
  s.bind_thread(0);
  s.enqueue(1, 11);
  CHECK(s.tenant_stats(1).active);
  CHECK(!s.tenant_stats(0).active);
  auto got = s.service_next();
  CHECK(got.has_value() && got->tenant == 1 && got->value == 11);
  // Drained on service: the tenant left the ring and its deficit reset.
  CHECK(!s.tenant_stats(1).active);
  CHECK_EQ(s.tenant_stats(1).deficit, int64_t{0});
  CHECK(!s.service_next().has_value());
  // Re-enqueue reactivates; service works again.
  s.enqueue(1, 12);
  CHECK(s.tenant_stats(1).active);
  got = s.service_next();
  CHECK(got.has_value() && got->tenant == 1 && got->value == 12);
  CHECK(!s.service_next().has_value());
  CHECK_EQ(s.total_serviced(), 2u);
}

// --- sequential differential vs a reference round-robin model ---------------
// Equal weights + quantum_base 1 make DWRR equivalent to plain round-robin
// over the active tenants (activation order = first-enqueue order, a served
// tenant that stays backlogged rotates to the tail). The model: per-tenant
// FIFO queues plus an active list with exactly those rules.
struct RrModel {
  std::vector<std::queue<uint64_t>> qs;
  std::deque<int> active;

  explicit RrModel(int n) : qs(static_cast<size_t>(n)) {}

  void enqueue(int t, uint64_t v) {
    if (qs[static_cast<size_t>(t)].empty()) {
      bool in = false;
      for (int a : active) in |= (a == t);
      if (!in) active.push_back(t);
    }
    qs[static_cast<size_t>(t)].push(v);
  }

  std::optional<std::pair<int, uint64_t>> service() {
    if (active.empty()) return std::nullopt;
    int t = active.front();
    active.pop_front();
    uint64_t v = qs[static_cast<size_t>(t)].front();
    qs[static_cast<size_t>(t)].pop();
    if (!qs[static_cast<size_t>(t)].empty()) active.push_back(t);
    return std::make_pair(t, v);
  }
};

void test_differential_vs_rr_model() {
  const int n = 5;
  auto s = make("dwrr:5:ubq");
  s.bind_thread(0);
  RrModel model(n);
  // Deterministic op mix: ~2/3 enqueues (xorshift64*), interleaved with
  // services; then a full drain. Every service must match the model.
  uint64_t state = 42;
  auto rnd = [&] {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dULL;
  };
  uint64_t next_val = 0;
  for (int i = 0; i < 4000; ++i) {
    if (rnd() % 3 != 0) {
      int t = static_cast<int>(rnd() % n);
      s.enqueue(t, next_val);
      model.enqueue(t, next_val);
      ++next_val;
    } else {
      auto got = s.service_next();
      auto want = model.service();
      CHECK_EQ(got.has_value(), want.has_value());
      if (got && want) {
        CHECK_EQ(got->tenant, want->first);
        CHECK_EQ(got->value, want->second);
      }
    }
  }
  for (;;) {
    auto got = s.service_next();
    auto want = model.service();
    CHECK_EQ(got.has_value(), want.has_value());
    if (!got || !want) break;
    CHECK_EQ(got->tenant, want->first);
    CHECK_EQ(got->value, want->second);
  }
  CHECK_EQ(s.total_serviced(), next_val);
}

// --- deterministic service order under the sim scheduler --------------------
// Concurrent producers + one servicer under a seeded random policy: the
// exact service sequence is a function of the schedule only, so two runs
// with the same seed must produce identical sequences.
std::vector<std::pair<int, uint64_t>> sim_service_sequence(uint64_t seed) {
  const int producers = 3;
  const int64_t K = 40;
  api::QueueConfig cfg;
  cfg.procs = producers + 1;
  cfg.backend = api::Backend::sim;
  auto s = api::make_service<uint64_t>("dwrr:3:ubq", cfg);
  std::vector<std::pair<int, uint64_t>> seq;
  sim::Scheduler sched(
      std::make_unique<sim::RandomPolicy>(seed));
  std::vector<std::function<void()>> bodies;
  for (int t = 0; t < producers; ++t) {
    bodies.emplace_back([&s, t] {
      s.bind_thread(t);
      for (int64_t k = 0; k < K; ++k)
        s.enqueue(t, static_cast<uint64_t>(k));
    });
  }
  bodies.emplace_back([&] {
    s.bind_thread(producers);
    int64_t got = 0;
    while (got < producers * K) {
      auto item = s.service_next();
      if (!item) {
        // The facade's empty-ring path touches no counted shared memory;
        // yield explicitly or the servicer would hold the baton forever.
        sim::Scheduler::yield_point(sim::StepKind::load);
        continue;
      }
      seq.emplace_back(item->tenant, item->value);
      ++got;
    }
  });
  sched.run(std::move(bodies));
  return seq;
}

void test_sim_deterministic_order() {
  auto a = sim_service_sequence(5);
  auto b = sim_service_sequence(5);
  CHECK_EQ(a.size(), size_t{120});
  CHECK(a == b);
  // Per-tenant FIFO held under the concurrent schedule too.
  uint64_t next_per_tenant[3] = {0, 0, 0};
  for (auto& [t, v] : a) CHECK_EQ(v, next_per_tenant[t]++);
  // A different seed produces a different interleaving (overwhelmingly).
  auto c = sim_service_sequence(6);
  CHECK(a != c);
}

// --- concurrent activation/deactivation stress (real threads) ---------------
// Regression for the deactivation lost-wakeup: deactivate_front's
// store(active=false) followed by its pending re-check races the producer's
// enqueued-increment followed by its active-exchange — the SB litmus, which
// release/acquire alone permits (both sides read stale values, neither
// activates, the item strands). Producers throttle to a tiny backlog so
// tenants cross the empty->deactivate / re-enqueue->reactivate edge
// constantly; a stranded item deadlocks the handshake, which the servicer's
// watchdog turns into a CHECK failure instead of a hang. A stats thread
// snapshots counters mid-flight the whole time (race-free now that
// serviced/deficit are atomics; the ASan/TSan legs watch this).
void test_concurrent_activation_stress() {
  const int producers = 3;
  const uint64_t per_producer = 4'000;
  const uint64_t total = producers * per_producer;
  api::QueueConfig cfg;
  cfg.procs = producers + 1;
  auto s = api::make_service<uint64_t>("dwrr:2:ubq", cfg);
  std::atomic<uint64_t> enqueued{0}, drained{0};
  std::atomic<bool> done{false}, stuck{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      s.bind_thread(p);
      for (uint64_t k = 0; k < per_producer && !stuck.load(); ++k) {
        // Keep at most a handful of items in flight: the servicer drains
        // dry between arrivals, so deactivation fires all the time. Yield
        // while throttled — single-core runners otherwise burn whole
        // scheduling quanta spinning.
        while (enqueued.load() - drained.load() > 4 && !stuck.load())
          std::this_thread::yield();
        s.enqueue(static_cast<int>(k % 2), (static_cast<uint64_t>(p) << 32) | k);
        enqueued.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {
    s.bind_thread(producers);
    auto last_progress = std::chrono::steady_clock::now();
    while (drained.load() < total) {
      auto item = s.service_next();
      if (item.has_value()) {
        drained.fetch_add(1);
        last_progress = std::chrono::steady_clock::now();
      } else {
        if (std::chrono::steady_clock::now() - last_progress >
            std::chrono::seconds(30)) {
          // No service progress for 30s: an item stranded.
          stuck.store(true);
          break;
        }
        std::this_thread::yield();
      }
    }
  });
  threads.emplace_back([&] {
    while (!done.load()) {
      uint64_t snap = 0;
      for (int t = 0; t < 2; ++t) snap += s.tenant_stats(t).serviced;
      CHECK(snap <= total);
      CHECK(s.total_serviced() <= total);
      std::this_thread::yield();
    }
  });
  for (size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  done.store(true);
  threads.back().join();
  CHECK(!stuck.load());
  CHECK_EQ(drained.load(), total);
  CHECK_EQ(s.total_serviced(), total);
  CHECK(!s.service_next().has_value());
}

// --- per-facade thread binding -----------------------------------------------
// Regression: bound_pid used to be one static thread_local shared by every
// ServiceFacade<T>, so binding pid 1 on a wider facade clobbered the pid-0
// binding on a single-proc one and forwarded the out-of-range slot to its
// backing tree. Bindings must be per-(facade, thread) and survive moves.
void test_per_facade_binding() {
  auto a = make("dwrr:1:ubq", /*procs=*/1);
  auto b = make("dwrr:1:ubq", /*procs=*/2);
  a.bind_thread(0);
  b.bind_thread(1);  // must not disturb a's binding
  a.enqueue(0, 1);
  b.enqueue(0, 2);
  auto ga = a.service_next();
  CHECK(ga.has_value() && ga->value == 1);
  auto gb = b.service_next();
  CHECK(gb.has_value() && gb->value == 2);
  // The binding travels with a moved facade.
  auto c = std::move(a);
  c.enqueue(0, 3);
  auto gc = c.service_next();
  CHECK(gc.has_value() && gc->value == 3);
}

// --- service-key parsing -----------------------------------------------------
void test_service_keys() {
  auto throws = [](const std::string& key) {
    try {
      api::QueueConfig cfg;
      (void)api::make_service<uint64_t>(key, cfg);
    } catch (const std::invalid_argument&) {
      return true;
    }
    return false;
  };
  // Malformed dwrr keys and bad backings are loud.
  CHECK(throws("dwrr"));
  CHECK(throws("dwrr:"));
  CHECK(throws("dwrr:4"));
  CHECK(throws("dwrr:4:"));
  CHECK(throws("dwrr:0:ubq"));
  CHECK(throws("dwrr:-1:ubq"));
  CHECK(throws("dwrr:x:ubq"));
  CHECK(throws("dwrr:4x:ubq"));
  CHECK(throws("dwrr:5000:ubq"));   // over the 4096 cap
  CHECK(throws("dwrr:4:nosuch"));   // unknown backing
  CHECK(throws("dwrr:4:kp:1"));     // parameterized non-parameterized queue
  CHECK(throws("dwrr:4:wfvec"));    // vectors can't back a service
  CHECK(throws("nosched:4:ubq"));   // unknown discipline
  // Non-dwrr names pass through as "not a service key" (nullopt), so the
  // factory reports unknown-service; parse returns nullopt, not a throw.
  CHECK(!api::parse_service_key("ubq").has_value());
  CHECK(!api::parse_service_key("dwrrx").has_value());

  // Good keys build, including a parameterized backing.
  auto a = make("dwrr:4:ubq");
  CHECK_EQ(a.tenants(), 4);
  CHECK_EQ(a.backing(), std::string("ubq"));
  auto b = make("dwrr:2:bounded:g=4");
  CHECK_EQ(b.tenants(), 2);
  CHECK_EQ(b.backing(), std::string("bounded:g=4"));
  auto c = make("dwrr:1:faaq");
  c.bind_thread(0);
  c.enqueue(0, 9);
  auto got = c.service_next();
  CHECK(got.has_value() && got->value == 9);

  // Out-of-range tenant ids and zero weights are loud too.
  bool threw = false;
  try {
    a.enqueue(4, 1);
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);
  threw = false;
  try {
    a.set_weight(0, 0);
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);
}

// --- ZipfTraffic -------------------------------------------------------------
void test_zipf_traffic() {
  // Deterministic: same (n, skew, seed, burst) => same sequence.
  svc::ZipfTraffic a(8, 1.2, 7, 4), b(8, 1.2, 7, 4);
  for (int i = 0; i < 200; ++i) CHECK_EQ(a.next(), b.next());
  // Burst grouping: arrivals come in runs of exactly `burst`.
  svc::ZipfTraffic c(8, 0.9, 3, 5);
  for (int i = 0; i < 40; ++i) {
    int first = c.next();
    for (int k = 1; k < 5; ++k) CHECK_EQ(c.next(), first);
  }
  // Skew orders tenants: with heavy skew, tenant 0 dominates tenant 7.
  svc::ZipfTraffic d(8, 1.8, 11);
  int count0 = 0, count7 = 0;
  for (int i = 0; i < 4000; ++i) {
    int t = d.next();
    CHECK(t >= 0 && t < 8);
    count0 += (t == 0) ? 1 : 0;
    count7 += (t == 7) ? 1 : 0;
  }
  CHECK(count0 > 10 * count7);
  // Skew 0 is uniform-ish: every tenant shows up with a sane share.
  svc::ZipfTraffic e(4, 0.0, 13);
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[e.next()];
  for (int t = 0; t < 4; ++t) CHECK(counts[t] > 700 && counts[t] < 1300);
  // Constructor rejects nonsense.
  auto ctor_throws = [](auto... args) {
    try {
      svc::ZipfTraffic z(args...);
      (void)z;
    } catch (const std::invalid_argument&) {
      return true;
    }
    return false;
  };
  CHECK(ctor_throws(0, 1.0, uint64_t{1}, 1));
  CHECK(ctor_throws(4, -0.5, uint64_t{1}, 1));
  CHECK(ctor_throws(4, 1.0, uint64_t{1}, 0));
}

// --- round estimate ----------------------------------------------------------
void test_round_estimate() {
  auto s = make("dwrr:4:ubq");
  s.bind_thread(0);
  for (uint64_t i = 0; i < 200; ++i)
    for (int t = 0; t < 4; ++t) s.enqueue(t, i);
  for (int k = 0; k < 160; ++k) CHECK(s.service_next().has_value());
  // Equal weights, all backlogged: 4 items per round, ~40 rounds.
  CHECK(s.rounds() >= 38 && s.rounds() <= 41);
  CHECK(s.round_service_estimate() > 3.5 && s.round_service_estimate() < 4.5);
}

}  // namespace

int main() {
  test_weighted_accounting();
  test_deactivation_reactivation();
  test_differential_vs_rr_model();
  test_sim_deterministic_order();
  test_concurrent_activation_stress();
  test_per_facade_binding();
  test_service_keys();
  test_zipf_traffic();
  test_round_estimate();
  return wfq::test::exit_code();
}
