// Broker end-to-end (ISSUE 8 satellite): an in-process Broker on a temp UDS
// socket, driven through real sockets by the same loadgen the binary wraps.
// Checks, per the acceptance list: K messages spread over 4 shards arrive,
// FIFO-per-key holds (per-connection sequence values dequeue in send
// order), enq == deq in the drained broker's counters, the SIGTERM drain
// path (stop()) answers everything already read, and the STAT surface
// (JSON payload + space cache + dwrr tenant rows) is coherent. Also built
// with WFQ_NET_FORCE_POLL as broker_e2e_poll_test, covering the poll(2)
// event-loop fallback on the identical scenario.
#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.hpp"
#include "broker/loadgen.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "tests/test_util.hpp"

using namespace wfq;

namespace {

std::string temp_uds_path(const char* tag) {
  return "/tmp/wfq-e2e-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

/// Blocking request/response helper for hand-rolled protocol checks.
struct TestClient {
  net::FdHandle fd;
  net::Decoder dec;

  explicit TestClient(const std::string& uds) : fd(net::connect_uds(uds)) {}
  bool ok() const { return fd.valid(); }

  void send(const net::Frame& f) {
    std::string wire;
    net::encode_frame(f, wire);
    CHECK(net::write_all(fd.get(), wire));
  }

  net::Frame recv() {
    net::Frame f;
    char buf[65536];
    while (true) {
      net::DecodeStatus st = dec.next(f);
      if (st == net::DecodeStatus::ok) return f;
      CHECK(st == net::DecodeStatus::need_more);
      ssize_t n = ::read(fd.get(), buf, sizeof(buf));
      CHECK(n > 0);
      if (n <= 0) return f;  // CHECK already failed; avoid spinning
      dec.feed(buf, static_cast<size_t>(n));
    }
  }
};

/// K msgs over C connections onto 4 shards; every response arrives, the
/// counters balance, and the drained broker ends empty.
void test_throughput_and_counters(const std::string& backing) {
  const int kShards = 4;
  const int kConns = 6;
  const int64_t kMsgs = 2'000;  // per connection; even => pairs balance
  broker::BrokerConfig bcfg;
  bcfg.shards = kShards;
  bcfg.backing = backing;
  bcfg.uds_path = temp_uds_path("tput");
  bcfg.expected_ops = kConns * kMsgs + 4096;
  broker::Broker b(bcfg);
  b.start();

  broker::LoadgenConfig lcfg;
  lcfg.uds_path = bcfg.uds_path;
  lcfg.connections = kConns;
  lcfg.msgs_per_conn = kMsgs;
  lcfg.window = 8;
  broker::LoadgenResult r = broker::run_loadgen(lcfg);
  b.stop();

  CHECK(!r.connect_failed);
  CHECK_EQ(r.sent, static_cast<uint64_t>(kConns * kMsgs));
  CHECK_EQ(r.acked, r.sent);
  CHECK_EQ(r.errors, uint64_t{0});
  CHECK_EQ(r.latencies_us.size(), static_cast<size_t>(r.acked));

  broker::Broker::ShardCounters t = b.totals();
  // Pairs on an initially empty broker: every DEQ follows this key's ENQ
  // through one FIFO pipeline, so no DEQ ever finds the shard empty.
  CHECK_EQ(t.enq, static_cast<uint64_t>(kConns * kMsgs / 2));
  CHECK_EQ(t.deq_hit, t.enq);  // enq == deq: the broker drained empty
  CHECK_EQ(t.deq_empty, uint64_t{0});
  CHECK_EQ(t.bad, uint64_t{0});
}

/// FIFO-per-key: each connection enqueues an ascending sequence, then
/// dequeues everything back and must see its own values in send order.
/// DEQ pops the *shard's* head (keys sharing a shard share its queue), so
/// isolation needs one shard per key: pick kConns keys with pairwise
/// distinct shard routes, same salting idea loadgen's callers use.
void test_fifo_per_key() {
  const int kShards = 5;
  const int kConns = 5;
  const uint64_t kItems = 300;
  broker::BrokerConfig bcfg;
  bcfg.shards = kShards;
  bcfg.backing = "ubq";
  bcfg.uds_path = temp_uds_path("fifo");

  std::vector<uint32_t> keys;
  {
    std::vector<bool> taken(static_cast<size_t>(kShards), false);
    for (uint32_t k = 100; keys.size() < static_cast<size_t>(kConns); ++k) {
      int s = static_cast<int>(broker::mix_key(k) %
                               static_cast<uint64_t>(kShards));
      if (!taken[static_cast<size_t>(s)]) {
        taken[static_cast<size_t>(s)] = true;
        keys.push_back(k);
      }
    }
  }

  broker::Broker b(bcfg);
  b.start();

  std::vector<std::thread> threads;
  for (int c = 0; c < kConns; ++c) {
    threads.emplace_back([&, c] {
      TestClient cl(bcfg.uds_path);
      CHECK(cl.ok());
      if (!cl.ok()) return;
      const uint32_t key = keys[static_cast<size_t>(c)];
      const uint64_t tag = static_cast<uint64_t>(c) << 32;
      // Phase 1: enqueue 0..kItems-1 (tagged), pipelined without waiting.
      std::string wire;
      for (uint64_t i = 0; i < kItems; ++i) {
        net::Frame f;
        f.op = net::Opcode::enq;
        f.key = key;
        f.payload = net::encode_value(tag | i);
        net::encode_frame(f, wire);
      }
      CHECK(net::write_all(cl.fd.get(), wire));
      for (uint64_t i = 0; i < kItems; ++i)
        CHECK(cl.recv().op == net::Opcode::enq_ok);
      // Phase 2: dequeue them back — strictly ascending, all ours.
      for (uint64_t i = 0; i < kItems; ++i) {
        net::Frame req;
        req.op = net::Opcode::deq;
        req.key = key;
        cl.send(req);
        net::Frame resp = cl.recv();
        CHECK(resp.op == net::Opcode::deq_ok);
        CHECK_EQ(resp.key, key);  // responses echo the routing key
        uint64_t v = 0;
        CHECK(net::decode_value(resp.payload, v));
        CHECK_EQ(v, tag | i);  // FIFO per key, nobody else's items
      }
    });
  }
  for (std::thread& t : threads) t.join();
  b.stop();
  broker::Broker::ShardCounters t = b.totals();
  CHECK_EQ(t.enq, static_cast<uint64_t>(kConns) * kItems);
  CHECK_EQ(t.deq_hit, t.enq);
}

/// The SIGTERM drain contract, minus the actual signal (broker_main wires
/// SIGTERM to exactly this stop() call): requests already written to the
/// socket are answered before the broker stops. A burst is written, stop()
/// races it, and afterwards counters must show enq == deq_hit + items left
/// (here: pure PINGs, so every one read before shutdown got a PONG and the
/// socket then closed cleanly).
void test_drain_on_stop() {
  broker::BrokerConfig bcfg;
  bcfg.shards = 2;
  bcfg.backing = "ubq";
  bcfg.uds_path = temp_uds_path("drain");
  broker::Broker b(bcfg);
  b.start();

  TestClient cl(bcfg.uds_path);
  CHECK(cl.ok());
  const int kBurst = 500;
  std::string wire;
  for (int i = 0; i < kBurst; ++i) {
    net::Frame f;
    f.op = net::Opcode::ping;
    f.key = static_cast<uint32_t>(i);
    f.payload = "drain";
    net::encode_frame(f, wire);
  }
  CHECK(net::write_all(cl.fd.get(), wire));
  b.stop();  // the SIGTERM path: drain what was read, flush, then close

  // Everything the broker READ before stopping was answered; the kernel
  // may have truncated the tail of the burst at close. Count PONGs until
  // EOF and match against the broker's own PING counter.
  uint64_t pongs = 0;
  char buf[65536];
  ssize_t n;
  while ((n = ::read(cl.fd.get(), buf, sizeof(buf))) > 0) {
    cl.dec.feed(buf, static_cast<size_t>(n));
    net::Frame f;
    while (cl.dec.next(f) == net::DecodeStatus::ok) {
      CHECK(f.op == net::Opcode::pong);
      CHECK_EQ(f.payload, std::string("drain"));
      ++pongs;
    }
  }
  CHECK(cl.dec.at_eof() == net::DecodeStatus::ok);  // no torn frame
  CHECK_EQ(pongs, b.totals().ping);
}

/// STAT surface: JSON payload names the schema, per-shard enq counters sum
/// to the traffic, the bounded backing publishes its space cache, and a
/// dwrr backing reports per-tenant rows through the same opcode.
void test_stat_surface() {
  {  // queue backing with a space debug surface
    broker::BrokerConfig bcfg;
    bcfg.shards = 2;
    bcfg.backing = "bounded:g=64";
    bcfg.uds_path = temp_uds_path("stat");
    broker::Broker b(bcfg);
    b.start();
    TestClient cl(bcfg.uds_path);
    CHECK(cl.ok());
    for (uint32_t i = 0; i < 1500; ++i) {  // > space-cache refresh period
      net::Frame f;
      f.op = net::Opcode::enq;
      f.key = i;
      f.payload = net::encode_value(i);
      cl.send(f);
      CHECK(cl.recv().op == net::Opcode::enq_ok);
    }
    net::Frame req;
    req.op = net::Opcode::stat;
    cl.send(req);
    net::Frame resp = cl.recv();
    CHECK(resp.op == net::Opcode::stat_ok);
    const std::string& j = resp.payload;
    CHECK(j.find("\"schema\":\"wfq-broker-stat-v1\"") != std::string::npos);
    CHECK(j.find("\"backing\":\"bounded:g=64\"") != std::string::npos);
    CHECK(j.find("\"shard\":1") != std::string::npos);
    // A STAT batch makes the handling servicer refresh its own shards'
    // space cache, so the bounded queue's live-block count is present.
    CHECK(j.find("\"live_blocks\":") != std::string::npos);
    b.stop();
    CHECK_EQ(b.totals().enq, uint64_t{1500});
    CHECK_EQ(b.totals().stat, uint64_t{1});
  }
  {  // dwrr service backing: tenant rows, tenant id echoed in DEQ flags
    broker::BrokerConfig bcfg;
    bcfg.shards = 1;
    bcfg.backing = "dwrr:4:ubq";
    bcfg.uds_path = temp_uds_path("dwrr");
    broker::Broker b(bcfg);
    b.start();
    TestClient cl(bcfg.uds_path);
    CHECK(cl.ok());
    for (uint32_t key = 0; key < 8; ++key) {  // keys 0..7 -> tenants 0..3
      net::Frame f;
      f.op = net::Opcode::enq;
      f.key = key;
      f.payload = net::encode_value(key);
      cl.send(f);
      CHECK(cl.recv().op == net::Opcode::enq_ok);
    }
    for (int i = 0; i < 8; ++i) {
      net::Frame req;
      req.op = net::Opcode::deq;
      req.key = 0;  // shard routing; the DWRR scheduler picks the tenant
      cl.send(req);
      net::Frame resp = cl.recv();
      CHECK(resp.op == net::Opcode::deq_ok);
      CHECK(resp.flags < 4);  // serviced tenant id rides the flags field
    }
    net::Frame req;
    req.op = net::Opcode::stat;
    cl.send(req);
    net::Frame resp = cl.recv();
    CHECK(resp.op == net::Opcode::stat_ok);
    CHECK(resp.payload.find("\"tenants\":[") != std::string::npos);
    CHECK(resp.payload.find("\"serviced\":2") != std::string::npos);
    b.stop();
  }
}

/// Protocol edges over a live socket: bad ENQ payload gets a typed ERR (and
/// the connection survives); a response-band opcode as a request gets ERR;
/// DEQ on an empty shard reports deq_empty; PING echoes; a client speaking
/// garbage is disconnected.
void test_protocol_edges() {
  broker::BrokerConfig bcfg;
  bcfg.shards = 2;
  bcfg.backing = "ubq";
  bcfg.uds_path = temp_uds_path("edges");
  broker::Broker b(bcfg);
  b.start();

  {
    TestClient cl(bcfg.uds_path);
    CHECK(cl.ok());
    net::Frame f;
    f.op = net::Opcode::enq;
    f.key = 1;
    f.payload = "short";  // not 8 bytes
    cl.send(f);
    net::Frame resp = cl.recv();
    CHECK(resp.op == net::Opcode::err);
    CHECK(resp.payload.find("8 bytes") != std::string::npos);

    f.op = net::Opcode::pong;  // response-band opcode as a request
    f.payload.clear();
    cl.send(f);
    resp = cl.recv();
    CHECK(resp.op == net::Opcode::err);

    f.op = net::Opcode::deq;
    cl.send(f);
    CHECK(cl.recv().op == net::Opcode::deq_empty);

    f.op = net::Opcode::ping;
    f.payload = "hello";
    cl.send(f);
    resp = cl.recv();
    CHECK(resp.op == net::Opcode::pong);
    CHECK_EQ(resp.payload, std::string("hello"));
  }
  {
    net::FdHandle fd = net::connect_uds(bcfg.uds_path);
    CHECK(fd.valid());
    CHECK(net::write_all(fd.get(), "this is not a wfb-v1 frame at all"));
    // The broker answers with a best-effort ERR frame and closes. Read to
    // EOF — the close is the contract, the ERR is a courtesy.
    char buf[4096];
    while (::read(fd.get(), buf, sizeof(buf)) > 0) {
    }
  }
  b.stop();
  CHECK_EQ(b.totals().bad, uint64_t{2});  // short ENQ + response-band op
}

/// Open-loop smoke: paced arrivals complete, sojourn latencies recorded.
void test_open_loop_smoke() {
  broker::BrokerConfig bcfg;
  bcfg.shards = 2;
  bcfg.backing = "ubq";
  bcfg.uds_path = temp_uds_path("open");
  broker::Broker b(bcfg);
  b.start();

  broker::LoadgenConfig lcfg;
  lcfg.uds_path = bcfg.uds_path;
  lcfg.connections = 2;
  lcfg.msgs_per_conn = 200;
  lcfg.mode = broker::LoadgenConfig::Mode::open;
  lcfg.rate_per_conn = 5'000;
  lcfg.window = 64;
  broker::LoadgenResult r = broker::run_loadgen(lcfg);
  b.stop();
  CHECK(!r.connect_failed);
  CHECK_EQ(r.acked, uint64_t{400});
  CHECK_EQ(r.latencies_us.size(), size_t{400});
}

/// TCP path: the same broker core behind a loopback TCP listener.
void test_tcp_transport() {
  broker::BrokerConfig bcfg;
  bcfg.shards = 2;
  bcfg.backing = "ubq";
  bcfg.tcp_port = 0;  // kernel-picked
  broker::Broker b(bcfg);
  b.start();
  CHECK(b.tcp_port() != 0);

  broker::LoadgenConfig lcfg;
  lcfg.tcp_port = b.tcp_port();
  lcfg.connections = 3;
  lcfg.msgs_per_conn = 400;
  lcfg.window = 4;
  broker::LoadgenResult r = broker::run_loadgen(lcfg);
  b.stop();
  CHECK(!r.connect_failed);
  CHECK_EQ(r.acked, uint64_t{3 * 400});
  CHECK_EQ(r.errors, uint64_t{0});
  CHECK_EQ(b.totals().enq, b.totals().deq_hit);
}

}  // namespace

int main() {
  test_throughput_and_counters("ubq");
  test_throughput_and_counters("bounded:g=64");
  test_throughput_and_counters("dwrr:4:ubq");
  test_fifo_per_key();
  test_drain_on_stop();
  test_stat_surface();
  test_protocol_edges();
  test_open_loop_smoke();
  test_tcp_transport();
  return wfq::test::exit_code();
}
