// Determinism of the cooperative simulator: the step interleaving (trace) is
// a pure function of the policy and the program, so two identical runs — OS
// scheduling notwithstanding — must produce bit-identical traces, and a
// different adversary seed must (for this workload) produce a different one.
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/unbounded_queue.hpp"
#include "platform/platform.hpp"
#include "sim/scheduler.hpp"
#include "test_util.hpp"

namespace {

using Queue = wfq::core::UnboundedQueue<uint64_t, wfq::platform::SimPlatform>;

/// Runs a fixed mixed workload on p simulated processes; returns the trace.
std::vector<int> run_workload(std::unique_ptr<wfq::sim::SchedulingPolicy> pol) {
  constexpr int kProcs = 6;
  Queue q(kProcs);
  wfq::sim::Scheduler sched(std::move(pol));
  std::vector<std::function<void()>> bodies;
  for (int pid = 0; pid < kProcs; ++pid) {
    bodies.emplace_back([&q, pid] {
      q.bind_thread(pid);
      for (int k = 0; k < 12; ++k) {
        if (k % 3 == 2) {
          (void)q.dequeue();
        } else {
          q.enqueue((static_cast<uint64_t>(pid) << 32) |
                    static_cast<uint64_t>(k));
        }
      }
    });
  }
  sched.run(std::move(bodies));
  return sched.trace();
}

}  // namespace

int main() {
  // Same policy, two runs: identical interleaving, step for step.
  auto rr1 = run_workload(std::make_unique<wfq::sim::RoundRobinPolicy>());
  auto rr2 = run_workload(std::make_unique<wfq::sim::RoundRobinPolicy>());
  CHECK(!rr1.empty());
  CHECK(rr1 == rr2);

  auto ra = run_workload(std::make_unique<wfq::sim::RandomPolicy>(42));
  auto rb = run_workload(std::make_unique<wfq::sim::RandomPolicy>(42));
  CHECK(!ra.empty());
  CHECK(ra == rb);

  // A different seed drives a different schedule (same total work).
  auto rc = run_workload(std::make_unique<wfq::sim::RandomPolicy>(43));
  CHECK(ra != rc);

  // Round-robin really is lock-step: within any window of live processes the
  // pids cycle; check the first full round explicitly.
  for (int i = 0; i < 6; ++i) CHECK_EQ(rr1[static_cast<size_t>(i)], i);

  return wfq::test::exit_code();
}
