// Determinism of the cooperative simulator: the step interleaving (trace) is
// a pure function of the policy and the program, so two identical runs — OS
// scheduling notwithstanding — must produce bit-identical traces, and a
// different adversary seed must (for this workload) produce a different one.
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include <stdexcept>
#include <string>

#include "core/unbounded_queue.hpp"
#include "platform/platform.hpp"
#include "sim/adversary.hpp"
#include "sim/scheduler.hpp"
#include "test_util.hpp"

namespace {

using Queue = wfq::core::UnboundedQueue<uint64_t, wfq::platform::SimPlatform>;

/// Runs a fixed mixed workload on p simulated processes; returns the trace.
std::vector<int> run_workload(std::unique_ptr<wfq::sim::SchedulingPolicy> pol) {
  constexpr int kProcs = 6;
  Queue q(kProcs);
  wfq::sim::Scheduler sched(std::move(pol));
  std::vector<std::function<void()>> bodies;
  for (int pid = 0; pid < kProcs; ++pid) {
    bodies.emplace_back([&q, pid] {
      q.bind_thread(pid);
      for (int k = 0; k < 12; ++k) {
        if (k % 3 == 2) {
          (void)q.dequeue();
        } else {
          q.enqueue((static_cast<uint64_t>(pid) << 32) |
                    static_cast<uint64_t>(k));
        }
      }
    });
  }
  sched.run(std::move(bodies));
  return sched.trace();
}

bool make_policy_throws(const std::string& spec) {
  try {
    (void)wfq::sim::make_policy(spec);
  } catch (const std::invalid_argument&) {
    return true;
  }
  return false;
}

/// The adversary factory must replay exactly like hand-constructed policies,
/// and seed handling must be explicit: seed 0 (the xorshift64* fixed point,
/// previously remapped silently to a magic constant) is rejected both at the
/// RandomPolicy constructor and in the "random:<seed>" spec.
void factory_and_seed_handling() {
  // Factory-built policies replay the hand-constructed schedules.
  CHECK(run_workload(wfq::sim::make_policy("round-robin")) ==
        run_workload(std::make_unique<wfq::sim::RoundRobinPolicy>()));
  CHECK(run_workload(wfq::sim::make_policy("random:42")) ==
        run_workload(std::make_unique<wfq::sim::RandomPolicy>(42)));

  // Seed 0 is an error, not a silent remap; so are malformed specs.
  bool ctor_threw = false;
  try {
    wfq::sim::RandomPolicy p0(0);
  } catch (const std::invalid_argument&) {
    ctor_threw = true;
  }
  CHECK(ctor_threw);
  CHECK(make_policy_throws("random:0"));
  CHECK(make_policy_throws("random"));      // seed is required
  CHECK(make_policy_throws("random:"));     // empty seed
  CHECK(make_policy_throws("random:abc"));  // non-numeric seed
  CHECK(make_policy_throws("random:7x"));   // trailing garbage
  CHECK(make_policy_throws("random:-1"));   // stoull would wrap to 2^64-1
  CHECK(make_policy_throws("random:+7"));   // digits only, no sign
  CHECK(make_policy_throws("no-such-adversary"));
  // ...and seed 1 (the old magic remap would have hidden it) is fine and
  // distinct from other seeds.
  CHECK(run_workload(wfq::sim::make_policy("random:1")) ==
        run_workload(wfq::sim::make_policy("random:1")));
  CHECK(run_workload(wfq::sim::make_policy("random:1")) !=
        run_workload(wfq::sim::make_policy("random:2")));

  // The targeted anti-FAA adversary is registered and deterministic.
  auto af1 = run_workload(wfq::sim::make_policy("anti-faa"));
  auto af2 = run_workload(wfq::sim::make_policy("anti-faa"));
  CHECK(!af1.empty());
  CHECK(af1 == af2);
}

/// The bursty:<on>:<off> adversary (ISSUE 7): strict spec parsing in the
/// random:<seed> style, deterministic replay, and the burst structure
/// itself — the trace opens with `on` consecutive steps of one pid.
void bursty_policy() {
  // Malformed spellings are loud errors, never silent defaults.
  CHECK(make_policy_throws("bursty"));        // both lengths required
  CHECK(make_policy_throws("bursty:"));       // ditto
  CHECK(make_policy_throws("bursty:3"));      // off is required
  CHECK(make_policy_throws("bursty:3:"));     // empty off
  CHECK(make_policy_throws("bursty::5"));     // empty on
  CHECK(make_policy_throws("bursty:0:5"));    // zero-length burst
  CHECK(make_policy_throws("bursty:a:5"));    // non-numeric on
  CHECK(make_policy_throws("bursty:3:b"));    // non-numeric off
  CHECK(make_policy_throws("bursty:3:5:7"));  // trailing field
  CHECK(make_policy_throws("bursty:-1:5"));   // stoull would wrap
  CHECK(make_policy_throws("bursty:3x:5"));   // trailing garbage in on

  // off = 0 is legal (bursts with no cooldown); ctor-level on = 0 throws
  // like the spec-level spelling.
  CHECK(!make_policy_throws("bursty:1:0"));
  bool ctor_threw = false;
  try {
    wfq::sim::BurstyPolicy p(0, 5);
  } catch (const std::invalid_argument&) {
    ctor_threw = true;
  }
  CHECK(ctor_threw);

  // Deterministic replay; different burst shapes give different schedules.
  auto b1 = run_workload(wfq::sim::make_policy("bursty:3:5"));
  auto b2 = run_workload(wfq::sim::make_policy("bursty:3:5"));
  CHECK(!b1.empty());
  CHECK(b1 == b2);
  CHECK(b1 != run_workload(wfq::sim::make_policy("bursty:4:5")));

  // Burst structure: with on=4 the trace starts with 4 steps of one pid,
  // then switches to a different one.
  auto b4 = run_workload(wfq::sim::make_policy("bursty:4:0"));
  CHECK(b4.size() > 5);
  for (int i = 1; i < 4; ++i)
    CHECK_EQ(b4[static_cast<size_t>(i)], b4[0]);
  CHECK(b4[4] != b4[0]);
}

}  // namespace

int main() {
  // Same policy, two runs: identical interleaving, step for step.
  auto rr1 = run_workload(std::make_unique<wfq::sim::RoundRobinPolicy>());
  auto rr2 = run_workload(std::make_unique<wfq::sim::RoundRobinPolicy>());
  CHECK(!rr1.empty());
  CHECK(rr1 == rr2);

  auto ra = run_workload(std::make_unique<wfq::sim::RandomPolicy>(42));
  auto rb = run_workload(std::make_unique<wfq::sim::RandomPolicy>(42));
  CHECK(!ra.empty());
  CHECK(ra == rb);

  // A different seed drives a different schedule (same total work).
  auto rc = run_workload(std::make_unique<wfq::sim::RandomPolicy>(43));
  CHECK(ra != rc);

  // Round-robin really is lock-step: within any window of live processes the
  // pids cycle; check the first full round explicitly.
  for (int i = 0; i < 6; ++i) CHECK_EQ(rr1[static_cast<size_t>(i)], i);

  factory_and_seed_handling();
  bursty_policy();

  return wfq::test::exit_code();
}
