// End-to-end raft cluster test (ISSUE 10): three REAL broker processes in
// --cluster mode on loopback TCP, driven through the same ClusterClient the
// loadgen uses. Covers the full deployment story the sim suite cannot:
// wfb-v1 raft frames over real sockets, the replicated-config bootstrap
// (every replica builds its ShardMap from the committed cfg entry, not its
// CLI), the ERR_NOT_LEADER + leader-hint redirect contract, commit-then-ack
// SETW, and leader failover under SIGKILL — the client must ride it out and
// the replicated weight must survive on the new leader. Survivors must then
// drain cleanly on SIGTERM (exit 0).
//
// argv[1] = path to the broker binary (wired up by tests/CMakeLists.txt as
// $<TARGET_FILE:broker>).
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "broker/loadgen.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "tests/test_util.hpp"

using namespace wfq;

namespace {

/// Kernel-assigned free loopback port: bind :0, read it back, close. The
/// tiny close-to-reuse window is acceptable for a test on loopback.
uint16_t pick_free_port() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0);
  socklen_t len = sizeof(addr);
  CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

pid_t spawn_replica(const std::string& broker_bin, int id,
                    const std::string& peers_csv) {
  pid_t pid = ::fork();
  CHECK(pid >= 0);
  if (pid == 0) {
    std::string cluster = std::to_string(id) + "/3";
    const char* argv[] = {broker_bin.c_str(), "--cluster",  cluster.c_str(),
                          "--peers",          peers_csv.c_str(),
                          "--backing",        "dwrr:4:ubq",
                          "--shards",         "2",
                          "--election-ms",    "150",
                          nullptr};
    ::execv(broker_bin.c_str(), const_cast<char**>(argv));
    std::perror("execv broker");
    _exit(127);
  }
  return pid;
}

/// Waits until the port accepts a TCP connection (replica listener up).
void wait_listening(uint16_t port, int deadline_ms) {
  auto start = std::chrono::steady_clock::now();
  while (true) {
    net::FdHandle fd = net::connect_tcp_timeout(port, 100);
    if (fd.valid()) return;
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    CHECK(ms < deadline_ms);
    if (ms >= deadline_ms) return;  // CHECK records; don't spin forever
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// One raw request/response against a SPECIFIC replica — no redirects. Used
/// to assert what a follower says, which ClusterClient hides by design.
bool raw_request(uint16_t port, const net::Frame& req, net::Frame& resp,
                 uint64_t timeout_ms = 2000) {
  net::FdHandle fd = net::connect_tcp_timeout(port, timeout_ms);
  if (!fd.valid()) return false;
  net::set_recv_timeout(fd.get(), timeout_ms);
  net::set_send_timeout(fd.get(), timeout_ms);
  std::string wire;
  net::encode_frame(req, wire);
  if (!net::write_all(fd.get(), wire)) return false;
  net::Decoder dec;
  char buf[65536];
  while (true) {
    ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n <= 0) return false;
    dec.feed(buf, static_cast<size_t>(n));
    net::DecodeStatus st = dec.next(resp);
    if (st == net::DecodeStatus::ok) return true;
    if (st != net::DecodeStatus::need_more) return false;
  }
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

net::Frame make_enq(uint32_t key, uint64_t value) {
  net::Frame f;
  f.op = net::Opcode::enq;
  f.key = key;
  f.payload = net::encode_value(value);
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  CHECK(argc > 1);  // broker binary path required
  if (argc <= 1) return wfq::test::exit_code();
  const std::string broker_bin = argv[1];

  std::vector<uint16_t> ports = {pick_free_port(), pick_free_port(),
                                 pick_free_port()};
  std::string peers_csv = std::to_string(ports[0]) + "," +
                          std::to_string(ports[1]) + "," +
                          std::to_string(ports[2]);

  std::vector<pid_t> pids;
  for (int i = 0; i < 3; ++i) pids.push_back(spawn_replica(broker_bin, i,
                                                           peers_csv));
  for (uint16_t p : ports) wait_listening(p, 10'000);

  broker::ClusterClient::Options opts;
  opts.ports = ports;
  opts.give_up_ms = 20'000;
  broker::ClusterClient cc(opts);

  // A leader must emerge and serve: ENQ then DEQ round-trips the value.
  std::optional<net::Frame> r = cc.request(make_enq(11, 0xABCD1234));
  CHECK(r.has_value());
  CHECK(r && r->op == net::Opcode::enq_ok);
  {
    net::Frame deq;
    deq.op = net::Opcode::deq;
    deq.key = 11;
    r = cc.request(deq);
    CHECK(r.has_value());
    CHECK(r && r->op == net::Opcode::deq_ok);
    uint64_t v = 0;
    CHECK(r && net::decode_value(r->payload, v));
    CHECK_EQ(v, uint64_t{0xABCD1234});
  }
  const int leader = cc.current();
  CHECK(leader >= 0 && leader < 3);

  // Redirect contract: a follower answers ENQ with ERR_NOT_LEADER and a
  // hint naming the actual leader (heartbeats have long since spread it).
  {
    int follower = (leader + 1) % 3;
    net::Frame resp;
    CHECK(raw_request(ports[static_cast<size_t>(follower)],
                      make_enq(5, 99), resp));
    CHECK(resp.op == net::Opcode::err_not_leader);
    uint32_t hint = 0;
    CHECK(net::decode_u32(resp.payload, hint));
    CHECK_EQ(hint, static_cast<uint32_t>(leader));
    // Followers still answer STAT — monitoring works where data ops would
    // redirect — and report themselves as follower with ready config. The
    // follower applies the replicated config one commit-carrying heartbeat
    // after the leader, so poll briefly instead of racing it.
    net::Frame stat;
    stat.op = net::Opcode::stat;
    bool follower_ready = false;
    for (int tries = 0; tries < 100 && !follower_ready; ++tries) {
      CHECK(raw_request(ports[static_cast<size_t>(follower)], stat, resp));
      CHECK(resp.op == net::Opcode::stat_ok);
      CHECK(contains(resp.payload, "\"role\":\"follower\""));
      follower_ready = contains(resp.payload, "\"ready\":true");
      if (!follower_ready)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    CHECK(follower_ready);
  }

  // SETW is acked only after commit+apply; the weight must then be visible
  // in the leader's STAT tenant rows.
  {
    net::Frame setw;
    setw.op = net::Opcode::setw;
    setw.payload = net::encode_u32_pair(1, 7);
    r = cc.request(setw);
    CHECK(r.has_value());
    CHECK(r && r->op == net::Opcode::setw_ok);
    net::Frame stat;
    stat.op = net::Opcode::stat;
    r = cc.request(stat);
    CHECK(r.has_value());
    CHECK(r && r->op == net::Opcode::stat_ok);
    CHECK(r && contains(r->payload, "\"role\":\"leader\""));
    CHECK(r && contains(r->payload, "\"tenant\":1,\"weight\":7"));
  }

  // Failover: SIGKILL the leader mid-traffic. The client must ride out the
  // election and land on a new leader within its give_up budget.
  CHECK(::kill(pids[static_cast<size_t>(leader)], SIGKILL) == 0);
  {
    int status = 0;
    CHECK(::waitpid(pids[static_cast<size_t>(leader)], &status, 0) ==
          pids[static_cast<size_t>(leader)]);
    CHECK(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  }
  r = cc.request(make_enq(21, 0x5555));
  CHECK(r.has_value());
  CHECK(r && r->op == net::Opcode::enq_ok);
  const int leader2 = cc.current();
  CHECK(leader2 >= 0 && leader2 < 3 && leader2 != leader);

  // The replicated weight survived the failover: the new leader's STAT
  // still shows tenant 1 at weight 7. This is the PR's core claim — broker
  // metadata lives in the raft log, not in the dead process.
  {
    net::Frame stat;
    stat.op = net::Opcode::stat;
    r = cc.request(stat);
    CHECK(r.has_value());
    CHECK(r && r->op == net::Opcode::stat_ok);
    CHECK(r && contains(r->payload, "\"role\":\"leader\""));
    CHECK(r && contains(r->payload, "\"tenant\":1,\"weight\":7"));
  }

  // Survivors drain cleanly: SIGTERM -> exit 0 (raft silenced first, then
  // the normal drain path — see Broker::stop()).
  for (int i = 0; i < 3; ++i) {
    if (i == leader) continue;
    CHECK(::kill(pids[static_cast<size_t>(i)], SIGTERM) == 0);
  }
  for (int i = 0; i < 3; ++i) {
    if (i == leader) continue;
    int status = 0;
    CHECK(::waitpid(pids[static_cast<size_t>(i)], &status, 0) ==
          pids[static_cast<size_t>(i)]);
    CHECK(WIFEXITED(status));
    CHECK_EQ(WEXITSTATUS(status), 0);
  }
  return wfq::test::exit_code();
}
