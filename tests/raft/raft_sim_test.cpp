// Deterministic raft safety suite (ISSUE 10): hundreds of seeded adversary
// schedules — message drops, 1..10 ms delays, repeated two-sided partitions,
// and permanent single-node crashes — each replayed over a 5-node
// raft::SimCluster. Per schedule the suite asserts the two safety
// properties the subsystem exists for, plus liveness after the adversary
// stops:
//
//   * election safety — leaders_by_term never records two leaders for the
//     same term (observed after EVERY sim event, so one-event leaderships
//     count);
//   * state-machine safety — all replicas' applied sequences agree on
//     their common prefix (index k+1 carries the same command everywhere,
//     crashed nodes included);
//   * post-heal progress — once the network heals, a marker command
//     commits and every live replica applies it, and the live replicas'
//     applied sequences become identical.
//
// A subset of seeds is replayed twice end-to-end and compared bit-for-bit:
// the whole point of the injected-clock/SendFn design is that a seed tuple
// IS the execution.
//
// argv[1] overrides the schedule count (default 200); CI's raft job widens
// it. The wire section exercises raft/wire.hpp: round-trips for all four
// message types and strict rejection of every truncation of an append
// batch.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "raft/sim_cluster.hpp"
#include "raft/wire.hpp"
#include "tests/test_util.hpp"

using namespace wfq;

namespace {

/// Everything observable about one finished schedule, for determinism
/// comparison.
struct ScheduleTrace {
  std::vector<std::vector<raft::SimCluster::Applied>> applied;
  std::map<uint64_t, std::vector<int>> leaders_by_term;
  uint64_t end_ms = 0;

  bool operator==(const ScheduleTrace& o) const {
    if (end_ms != o.end_ms) return false;
    if (leaders_by_term != o.leaders_by_term) return false;
    if (applied.size() != o.applied.size()) return false;
    for (size_t i = 0; i < applied.size(); ++i) {
      if (applied[i].size() != o.applied[i].size()) return false;
      for (size_t k = 0; k < applied[i].size(); ++k)
        if (applied[i][k].index != o.applied[i][k].index ||
            applied[i][k].cmd != o.applied[i][k].cmd)
          return false;
    }
    return true;
  }
};

ScheduleTrace run_schedule(uint64_t seed) {
  raft::SimClusterConfig cfg;
  cfg.nodes = 5;
  cfg.election_timeout_ms = 50;
  cfg.node_seed_base = seed * 977 + 1;
  cfg.net.seed = seed * 31 + 7;
  // NetPolicyConfig defaults already carry the adversary: ~10% drops,
  // 1..10 ms delays, repartition every 100..400 ms.
  raft::SimCluster c(cfg);

  const std::string tag = std::to_string(seed);
  const bool with_crash = seed % 3 == 0;
  const int crash_victim = static_cast<int>(seed % 5);

  // 3000 ms under fire, proposing along the way. Proposals against stale
  // minority-partition leaders are accepted-then-truncated — exactly the
  // histories the prefix check needs to see.
  for (int segment = 0; segment < 6; ++segment) {
    c.run_for(500);
    c.propose("cmd|" + tag + "|" + std::to_string(segment));
    if (with_crash && segment == 2) c.crash(crash_victim);
  }

  // Adversary off; the cluster must now settle and make progress.
  c.heal();
  c.run_for(500);

  bool committed = false;
  for (int attempt = 0; attempt < 50 && !committed; ++attempt) {
    std::string marker = "final|" + tag + "|" + std::to_string(attempt);
    if (!c.propose(marker)) {
      c.run_for(20);
      continue;
    }
    c.run_for(200);
    committed = true;
    for (int i = 0; i < cfg.nodes && committed; ++i) {
      if (!c.alive(i)) continue;
      bool found = false;
      for (const auto& a : c.applied(i)) found |= (a.cmd == marker);
      committed = found;
    }
  }
  CHECK(committed);  // post-heal progress: a marker commits everywhere

  // Let the final commit index ride the heartbeats to every live node.
  c.run_for(300);

  // Election safety: one leader per term, ever.
  for (const auto& [term, ids] : c.leaders_by_term()) {
    (void)term;
    CHECK_EQ(ids.size(), size_t{1});
  }

  // State-machine safety: applies happen in contiguous index order, and
  // any two replicas (crashed ones included) agree on their common prefix.
  for (int i = 0; i < cfg.nodes; ++i) {
    const auto& ai = c.applied(i);
    for (size_t k = 0; k < ai.size(); ++k) CHECK_EQ(ai[k].index, k + 1);
    for (int j = i + 1; j < cfg.nodes; ++j) {
      const auto& aj = c.applied(j);
      size_t common = ai.size() < aj.size() ? ai.size() : aj.size();
      for (size_t k = 0; k < common; ++k) CHECK_EQ(ai[k].cmd, aj[k].cmd);
    }
  }

  // Convergence: with the adversary gone and commits settled, the live
  // replicas' applied sequences are identical, not merely prefix-related.
  int ref = -1;
  for (int i = 0; i < cfg.nodes; ++i)
    if (c.alive(i)) {
      ref = i;
      break;
    }
  CHECK(ref >= 0);
  for (int i = ref + 1; i < cfg.nodes; ++i) {
    if (!c.alive(i)) continue;
    CHECK_EQ(c.applied(i).size(), c.applied(ref).size());
  }
  CHECK(c.current_leader() >= 0);

  ScheduleTrace t;
  for (int i = 0; i < cfg.nodes; ++i) t.applied.push_back(c.applied(i));
  t.leaders_by_term = c.leaders_by_term();
  t.end_ms = c.now();
  return t;
}

/// Same seed, same execution — twice through the full schedule must yield
/// identical applied logs and leadership history.
void test_determinism(uint64_t seed) {
  ScheduleTrace a = run_schedule(seed);
  ScheduleTrace b = run_schedule(seed);
  CHECK(a == b);
}

raft::Message sample_message(raft::Message::Type t) {
  raft::Message m;
  m.type = t;
  m.from = 3;
  m.term = 0x1122334455667788ULL;
  m.last_log_index = 42;
  m.last_log_term = 7;
  m.granted = true;
  m.prev_log_index = 41;
  m.prev_log_term = 6;
  m.leader_commit = 40;
  m.success = true;
  m.match_index = 39;
  if (t == raft::Message::Type::append_req) {
    m.entries.push_back({5, std::string("w|0|3")});
    m.entries.push_back({5, std::string()});  // no-op entry
    m.entries.push_back({6, std::string("cfg|4|dwrr:4:ubq\x00\x01", 18)});
  }
  return m;
}

void expect_messages_equal(const raft::Message& a, const raft::Message& b) {
  CHECK(a.type == b.type);
  CHECK_EQ(a.from, b.from);
  CHECK_EQ(a.term, b.term);
  switch (a.type) {
    case raft::Message::Type::vote_req:
      CHECK_EQ(a.last_log_index, b.last_log_index);
      CHECK_EQ(a.last_log_term, b.last_log_term);
      break;
    case raft::Message::Type::vote_resp:
      CHECK(a.granted == b.granted);
      break;
    case raft::Message::Type::append_req:
      CHECK_EQ(a.prev_log_index, b.prev_log_index);
      CHECK_EQ(a.prev_log_term, b.prev_log_term);
      CHECK_EQ(a.leader_commit, b.leader_commit);
      CHECK_EQ(a.entries.size(), b.entries.size());
      for (size_t i = 0; i < a.entries.size(); ++i) {
        CHECK_EQ(a.entries[i].term, b.entries[i].term);
        CHECK_EQ(a.entries[i].cmd, b.entries[i].cmd);
      }
      break;
    case raft::Message::Type::append_resp:
      CHECK(a.success == b.success);
      CHECK_EQ(a.match_index, b.match_index);
      break;
  }
}

/// raft/wire.hpp: every message type round-trips through a wfb-v1 frame,
/// and decode_body is strict — every truncation of an append batch and any
/// trailing garbage is rejected, not mis-parsed.
void test_wire_round_trip() {
  const raft::Message::Type kTypes[] = {
      raft::Message::Type::vote_req, raft::Message::Type::vote_resp,
      raft::Message::Type::append_req, raft::Message::Type::append_resp};
  for (raft::Message::Type t : kTypes) {
    raft::Message in = sample_message(t);
    net::Frame f = raft::to_frame(in, in.from);
    CHECK(f.op == raft::opcode_for(t));
    CHECK_EQ(f.key, uint32_t{3});
    raft::Message out;
    CHECK(raft::from_frame(f, out));
    expect_messages_equal(in, out);

    // Strictness: every proper prefix of the body is malformed, as is one
    // trailing junk byte.
    for (size_t cut = 0; cut < f.payload.size(); ++cut) {
      raft::Message junk;
      CHECK(!raft::decode_body(t, 3, f.payload.substr(0, cut), junk));
    }
    raft::Message junk;
    CHECK(!raft::decode_body(t, 3, f.payload + "x", junk));
  }

  // Non-raft opcodes never parse as raft messages.
  net::Frame f;
  f.op = net::Opcode::enq;
  raft::Message m;
  CHECK(!raft::from_frame(f, m));
}

}  // namespace

int main(int argc, char** argv) {
  int schedules = 200;
  if (argc > 1) schedules = std::atoi(argv[1]);
  if (schedules < 1) schedules = 1;

  test_wire_round_trip();
  for (int s = 1; s <= schedules; ++s) {
    run_schedule(static_cast<uint64_t>(s));
    // Replaying every schedule twice would double the suite; every 16th
    // seed is enough to catch a nondeterminism regression.
    if (s % 16 == 1) test_determinism(static_cast<uint64_t>(s));
  }
  return wfq::test::exit_code();
}
