// Dependency-free check macros for the tier-1 tests: failures print the
// expression/values and the test exits nonzero at the end of main via
// wfq::test::failures(). Keeps CI portable (no gtest requirement).
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace wfq::test {

inline int& failures() {
  static int n = 0;
  return n;
}

inline int exit_code() {
  if (failures() == 0) {
    std::cout << "OK\n";
    return 0;
  }
  std::cout << failures() << " CHECK(s) FAILED\n";
  return 1;
}

template <typename A, typename B>
void check_eq(const A& a, const B& b, const char* ea, const char* eb,
              const char* file, int line) {
  if (!(a == b)) {
    ++failures();
    std::ostringstream os;
    os << file << ":" << line << ": CHECK_EQ(" << ea << ", " << eb
       << ") failed: " << a << " != " << b << "\n";
    std::cerr << os.str();
  }
}

inline void check(bool ok, const char* expr, const char* file, int line) {
  if (!ok) {
    ++failures();
    std::cerr << file << ":" << line << ": CHECK(" << expr << ") failed\n";
  }
}

}  // namespace wfq::test

#define CHECK(x) ::wfq::test::check((x), #x, __FILE__, __LINE__)
#define CHECK_EQ(a, b) \
  ::wfq::test::check_eq((a), (b), #a, #b, __FILE__, __LINE__)
