// Conformance suite for the unified concurrent-object API: every queue name
// in api::queue_names() — current and future — is run through (a) the
// sequential differential test against std::queue and (b) a short
// simulator-driven linearizability run under each registered adversary
// family (round-robin, seeded random, and the targeted anti-faa schedule).
// Pass a queue name as argv[1] to run one implementation; with no args the
// whole registry is swept, so registering a new queue automatically puts it
// under test. Also covers the registry's error paths and AnyQueue basics.
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/concurrent_queue.hpp"
#include "api/queue_registry.hpp"
#include "sim/adversary.hpp"
#include "sim/scheduler.hpp"
#include "test_util.hpp"

namespace {

using wfq::api::AnyQueue;
using wfq::api::Backend;
using wfq::api::QueueConfig;

/// (a) Randomized differential test against std::queue: single-threaded
/// mixed history with ops issued from rotating bound pids must match the
/// sequential FIFO model exactly, including null dequeues.
void sequential_differential(const std::string& name, uint64_t seed) {
  constexpr int kProcs = 4;
  AnyQueue<uint64_t> q = wfq::api::make_queue<uint64_t>(
      name, QueueConfig{.procs = kProcs, .backend = Backend::real});
  std::queue<uint64_t> model;
  std::mt19937_64 rng(seed);
  uint64_t next_val = 1;
  for (int k = 0; k < 2000; ++k) {
    q.bind_thread(static_cast<int>(rng() % kProcs));
    bool enq = (rng() % 1000) < 550;
    if (enq) {
      q.enqueue(next_val);
      model.push(next_val);
      ++next_val;
    } else {
      std::optional<uint64_t> got = q.dequeue();
      if (model.empty()) {
        CHECK(!got.has_value());
      } else {
        CHECK(got.has_value());
        if (got.has_value()) CHECK_EQ(*got, model.front());
        model.pop();
      }
    }
  }
  while (!model.empty()) {
    std::optional<uint64_t> got = q.dequeue();
    CHECK(got.has_value());
    if (got.has_value()) CHECK_EQ(*got, model.front());
    model.pop();
  }
  CHECK(!q.dequeue().has_value());
}

/// (b) Short sim linearizability run: p processes enqueue then dequeue
/// tagged values under the given adversary; checks no duplicate dequeues,
/// only-enqueued values, per-(consumer, producer) FIFO order, and exact
/// multiset conservation after a drain.
void sim_linearizability(const std::string& name,
                         const std::string& adversary) {
  constexpr int kProcs = 4;
  constexpr int kPerProc = 12;
  AnyQueue<uint64_t> q = wfq::api::make_queue<uint64_t>(
      name, QueueConfig{.procs = kProcs, .backend = Backend::sim});
  std::vector<std::vector<uint64_t>> got(kProcs);
  wfq::sim::Scheduler sched(wfq::sim::make_policy(adversary));
  std::vector<std::function<void()>> bodies;
  for (int pid = 0; pid < kProcs; ++pid) {
    bodies.emplace_back([&q, &got, pid] {
      q.bind_thread(pid);
      for (int k = 0; k < kPerProc; ++k)
        q.enqueue((static_cast<uint64_t>(pid) << 32) |
                  static_cast<uint64_t>(k));
      for (int k = 0; k < kPerProc; ++k) {
        auto r = q.dequeue();
        if (r.has_value()) got[static_cast<size_t>(pid)].push_back(*r);
      }
    });
  }
  sched.run(std::move(bodies));

  std::set<uint64_t> enqueued;
  for (int pid = 0; pid < kProcs; ++pid)
    for (int k = 0; k < kPerProc; ++k)
      enqueued.insert((static_cast<uint64_t>(pid) << 32) |
                      static_cast<uint64_t>(k));

  std::set<uint64_t> dequeued;
  for (const auto& list : got) {
    std::map<uint64_t, int64_t> last_seq;
    for (uint64_t v : list) {
      CHECK(enqueued.count(v) == 1);
      CHECK(dequeued.insert(v).second);  // no duplicates across consumers
      uint64_t producer = v >> 32;
      auto seq = static_cast<int64_t>(v & 0xffffffffu);
      auto it = last_seq.find(producer);
      if (it != last_seq.end()) CHECK(seq > it->second);
      last_seq[producer] = seq;
    }
  }

  q.bind_thread(0);
  for (;;) {
    auto r = q.dequeue();
    if (!r.has_value()) break;
    CHECK(dequeued.insert(*r).second);
  }
  CHECK_EQ(dequeued.size(), enqueued.size());
}

void bounded_key_surface() {
  // Parameterized keys resolve to the "bounded" registry entry and carry
  // their G through the factory; "bq" stays accepted as the pre-PR-4
  // alias, and malformed keys fail loudly with invalid_argument (the
  // random:<seed> policy-spec convention).
  CHECK_EQ(wfq::api::queue_info("bounded:g=7").name, std::string("bounded"));
  CHECK_EQ(wfq::api::queue_info("bq").name, std::string("bounded"));
  for (const char* key : {"bounded:g=2", "bounded:g=-1", "bq", "bounded"}) {
    AnyQueue<uint64_t> q = wfq::api::make_queue<uint64_t>(
        key, QueueConfig{.procs = 2, .backend = Backend::real});
    CHECK(static_cast<bool>(q));
    CHECK_EQ(q.name(), std::string(key));
  }
  for (const char* bad :
       {"bounded:", "bounded:g=", "bounded:g=x", "bounded:g", "bounded:q=4",
        "bounded:g=0", "bounded:g=-2", "bounded:g=1x", "boundedg=4"}) {
    bool threw = false;
    try {
      (void)wfq::api::make_queue<uint64_t>(bad, QueueConfig{});
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    if (!threw) std::cerr << "no throw for key: " << bad << "\n";
  }
  // The space debug surface flows through AnyQueue for the block queues
  // and reads unknown for the lock-based baselines.
  AnyQueue<uint64_t> bq = wfq::api::make_queue<uint64_t>(
      "bounded:g=2", QueueConfig{.procs = 2, .backend = Backend::real});
  bq.bind_thread(0);
  for (uint64_t i = 0; i < 64; ++i) bq.enqueue(i);
  for (uint64_t i = 0; i < 32; ++i) (void)bq.dequeue();
  wfq::api::SpaceStats st = bq.space_stats();
  CHECK(st.known);
  CHECK(st.live_blocks > 0);
  AnyQueue<uint64_t> mq = wfq::api::make_queue<uint64_t>(
      "mutex", QueueConfig{.procs = 2, .backend = Backend::real});
  CHECK(!mq.space_stats().known);
}

void registry_surface() {
  auto names = wfq::api::queue_names();
  CHECK(names.size() >= 7);
  CHECK(names.front() == "ubq");  // the paper's queue leads the registry
  for (const std::string& n : names) {
    const auto& info = wfq::api::queue_info(n);
    CHECK_EQ(info.name, n);
    CHECK(!info.description.empty());
    AnyQueue<uint64_t> q = wfq::api::make_queue<uint64_t>(
        n, QueueConfig{.procs = 2, .backend = Backend::real});
    CHECK(static_cast<bool>(q));
    CHECK_EQ(q.name(), n);
  }
  bool threw = false;
  try {
    (void)wfq::api::make_queue<uint64_t>("no-such-queue", QueueConfig{});
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);
  threw = false;
  try {
    (void)wfq::api::queue_info("no-such-queue");
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);
  // The lock-based baselines are flagged as not step-counted; the
  // platform-templated queues are.
  CHECK(wfq::api::queue_info("ubq").step_counted);
  CHECK(!wfq::api::queue_info("twolock").step_counted);
  CHECK(!wfq::api::queue_info("mutex").step_counted);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  } else {
    names = wfq::api::queue_names();
    // GC-forcing bounded-queue keys: G=2 runs a collection every other
    // operation, so the differential and linearizability sweeps below
    // exercise archive lookups and EBR retirement constantly; G=5 lands
    // collections at op parities the even period never hits.
    names.push_back("bounded:g=2");
    names.push_back("bounded:g=5");
    registry_surface();
    bounded_key_surface();
  }
  for (const std::string& name : names) {
    sequential_differential(name, /*seed=*/0x5eed + name.size());
    sim_linearizability(name, "round-robin");
    sim_linearizability(name, "random:77");
    sim_linearizability(name, "anti-faa");
  }
  return wfq::test::exit_code();
}
