// Conformance suite for the unified concurrent-object API: every object in
// the registry — queues in api::queue_names(), vectors in
// api::vector_names(), current and future — is run through (a) a sequential
// differential test against the matching std:: container and (b) a short
// simulator-driven linearizability run under each registered adversary
// family (round-robin, seeded random, the targeted anti-faa schedule, and
// the stall-refresh schedule that forces second-Refresh paths in the
// ordering tree). Pass an object name as argv[1] to run one implementation;
// with no args the whole registry is swept, so registering a new object
// automatically puts it under test. Also covers the registries' error paths
// and AnyQueue/AnyVector basics.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/concurrent_queue.hpp"
#include "api/concurrent_vector.hpp"
#include "api/queue_registry.hpp"
#include "sim/adversary.hpp"
#include "sim/scheduler.hpp"
#include "test_util.hpp"

namespace {

using wfq::api::AnyQueue;
using wfq::api::AnyVector;
using wfq::api::Backend;
using wfq::api::QueueConfig;

/// Every registered adversary family, as swept below. stall-refresh parks a
/// process right before its pending CAS, so the double-Refresh "both CASes
/// lost" argument is exercised constantly instead of almost never; bursty
/// is the E13 QoS family's bursty-arrival schedule (long exclusive runs
/// with cooldowns).
const char* kAdversaries[] = {"round-robin", "random:77", "anti-faa",
                              "stall-refresh", "bursty:3:7"};

/// (a) Randomized differential test against std::queue: single-threaded
/// mixed history with ops issued from rotating bound pids must match the
/// sequential FIFO model exactly, including null dequeues.
void sequential_differential(const std::string& name, uint64_t seed) {
  constexpr int kProcs = 4;
  AnyQueue<uint64_t> q = wfq::api::make_queue<uint64_t>(
      name, QueueConfig{.procs = kProcs, .backend = Backend::real});
  std::queue<uint64_t> model;
  std::mt19937_64 rng(seed);
  uint64_t next_val = 1;
  for (int k = 0; k < 2000; ++k) {
    q.bind_thread(static_cast<int>(rng() % kProcs));
    bool enq = (rng() % 1000) < 550;
    if (enq) {
      q.enqueue(next_val);
      model.push(next_val);
      ++next_val;
    } else {
      std::optional<uint64_t> got = q.dequeue();
      if (model.empty()) {
        CHECK(!got.has_value());
      } else {
        CHECK(got.has_value());
        if (got.has_value()) CHECK_EQ(*got, model.front());
        model.pop();
      }
    }
  }
  while (!model.empty()) {
    std::optional<uint64_t> got = q.dequeue();
    CHECK(got.has_value());
    if (got.has_value()) CHECK_EQ(*got, model.front());
    model.pop();
  }
  CHECK(!q.dequeue().has_value());
}

/// (b) Short sim linearizability run: p processes enqueue then dequeue
/// tagged values under the given adversary; checks no duplicate dequeues,
/// only-enqueued values, per-(consumer, producer) FIFO order, and exact
/// multiset conservation after a drain.
void sim_linearizability(const std::string& name,
                         const std::string& adversary) {
  constexpr int kProcs = 4;
  constexpr int kPerProc = 12;
  AnyQueue<uint64_t> q = wfq::api::make_queue<uint64_t>(
      name, QueueConfig{.procs = kProcs, .backend = Backend::sim});
  std::vector<std::vector<uint64_t>> got(kProcs);
  wfq::sim::Scheduler sched(wfq::sim::make_policy(adversary));
  std::vector<std::function<void()>> bodies;
  for (int pid = 0; pid < kProcs; ++pid) {
    bodies.emplace_back([&q, &got, pid] {
      q.bind_thread(pid);
      for (int k = 0; k < kPerProc; ++k)
        q.enqueue((static_cast<uint64_t>(pid) << 32) |
                  static_cast<uint64_t>(k));
      for (int k = 0; k < kPerProc; ++k) {
        auto r = q.dequeue();
        if (r.has_value()) got[static_cast<size_t>(pid)].push_back(*r);
      }
    });
  }
  sched.run(std::move(bodies));

  std::set<uint64_t> enqueued;
  for (int pid = 0; pid < kProcs; ++pid)
    for (int k = 0; k < kPerProc; ++k)
      enqueued.insert((static_cast<uint64_t>(pid) << 32) |
                      static_cast<uint64_t>(k));

  std::set<uint64_t> dequeued;
  for (const auto& list : got) {
    std::map<uint64_t, int64_t> last_seq;
    for (uint64_t v : list) {
      CHECK(enqueued.count(v) == 1);
      CHECK(dequeued.insert(v).second);  // no duplicates across consumers
      uint64_t producer = v >> 32;
      auto seq = static_cast<int64_t>(v & 0xffffffffu);
      auto it = last_seq.find(producer);
      if (it != last_seq.end()) CHECK(seq > it->second);
      last_seq[producer] = seq;
    }
  }

  q.bind_thread(0);
  for (;;) {
    auto r = q.dequeue();
    if (!r.has_value()) break;
    CHECK(dequeued.insert(*r).second);
  }
  CHECK_EQ(dequeued.size(), enqueued.size());
}

/// (a') Randomized differential test against std::vector: single-threaded
/// mixed append/get/size history from rotating bound pids. Append must
/// return exactly the index std::vector would assign; get must agree inside
/// the model and be null past its end.
void vector_sequential_differential(const std::string& name, uint64_t seed) {
  constexpr int kProcs = 4;
  AnyVector<uint64_t> v = wfq::api::make_vector<uint64_t>(
      name, QueueConfig{.procs = kProcs, .backend = Backend::real});
  std::vector<uint64_t> model;
  std::mt19937_64 rng(seed);
  uint64_t next_val = 1;
  for (int k = 0; k < 1500; ++k) {
    v.bind_thread(static_cast<int>(rng() % kProcs));
    uint64_t roll = rng() % 1000;
    if (roll < 500) {
      int64_t idx = v.append(next_val);
      CHECK_EQ(idx, static_cast<int64_t>(model.size()));
      model.push_back(next_val);
      ++next_val;
    } else if (roll < 900) {
      // Probe inside the model and a little past its end.
      auto i = static_cast<int64_t>(rng() % (model.size() + 4));
      std::optional<uint64_t> got = v.get(i);
      if (i < static_cast<int64_t>(model.size())) {
        CHECK(got.has_value());
        if (got.has_value()) CHECK_EQ(*got, model[static_cast<size_t>(i)]);
      } else {
        CHECK(!got.has_value());
      }
    } else {
      CHECK_EQ(v.size(), static_cast<int64_t>(model.size()));
    }
  }
  CHECK(!v.get(-1).has_value());
  CHECK_EQ(v.size(), static_cast<int64_t>(model.size()));
}

/// (b') Short sim linearizability run for vectors: p processes append
/// tagged values, immediately re-read their own landing index, and after
/// the run the whole index space must hold every appended value exactly
/// once, with each producer's values at strictly increasing indices (its
/// appends linearize in program order).
void vector_sim_linearizability(const std::string& name,
                                const std::string& adversary) {
  constexpr int kProcs = 4;
  constexpr int kPerProc = 12;
  AnyVector<uint64_t> v = wfq::api::make_vector<uint64_t>(
      name, QueueConfig{.procs = kProcs, .backend = Backend::sim});
  std::vector<std::vector<std::pair<int64_t, uint64_t>>> claims(kProcs);
  wfq::sim::Scheduler sched(wfq::sim::make_policy(adversary));
  std::vector<std::function<void()>> bodies;
  for (int pid = 0; pid < kProcs; ++pid) {
    bodies.emplace_back([&v, &claims, pid] {
      int64_t appended = 0;
      for (int k = 0; k < kPerProc; ++k) {
        uint64_t val = (static_cast<uint64_t>(pid) << 32) |
                       static_cast<uint64_t>(k);
        v.bind_thread(pid);
        int64_t idx = v.append(val);
        ++appended;
        claims[static_cast<size_t>(pid)].emplace_back(idx, val);
        // An append's index is permanent the moment it returns, and size()
        // must already cover it (plus everything this process did before).
        std::optional<uint64_t> got = v.get(idx);
        CHECK(got.has_value());
        if (got.has_value()) CHECK_EQ(*got, val);
        CHECK(v.size() >= appended);
      }
    });
  }
  sched.run(std::move(bodies));

  constexpr int64_t kTotal = int64_t{kProcs} * kPerProc;
  CHECK_EQ(v.size(), kTotal);
  std::set<int64_t> used_indices;
  for (int pid = 0; pid < kProcs; ++pid) {
    int64_t last_idx = -1;
    CHECK_EQ(claims[static_cast<size_t>(pid)].size(),
             static_cast<size_t>(kPerProc));
    for (const auto& [idx, val] : claims[static_cast<size_t>(pid)]) {
      CHECK(idx >= 0 && idx < kTotal);
      CHECK(used_indices.insert(idx).second);  // no two appends share a slot
      CHECK(idx > last_idx);                   // program order -> index order
      last_idx = idx;
      v.bind_thread(0);
      std::optional<uint64_t> got = v.get(idx);
      CHECK(got.has_value());
      if (got.has_value()) CHECK_EQ(*got, val);
    }
  }
  // Full scan: the index space is dense and holds exactly the appended set.
  std::set<uint64_t> seen;
  for (int64_t i = 0; i < kTotal; ++i) {
    std::optional<uint64_t> got = v.get(i);
    CHECK(got.has_value());
    if (got.has_value()) CHECK(seen.insert(*got).second);
  }
  CHECK_EQ(seen.size(), static_cast<size_t>(kTotal));
  CHECK(!v.get(kTotal).has_value());
}

void vector_registry_surface() {
  auto names = wfq::api::vector_names();
  CHECK(names.size() >= 2);
  CHECK(names.front() == "wfvec");  // the tree vector leads the registry
  for (const std::string& n : names) {
    const auto& info = wfq::api::vector_info(n);
    CHECK_EQ(info.name, n);
    CHECK(!info.description.empty());
    AnyVector<uint64_t> v = wfq::api::make_vector<uint64_t>(
        n, QueueConfig{.procs = 2, .backend = Backend::real});
    CHECK(static_cast<bool>(v));
    CHECK_EQ(v.name(), n);
    // object_info resolves both kinds through one lookup (the CLI's
    // --queues validation path).
    CHECK_EQ(wfq::api::object_info(n).name, n);
  }
  CHECK_EQ(wfq::api::object_info("ubq").name, std::string("ubq"));
  CHECK_EQ(wfq::api::object_info("bounded:g=3").name, std::string("bounded"));
  for (const char* bad : {"no-such-vector", "wfvec:g=2"}) {
    bool threw = false;
    try {
      (void)wfq::api::make_vector<uint64_t>(bad, QueueConfig{});
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }
  bool threw = false;
  try {
    (void)wfq::api::object_info("no-such-object");
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);
  // The tree vector exposes block-space introspection through AnyVector;
  // the flat baseline has no space surface.
  AnyVector<uint64_t> wv = wfq::api::make_vector<uint64_t>(
      "wfvec", QueueConfig{.procs = 2, .backend = Backend::real});
  wv.bind_thread(0);
  for (uint64_t i = 0; i < 32; ++i) (void)wv.append(i);
  CHECK(wv.space_stats().known);
  CHECK(wv.space_stats().live_blocks > 0);
  AnyVector<uint64_t> fv = wfq::api::make_vector<uint64_t>(
      "faavec", QueueConfig{.procs = 2, .backend = Backend::real});
  CHECK(!fv.space_stats().known);
}

void bounded_key_surface() {
  // Parameterized keys resolve to the "bounded" registry entry and carry
  // their G through the factory; "bq" stays accepted as the pre-PR-4
  // alias, and malformed keys fail loudly with invalid_argument (the
  // random:<seed> policy-spec convention).
  CHECK_EQ(wfq::api::queue_info("bounded:g=7").name, std::string("bounded"));
  CHECK_EQ(wfq::api::queue_info("bq").name, std::string("bounded"));
  for (const char* key : {"bounded:g=2", "bounded:g=-1", "bq", "bounded"}) {
    AnyQueue<uint64_t> q = wfq::api::make_queue<uint64_t>(
        key, QueueConfig{.procs = 2, .backend = Backend::real});
    CHECK(static_cast<bool>(q));
    CHECK_EQ(q.name(), std::string(key));
  }
  for (const char* bad :
       {"bounded:", "bounded:g=", "bounded:g=x", "bounded:g", "bounded:q=4",
        "bounded:g=0", "bounded:g=-2", "bounded:g=1x", "boundedg=4"}) {
    bool threw = false;
    try {
      (void)wfq::api::make_queue<uint64_t>(bad, QueueConfig{});
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    if (!threw) std::cerr << "no throw for key: " << bad << "\n";
  }
  // The space debug surface flows through AnyQueue for the block queues
  // and reads unknown for the lock-based baselines.
  AnyQueue<uint64_t> bq = wfq::api::make_queue<uint64_t>(
      "bounded:g=2", QueueConfig{.procs = 2, .backend = Backend::real});
  bq.bind_thread(0);
  for (uint64_t i = 0; i < 64; ++i) bq.enqueue(i);
  for (uint64_t i = 0; i < 32; ++i) (void)bq.dequeue();
  wfq::api::SpaceStats st = bq.space_stats();
  CHECK(st.known);
  CHECK(st.live_blocks > 0);
  AnyQueue<uint64_t> mq = wfq::api::make_queue<uint64_t>(
      "mutex", QueueConfig{.procs = 2, .backend = Backend::real});
  CHECK(!mq.space_stats().known);
}

void baseline_key_surface() {
  // PR 6's faithful baselines: "kp" (Kogan-Petrank) with the pre-rename
  // "kpq" spelling kept as an alias (like "bq" -> "bounded"), and "simq"
  // (Fatourou-Kallimanis combining). Both are step-counted registry
  // citizens; neither takes parameters, and parameterized spellings must
  // fail loudly as such rather than as generic unknown names.
  auto names = wfq::api::queue_names();
  CHECK(std::find(names.begin(), names.end(), "kp") != names.end());
  CHECK(std::find(names.begin(), names.end(), "simq") != names.end());
  CHECK_EQ(wfq::api::queue_info("kp").name, std::string("kp"));
  CHECK_EQ(wfq::api::queue_info("kpq").name, std::string("kp"));
  CHECK_EQ(wfq::api::queue_info("simq").name, std::string("simq"));
  CHECK(wfq::api::queue_info("kp").step_counted);
  CHECK(wfq::api::queue_info("simq").step_counted);
  CHECK_EQ(wfq::api::object_info("kpq").name, std::string("kp"));
  // The alias builds the same implementation and echoes the requested
  // spelling, exactly like "bq".
  AnyQueue<uint64_t> q = wfq::api::make_queue<uint64_t>(
      "kpq", QueueConfig{.procs = 2, .backend = Backend::real});
  CHECK(static_cast<bool>(q));
  CHECK_EQ(q.name(), std::string("kpq"));
  for (const char* bad : {"kp:", "kp:1", "kp:g=2", "kpq:g=2", "simq:",
                          "simq:g=2", "simq:x", "kp :1"}) {
    bool threw = false;
    try {
      (void)wfq::api::make_queue<uint64_t>(bad, QueueConfig{});
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
    if (!threw) std::cerr << "no throw for key: " << bad << "\n";
  }
}

void registry_surface() {
  auto names = wfq::api::queue_names();
  CHECK(names.size() >= 8);
  CHECK(names.front() == "ubq");  // the paper's queue leads the registry
  for (const std::string& n : names) {
    const auto& info = wfq::api::queue_info(n);
    CHECK_EQ(info.name, n);
    CHECK(!info.description.empty());
    AnyQueue<uint64_t> q = wfq::api::make_queue<uint64_t>(
        n, QueueConfig{.procs = 2, .backend = Backend::real});
    CHECK(static_cast<bool>(q));
    CHECK_EQ(q.name(), n);
  }
  bool threw = false;
  try {
    (void)wfq::api::make_queue<uint64_t>("no-such-queue", QueueConfig{});
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);
  threw = false;
  try {
    (void)wfq::api::queue_info("no-such-queue");
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);
  // The lock-based baselines are flagged as not step-counted; the
  // platform-templated queues are.
  CHECK(wfq::api::queue_info("ubq").step_counted);
  CHECK(!wfq::api::queue_info("twolock").step_counted);
  CHECK(!wfq::api::queue_info("mutex").step_counted);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  } else {
    names = wfq::api::queue_names();
    // GC-forcing bounded-queue keys: G=2 runs a collection every other
    // operation, so the differential and linearizability sweeps below
    // exercise archive lookups and EBR retirement constantly; G=5 lands
    // collections at op parities the even period never hits.
    names.push_back("bounded:g=2");
    names.push_back("bounded:g=5");
    // Vectors ride the same sweep: the per-name loop below dispatches on
    // the registry kind.
    for (const std::string& vn : wfq::api::vector_names())
      names.push_back(vn);
    registry_surface();
    vector_registry_surface();
    bounded_key_surface();
    baseline_key_surface();
  }
  const auto vecs = wfq::api::vector_names();
  for (const std::string& name : names) {
    bool is_vector = std::find(vecs.begin(), vecs.end(), name) != vecs.end();
    if (is_vector) {
      vector_sequential_differential(name, /*seed=*/0x5eed + name.size());
      for (const char* adv : kAdversaries)
        vector_sim_linearizability(name, adv);
    } else {
      sequential_differential(name, /*seed=*/0x5eed + name.size());
      for (const char* adv : kAdversaries) sim_linearizability(name, adv);
    }
  }
  return wfq::test::exit_code();
}
