// wfb-v1 frame codec robustness (ISSUE 8 satellite): round-trips for every
// assigned opcode, incremental decoding down to 1-byte feeds, and the full
// typed-error surface — bad magic, bad version, unknown opcode, oversized
// length, truncation at stream end — each rejected with its own status and
// sticky thereafter. The fuzz section shreds random byte streams (valid
// frames, corrupted frames, garbage) through random chunkings; under ASan
// this is the no-crash/no-overread gate.
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "tests/test_util.hpp"

using namespace wfq;

namespace {

const std::vector<net::Opcode> kAllOpcodes = {
    net::Opcode::enq,       net::Opcode::deq,
    net::Opcode::stat,      net::Opcode::ping,
    net::Opcode::setw,      net::Opcode::raft_vote_req,
    net::Opcode::raft_vote_resp, net::Opcode::raft_append_req,
    net::Opcode::raft_append_resp, net::Opcode::enq_ok,
    net::Opcode::deq_ok,    net::Opcode::deq_empty,
    net::Opcode::stat_ok,   net::Opcode::pong,
    net::Opcode::err,       net::Opcode::setw_ok,
    net::Opcode::err_not_leader};

net::Frame sample_frame(net::Opcode op, uint32_t key) {
  net::Frame f;
  f.op = op;
  f.flags = static_cast<uint16_t>(0xA000 | static_cast<uint8_t>(op));
  f.key = key;
  switch (op) {
    case net::Opcode::enq:
    case net::Opcode::deq_ok:
      f.payload = net::encode_value(0x1122334455667788ULL + key);
      break;
    case net::Opcode::ping:
    case net::Opcode::pong:
      f.payload = "echo me \x00\x01\x02 with embedded NULs";
      break;
    case net::Opcode::stat_ok:
      f.payload = "{\"schema\":\"wfq-broker-stat-v1\"}";
      break;
    case net::Opcode::err:
      f.payload = "reason text";
      break;
    case net::Opcode::setw:
      f.payload = net::encode_u32_pair(key % 7, 3);
      break;
    case net::Opcode::err_not_leader:
      f.payload = net::encode_u32(key % 5);
      break;
    case net::Opcode::raft_vote_req:
    case net::Opcode::raft_vote_resp:
    case net::Opcode::raft_append_req:
    case net::Opcode::raft_append_resp:
      // The codec treats raft bodies as opaque bytes (raft/wire.hpp owns
      // their shape); binary-looking junk is the right sample here.
      f.payload.assign("\x01\x00\xff\x7f raft body bytes \x80", 21);
      break;
    default:
      break;  // empty-payload opcodes
  }
  return f;
}

void expect_frames_equal(const net::Frame& a, const net::Frame& b) {
  CHECK(a.op == b.op);
  CHECK_EQ(a.flags, b.flags);
  CHECK_EQ(a.key, b.key);
  CHECK_EQ(a.payload, b.payload);
}

/// Every opcode round-trips, both one-shot and 1 byte at a time.
void test_round_trip_all_opcodes() {
  for (net::Opcode op : kAllOpcodes) {
    net::Frame in = sample_frame(op, 0xDEADBEEF);
    std::string wire;
    net::encode_frame(in, wire);
    CHECK_EQ(wire.size(), net::kHeaderSize + in.payload.size());

    {  // one-shot
      net::Decoder d;
      d.feed(wire);
      net::Frame out;
      CHECK(d.next(out) == net::DecodeStatus::ok);
      expect_frames_equal(in, out);
      CHECK(d.next(out) == net::DecodeStatus::need_more);
      CHECK(d.at_eof() == net::DecodeStatus::ok);
    }
    {  // 1 byte at a time: need_more until the last byte lands
      net::Decoder d;
      net::Frame out;
      for (size_t i = 0; i + 1 < wire.size(); ++i) {
        d.feed(wire.data() + i, 1);
        CHECK(d.next(out) == net::DecodeStatus::need_more);
        CHECK(d.at_eof() == net::DecodeStatus::truncated);
      }
      d.feed(wire.data() + wire.size() - 1, 1);
      CHECK(d.next(out) == net::DecodeStatus::ok);
      expect_frames_equal(in, out);
      CHECK(d.at_eof() == net::DecodeStatus::ok);
    }
  }
}

/// A back-to-back burst decodes into the same frames in order, for any
/// chunking of the concatenated bytes.
void test_burst_chunked() {
  std::vector<net::Frame> frames;
  std::string wire;
  for (uint32_t k = 0; k < 32; ++k) {
    frames.push_back(
        sample_frame(kAllOpcodes[k % kAllOpcodes.size()], k));
    net::encode_frame(frames.back(), wire);
  }
  std::mt19937 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    net::Decoder d;
    std::vector<net::Frame> got;
    size_t off = 0;
    while (off < wire.size()) {
      size_t n = 1 + rng() % 97;
      if (n > wire.size() - off) n = wire.size() - off;
      d.feed(wire.data() + off, n);
      off += n;
      net::Frame f;
      while (d.next(f) == net::DecodeStatus::ok) got.push_back(f);
    }
    CHECK_EQ(got.size(), frames.size());
    for (size_t i = 0; i < got.size() && i < frames.size(); ++i)
      expect_frames_equal(frames[i], got[i]);
    CHECK(d.at_eof() == net::DecodeStatus::ok);
    CHECK_EQ(d.pending(), size_t{0});
  }
}

/// Each framing-error class yields its own typed status, and the status is
/// STICKY: later feeds are dropped and next() keeps returning it.
void test_typed_errors_sticky() {
  std::string good;
  net::encode_frame(sample_frame(net::Opcode::ping, 7), good);

  struct Case {
    const char* name;
    size_t corrupt_at;
    char value;
    net::DecodeStatus want;
  };
  const Case cases[] = {
      {"bad_magic", 0, 'X', net::DecodeStatus::bad_magic},
      {"bad_version", 4, 9, net::DecodeStatus::bad_version},
      {"bad_opcode", 5, 0x7f, net::DecodeStatus::bad_opcode},
      // Opcode 0x00 sits below the request band and must also be rejected.
      {"bad_opcode_zero", 5, 0x00, net::DecodeStatus::bad_opcode},
  };
  for (const Case& c : cases) {
    std::string wire = good;
    wire[c.corrupt_at] = c.value;
    net::Decoder d;
    d.feed(wire);
    net::Frame f;
    CHECK(d.next(f) == c.want);
    CHECK(d.at_eof() == c.want);
    // Sticky: feeding a pristine frame afterwards does not resurrect it.
    d.feed(good);
    CHECK(d.next(f) == c.want);
    CHECK_EQ(d.pending(), size_t{0});  // poisoned decoder buffers nothing
  }

  {  // oversize: length field beyond kMaxPayload, caught from header alone
    std::string wire = good;
    uint32_t huge = net::kMaxPayload + 1;
    for (int i = 0; i < 4; ++i)
      wire[12 + static_cast<size_t>(i)] =
          static_cast<char>((huge >> (8 * i)) & 0xff);
    net::Decoder d;
    d.feed(wire.data(), net::kHeaderSize);  // header only — no payload needed
    net::Frame f;
    CHECK(d.next(f) == net::DecodeStatus::oversize);
    d.feed(good);
    CHECK(d.next(f) == net::DecodeStatus::oversize);
  }

  {  // a payload of exactly kMaxPayload is legal, one more byte is not
    net::Frame big = sample_frame(net::Opcode::ping, 1);
    big.payload.assign(net::kMaxPayload, 'x');
    std::string wire;
    net::encode_frame(big, wire);
    net::Decoder d;
    d.feed(wire);
    net::Frame f;
    CHECK(d.next(f) == net::DecodeStatus::ok);
    CHECK_EQ(f.payload.size(), size_t{net::kMaxPayload});
  }
}

/// Truncation is an EOF-only diagnosis: mid-stream a cut frame just looks
/// like need_more; at_eof() turns the pending prefix into `truncated`.
void test_truncation() {
  std::string wire;
  net::encode_frame(sample_frame(net::Opcode::enq, 3), wire);
  for (size_t cut = 1; cut < wire.size(); ++cut) {
    net::Decoder d;
    d.feed(wire.data(), cut);
    net::Frame f;
    CHECK(d.next(f) == net::DecodeStatus::need_more);
    CHECK(d.at_eof() == net::DecodeStatus::truncated);
    CHECK_EQ(d.pending(), cut);
  }
  // Full frame + a truncated second frame: first decodes, EOF still dirty.
  std::string two = wire;
  two.append(wire.data(), wire.size() - 1);
  net::Decoder d;
  d.feed(two);
  net::Frame f;
  CHECK(d.next(f) == net::DecodeStatus::ok);
  CHECK(d.next(f) == net::DecodeStatus::need_more);
  CHECK(d.at_eof() == net::DecodeStatus::truncated);
}

/// Value payload helpers: 8-byte contract, strict on any other size.
void test_value_codec() {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0xffffffffffffffff},
                     uint64_t{0x0123456789abcdef}}) {
    uint64_t out = 0;
    CHECK(net::decode_value(net::encode_value(v), out));
    CHECK_EQ(out, v);
  }
  uint64_t out = 0;
  CHECK(!net::decode_value("", out));
  CHECK(!net::decode_value("1234567", out));
  CHECK(!net::decode_value("123456789", out));
}

/// Long-session compaction: the consumed prefix must not grow without
/// bound. Decode far more bytes than the compaction threshold and check the
/// buffered remainder stays burst-sized.
void test_compaction_bounded() {
  net::Decoder d;
  std::string wire;
  net::encode_frame(sample_frame(net::Opcode::deq, 1), wire);
  net::Frame f;
  for (int i = 0; i < 20'000; ++i) {
    d.feed(wire);
    CHECK(d.next(f) == net::DecodeStatus::ok);
    CHECK(d.pending() == 0);
  }
  CHECK(d.at_eof() == net::DecodeStatus::ok);
}

/// One full decode of `wire` under a chosen chunking discipline. Frames
/// decoded before any error are collected; `final` is the first sticky
/// error, or at_eof() for a clean run. Stickiness is asserted inline: once
/// poisoned, every later next() must return the SAME typed status.
struct DecodeOutcome {
  std::vector<net::Frame> frames;
  net::DecodeStatus final = net::DecodeStatus::ok;
};

DecodeOutcome decode_stream(const std::string& wire, int chunking,
                            uint32_t salt) {
  net::Decoder d;
  DecodeOutcome out;
  std::mt19937 rng(salt);
  size_t off = 0;
  bool poisoned = false;
  while (off < wire.size()) {
    size_t n = chunking == 0   ? wire.size() - off
               : chunking == 1 ? size_t{1}
                               : size_t{1} + rng() % 37;
    if (n > wire.size() - off) n = wire.size() - off;
    d.feed(wire.data() + off, n);
    off += n;
    net::Frame f;
    net::DecodeStatus st;
    while ((st = d.next(f)) == net::DecodeStatus::ok) out.frames.push_back(f);
    if (st != net::DecodeStatus::need_more) {
      if (!poisoned) {
        poisoned = true;
        out.final = st;
      }
      CHECK(st == out.final);  // sticky: same typed error forever after
    }
  }
  if (!poisoned) out.final = d.at_eof();
  return out;
}

/// Randomized single-byte mutation sweep (ISSUE 10 satellite): take a valid
/// multi-frame stream covering every opcode — the RAFT band included — and
/// flip exactly one byte per trial, exhaustively over positions with seeded
/// values. Every trial must land in exactly one outcome class, predicted
/// from the mutated offset:
///   header[0..3]  -> bad_magic, all prior frames intact
///   header[4]     -> bad_version, all prior frames intact
///   header[5]     -> clean decode with the new opcode if it is a known
///                    one, else bad_opcode
///   header[6..11] -> clean decode, only flags/key of that frame change
///   header[12..15]-> length now lies: any typed error or truncated EOF
///                    (downstream bytes re-framed), never a crash
///   payload bytes -> clean decode, only that frame's payload changes
/// Each trial is decoded under three chunking disciplines (one-shot,
/// byte-at-a-time, seeded random) and the outcomes must be identical —
/// framing decisions cannot depend on read() boundaries.
void test_mutation_sweep() {
  struct Span {
    size_t start, payload_len;
  };
  std::string base;
  std::vector<net::Frame> originals;
  std::vector<Span> spans;
  for (uint32_t k = 0; k < 2 * kAllOpcodes.size(); ++k) {
    net::Frame f = sample_frame(kAllOpcodes[k % kAllOpcodes.size()], k * 11);
    spans.push_back({base.size(), f.payload.size()});
    originals.push_back(f);
    net::encode_frame(f, base);
  }

  std::mt19937 rng(20230717);
  for (size_t pos = 0; pos < base.size(); ++pos) {
    for (int rep = 0; rep < 2; ++rep) {
      std::string wire = base;
      // (orig + k) mod 256 with k in [1,255] can never equal orig.
      uint8_t orig = static_cast<uint8_t>(base[pos]);
      uint8_t mut = static_cast<uint8_t>(orig + 1 + rng() % 255);
      wire[pos] = static_cast<char>(mut);

      DecodeOutcome a = decode_stream(wire, 0, 0);
      DecodeOutcome b = decode_stream(wire, 1, 0);
      DecodeOutcome c = decode_stream(wire, 2, static_cast<uint32_t>(pos));
      CHECK(a.final == b.final);
      CHECK(a.final == c.final);
      CHECK_EQ(a.frames.size(), b.frames.size());
      CHECK_EQ(a.frames.size(), c.frames.size());
      for (size_t i = 0; i < a.frames.size(); ++i) {
        expect_frames_equal(a.frames[i], b.frames[i]);
        expect_frames_equal(a.frames[i], c.frames[i]);
      }

      // Which frame owns the mutated byte, and at what relative offset?
      size_t idx = 0;
      while (idx + 1 < spans.size() && spans[idx + 1].start <= pos) ++idx;
      size_t rel = pos - spans[idx].start;

      if (rel < 4) {
        CHECK(a.final == net::DecodeStatus::bad_magic);
        CHECK_EQ(a.frames.size(), idx);
      } else if (rel == 4) {
        CHECK(a.final == net::DecodeStatus::bad_version);
        CHECK_EQ(a.frames.size(), idx);
      } else if (rel == 5) {
        if (net::opcode_known(mut)) {
          CHECK(a.final == net::DecodeStatus::ok);
          CHECK_EQ(a.frames.size(), originals.size());
          CHECK(a.frames[idx].op == static_cast<net::Opcode>(mut));
          CHECK_EQ(a.frames[idx].payload, originals[idx].payload);
        } else {
          CHECK(a.final == net::DecodeStatus::bad_opcode);
          CHECK_EQ(a.frames.size(), idx);
        }
      } else if (rel < 12) {
        // flags/key mutate freely; framing is untouched.
        CHECK(a.final == net::DecodeStatus::ok);
        CHECK_EQ(a.frames.size(), originals.size());
        CHECK(a.frames[idx].op == originals[idx].op);
        CHECK_EQ(a.frames[idx].payload, originals[idx].payload);
        for (size_t i = 0; i < originals.size(); ++i)
          if (i != idx) expect_frames_equal(a.frames[i], originals[i]);
      } else if (rel < net::kHeaderSize) {
        // The length now lies; downstream bytes re-frame arbitrarily. The
        // contract is only: a typed error or a truncated EOF, never a clean
        // full parse of the original frame list with this frame changed.
        bool error_or_truncated = a.final != net::DecodeStatus::ok;
        bool reframed_clean = a.final == net::DecodeStatus::ok;
        if (reframed_clean) {
          // Freak case: bytes re-framed into a fully valid stream. The
          // mutated frame's payload length must actually differ.
          CHECK(a.frames.size() > idx);
          CHECK(a.frames[idx].payload.size() != spans[idx].payload_len);
        }
        CHECK(error_or_truncated || reframed_clean);
      } else {
        // Payload byte: exactly that frame's payload changes, in place.
        CHECK(a.final == net::DecodeStatus::ok);
        CHECK_EQ(a.frames.size(), originals.size());
        for (size_t i = 0; i < originals.size(); ++i) {
          if (i == idx) {
            CHECK(a.frames[i].op == originals[i].op);
            CHECK_EQ(a.frames[i].flags, originals[i].flags);
            CHECK_EQ(a.frames[i].payload.size(),
                     originals[i].payload.size());
            CHECK_EQ(a.frames[i].payload[rel - net::kHeaderSize],
                     static_cast<char>(mut));
          } else {
            expect_frames_equal(a.frames[i], originals[i]);
          }
        }
      }
    }
  }
}

/// Fuzz: random mutations of a valid stream, random chunk sizes. The only
/// contract here is NO crash / no overread (ASan-audited) and that a
/// poisoned decoder stays poisoned.
void test_fuzz_no_crash() {
  std::mt19937 rng(1234);
  std::string base;
  for (uint32_t k = 0; k < 16; ++k)
    net::encode_frame(
        sample_frame(kAllOpcodes[k % kAllOpcodes.size()], k), base);
  for (int trial = 0; trial < 300; ++trial) {
    std::string wire = base;
    int mutations = static_cast<int>(rng() % 8);
    for (int m = 0; m < mutations; ++m)
      wire[rng() % wire.size()] = static_cast<char>(rng() & 0xff);
    if (trial % 3 == 0) wire.resize(rng() % wire.size());  // random cut
    net::Decoder d;
    size_t off = 0;
    net::DecodeStatus sticky = net::DecodeStatus::ok;
    while (off < wire.size()) {
      size_t n = 1 + rng() % 64;
      if (n > wire.size() - off) n = wire.size() - off;
      d.feed(wire.data() + off, n);
      off += n;
      net::Frame f;
      net::DecodeStatus st;
      while ((st = d.next(f)) == net::DecodeStatus::ok) {
      }
      if (st != net::DecodeStatus::need_more) {
        if (sticky == net::DecodeStatus::ok) sticky = st;
        CHECK(st == sticky);  // same typed error forever after
      }
    }
  }
}

}  // namespace

int main() {
  test_round_trip_all_opcodes();
  test_burst_chunked();
  test_typed_errors_sticky();
  test_truncation();
  test_value_codec();
  test_compaction_bounded();
  test_mutation_sweep();
  test_fuzz_no_crash();
  return wfq::test::exit_code();
}
